//! E2 — §3.2/§4.1: the three Δ-application semantics.
//!
//! Paper: conflict-detection verification runs "in linear time, using a
//! pair of hash-tables over node ids"; nondeterministic and
//! conflict-detection modes share an order-independent application.
//!
//! Expected shape: all three modes linear in |Δ|; conflict-detection pays
//! a small constant factor over ordered for the verification pass;
//! verification alone is linear whether the list is clean or has a buried
//! conflict.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use xqbench::{chained_inserts_delta, conflicting_delta, renames_delta};
use xqcore::{apply_delta, verify_conflict_free, SnapMode};
use xqdm::Store;

fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_apply_semantics");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    for k in [100usize, 1_000, 10_000] {
        group.throughput(Throughput::Elements(k as u64));
        for (mode, label) in [
            (SnapMode::Ordered, "ordered"),
            (SnapMode::Nondeterministic, "nondeterministic"),
            (SnapMode::ConflictDetection, "conflict-detection"),
        ] {
            group.bench_with_input(BenchmarkId::new(label, k), &k, |b, &k| {
                b.iter_batched(
                    || {
                        let mut store = Store::new();
                        let delta = renames_delta(&mut store, k);
                        (store, delta)
                    },
                    |(mut store, delta)| apply_delta(&mut store, delta, mode, 42).expect("apply"),
                    criterion::BatchSize::LargeInput,
                );
            });
        }
        // Chained inserts: the anchor-tracking path of the verifier.
        group.bench_with_input(BenchmarkId::new("cd-inserts", k), &k, |b, &k| {
            b.iter_batched(
                || {
                    let mut store = Store::new();
                    let (_, delta) = chained_inserts_delta(&mut store, k);
                    (store, delta)
                },
                |(mut store, delta)| {
                    apply_delta(&mut store, delta, SnapMode::ConflictDetection, 42).expect("apply")
                },
                criterion::BatchSize::LargeInput,
            );
        });
        // Verification only (no application), clean and conflicting.
        group.bench_with_input(BenchmarkId::new("verify-clean", k), &k, |b, &k| {
            let mut store = Store::new();
            let delta = renames_delta(&mut store, k);
            b.iter(|| verify_conflict_free(&delta).expect("clean"));
        });
        group.bench_with_input(BenchmarkId::new("verify-conflict", k), &k, |b, &k| {
            let mut store = Store::new();
            let delta = conflicting_delta(&mut store, k);
            b.iter(|| verify_conflict_free(&delta).expect_err("conflict"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apply);
criterion_main!(benches);
