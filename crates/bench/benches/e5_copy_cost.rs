//! E5 — §3.3: normalization wraps every `insert`/`replace` source in a
//! deep `copy` ("this copy prevents the inserted tree from having two
//! parents").
//!
//! Measures the semantic tax of that rule: deep-copying a subtree of t
//! nodes is Θ(t), so inserting a large existing tree costs linear in its
//! size even though the insertion splice itself is O(1)-ish. The
//! `reference-only` baseline (just evaluating the source path) bounds the
//! non-copy part.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use xqbench::element_tree;
use xqcore::Engine;
use xqdm::{Item, QName};

fn engine_with_tree(t: usize) -> Engine {
    let mut e = Engine::new();
    let root = element_tree(&mut e.store, t).expect("tree");
    let dst = e.store.new_element(QName::local("dst"));
    e.bind("src", vec![Item::Node(root)]);
    e.bind("dst", vec![Item::Node(dst)]);
    e
}

fn bench_copy(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_copy_cost");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    for t in [10usize, 100, 1_000, 10_000] {
        group.throughput(Throughput::Elements(t as u64));
        group.bench_with_input(BenchmarkId::new("copy-op", t), &t, |b, &t| {
            b.iter_batched(
                || engine_with_tree(t),
                |mut e| e.run("copy { $src }").expect("copy"),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(
            BenchmarkId::new("insert-with-implicit-copy", t),
            &t,
            |b, &t| {
                b.iter_batched(
                    || engine_with_tree(t),
                    |mut e| e.run("insert { $src } into { $dst }").expect("insert"),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
        group.bench_with_input(BenchmarkId::new("reference-only", t), &t, |b, &t| {
            b.iter_batched(
                || engine_with_tree(t),
                |mut e| e.run("count(($src))").expect("reference"),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_copy);
criterion_main!(benches);
