//! E13 — resource-governance overhead (ISSUE 5): the limit guard must be
//! invisible when nothing is armed.
//!
//! Measured on XMark Q8 (pure variant, 150 persons / 75 closed auctions,
//! medians of `REPS`), interpreted and compiled:
//!
//! * **Disabled cost** — with no fuel/deadline/memory armed,
//!   `LimitGuard::tick()` is a single branch on an inline bool. A plain
//!   run today is compared against the committed PR-3 baselines in
//!   `BENCH_parallel.json` (recorded, not asserted — those baselines were
//!   produced on a different container class; the committed BENCH.json
//!   value is the gate).
//! * **Armed cost** — the same run with generous-but-armed limits (the
//!   fuel/memory atomics and periodic deadline poll actually execute).
//!   Target ≤ 2% over the disabled run. The assertion is self-gating: it
//!   only fires when the measured noise floor (two disabled medians
//!   against each other) is itself under 2%, so a noisy container cannot
//!   produce a spurious failure.
//!
//! Output: a table on stdout, `BENCH_limits.json`, and the canonical
//! `BENCH.json` updated in place (the `limits_overhead` section is
//! replaced; the e12 sections are preserved).

use std::time::Instant;
use xmarkgen::Scale;
use xqbench::{xmark_fixture, Q8_PURE_VARIANT};
use xqcore::{Engine, Limits};

const REPS: usize = 7;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn q8_engine(scale: &Scale, compile: bool, limits: Limits) -> Engine {
    let mut e = Engine::new().with_seed(11);
    e.set_compile(compile);
    e.set_threads(1);
    e.set_limits(limits);
    let (store, bindings) = xmark_fixture(8, scale);
    e.store = store;
    for (name, seq) in bindings {
        e.bind(&name, seq);
    }
    e
}

/// Median seconds for a plain Q8-pure run under the given limits, fresh
/// engine per repetition.
fn time_run(scale: &Scale, compile: bool, limits: Limits) -> f64 {
    let mut times = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let mut e = q8_engine(scale, compile, limits);
        let t0 = Instant::now();
        e.run(Q8_PURE_VARIANT).expect("q8 pure run");
        times.push(t0.elapsed().as_secs_f64());
    }
    median(times)
}

/// Generous-but-armed limits: every checkable knob set, budgets far above
/// what Q8 needs — the guard's atomics run on every tick, but nothing
/// ever trips.
fn armed_limits() -> Limits {
    Limits {
        fuel: Some(u64::MAX / 2),
        memory_items: Some(u64::MAX / 2),
        deadline_ms: Some(3_600_000),
        ..Limits::default()
    }
}

/// Pull `"q8_pure_<mode>": {"1": <seconds>, …}` out of the committed
/// BENCH_parallel.json without a JSON parser (the shape is ours).
fn committed_baseline(parallel_json: Option<&str>, mode: &str) -> Option<f64> {
    let text = parallel_json?;
    let key = format!("\"q8_pure_{mode}\"");
    let obj = &text[text.find(&key)? + key.len()..];
    let one = &obj[obj.find("\"1\":")? + 4..];
    let end = one.find([',', '}'])?;
    one[..end].trim().parse().ok()
}

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    xqalg::install();
    let scale = Scale::join_sides(150, 75);
    let root = repo_root();
    let parallel = std::fs::read_to_string(root.join("BENCH_parallel.json")).ok();

    println!("E13: limit-guard overhead on XMark Q8 pure, median of {REPS} runs (1 thread)");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "pipeline", "disabled", "redisabled", "armed", "noise", "armed/x"
    );

    let mut section =
        String::from("{\n    \"scale\": {\"persons\": 150, \"closed_auctions\": 75},\n");
    for (i, &compile) in [false, true].iter().enumerate() {
        let mode = if compile { "compiled" } else { "interpreted" };
        let disabled = time_run(&scale, compile, Limits::default());
        // Second disabled median = the run-to-run noise floor on this
        // container, which gates the armed-cost assertion below.
        let disabled2 = time_run(&scale, compile, Limits::default());
        let armed = time_run(&scale, compile, armed_limits());
        let base = disabled.min(disabled2);
        let noise = (disabled - disabled2).abs() / base;
        let armed_ratio = armed / base;
        println!(
            "{mode:<12} {:>9.2} ms {:>9.2} ms {:>9.2} ms {:>7.1}% {armed_ratio:>7.3}x",
            disabled * 1e3,
            disabled2 * 1e3,
            armed * 1e3,
            noise * 1e2,
        );

        let committed = committed_baseline(parallel.as_deref(), mode);
        let vs_committed = committed.map(|c| base / c);
        match (committed, vs_committed) {
            (Some(c), Some(r)) => println!(
                "  vs committed PR-3 baseline: {:.2} ms committed = {r:.3}x (recorded)",
                c * 1e3
            ),
            _ => println!("  vs committed PR-3 baseline: not found (recorded as null)"),
        }

        // Self-gating assertion: only a quiet container may judge the 2%
        // target, and the allowance widens with whatever noise remains.
        if noise < 0.02 {
            let allowed = 1.02 + noise;
            assert!(
                armed_ratio <= allowed,
                "armed limit guard costs {armed_ratio:.3}x on {mode} Q8 \
                 (allowed {allowed:.3}x at {:.1}% noise)",
                noise * 1e2
            );
        } else {
            println!(
                "  (noise {:.1}% ≥ 2% — armed-cost assertion skipped)",
                noise * 1e2
            );
        }

        if i > 0 {
            section.push_str(",\n");
        }
        let vs = vs_committed
            .map(|r| format!("{r:.3}"))
            .unwrap_or_else(|| "null".to_string());
        section.push_str(&format!(
            "    \"q8_pure_{mode}\": {{\"disabled_s\": {base:.6}, \"armed_s\": {armed:.6}, \
             \"armed_ratio\": {armed_ratio:.3}, \"noise\": {noise:.4}, \
             \"disabled_vs_pr3_baseline\": {vs}}}"
        ));
    }
    section.push_str("\n  }");

    std::fs::write(
        root.join("BENCH_limits.json"),
        format!("{{\n  \"experiment\": \"e13_limits_overhead\",\n  \"limits_overhead\": {section}\n}}\n"),
    )?;

    // Update the canonical BENCH.json in place: drop any previous
    // limits_overhead section, then splice the new one before the final
    // closing brace. The e12-generated sections are untouched.
    let bench_path = root.join("BENCH.json");
    if let Ok(mut bench) = std::fs::read_to_string(&bench_path) {
        if let Some(at) = bench.find(",\n  \"limits_overhead\"") {
            bench.truncate(at);
            bench.push_str("\n}\n");
        }
        if let Some(end) = bench.rfind('}') {
            let mut merged = bench[..end].trim_end().to_string();
            merged.push_str(&format!(",\n  \"limits_overhead\": {section}\n}}\n"));
            std::fs::write(&bench_path, merged)?;
            println!("\nwrote BENCH_limits.json and updated BENCH.json");
            return Ok(());
        }
    }
    println!("\nwrote BENCH_limits.json (no BENCH.json to update)");
    Ok(())
}
