//! E18 — secondary-index selectivity crossover (ISSUE 10, DESIGN.md §17):
//! what the attribute-value hash index buys on selective point lookups,
//! and where the planner cost gate hands back to the PR-7 batch kernels.
//!
//! Three strategies answer the same selective XMark lookup
//! `$auction//person[@id = "person7"]` at growing store sizes:
//!
//! * **indexed** — compiled, index plane on: the attr bucket names the
//!   single owner, an ancestor walk proves containment (O(depth)).
//! * **batch** — compiled, index plane off: the PR-7 descendant kernel
//!   walks the whole subtree (O(store)).
//! * **interpreted** — the reference semantics, per-node axis steps.
//!
//! Acceptance (ISSUE 10): at the 800-person row the indexed scan is
//! ≥5× the batch walk, and the indexed curve is sublinear in store
//! size. A final probe shows the *cost gate*: a query whose name bucket
//! is ~100% of the element population keeps the batch kernels even with
//! the index available (idx hint present, zero idx scans at runtime).
//!
//! Output: a table on stdout, `BENCH_index.json`, and the canonical
//! `BENCH.json` updated in place (the `index` section is replaced;
//! earlier experiments' sections are preserved).

use std::time::Instant;
use xmarkgen::{Scale, XmarkGen};
use xqcore::Engine;
use xqdm::item::Item;

/// Timed repetitions per sample (per-run seconds = total / ITERS).
const ITERS: usize = 200;
/// Samples per (size, strategy) cell; the median is reported.
const REPS: usize = 5;
/// Regression tripwire under the ≥5× acceptance line, so a loud CI
/// container reports honestly instead of flaking; the measured speedup
/// lands in BENCH.json either way.
const MIN_SPEEDUP: f64 = 3.0;

const LOOKUP: &str = r#"$auction//person[@id = "person7"]"#;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

/// An engine holding an XMark document at `scale`, configured for one
/// strategy.
fn engine(scale: &Scale, compile: bool, indexing: bool) -> Engine {
    let mut e = Engine::new();
    e.set_compile(compile);
    e.set_indexing(indexing);
    let auction = XmarkGen::new(8)
        .generate(&mut e.store, scale)
        .expect("generate xmark");
    e.bind("auction", xqdm::seq![Item::Node(auction)]);
    e
}

/// Median per-run seconds for `program` on `e`, verifying every run
/// returns exactly `expect_rows` items.
fn time_query(e: &mut Engine, program: &xqsyn::CoreProgram, expect_rows: usize) -> f64 {
    // One warmup: plan-cache fill, interner warm, scratch allocated.
    let out = e.run_program(program).expect("warmup");
    assert_eq!(out.len(), expect_rows, "wrong row count");
    let mut samples = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t0 = Instant::now();
        for _ in 0..ITERS {
            let out = e.run_program(program).expect("run");
            assert_eq!(out.len(), expect_rows);
        }
        samples.push(t0.elapsed().as_secs_f64() / ITERS as f64);
    }
    median(samples)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    xqalg::install();
    let root = repo_root();
    let program = xqsyn::compile(LOOKUP).expect("parse lookup");

    println!("E18: index selectivity crossover, {REPS}×{ITERS} runs per cell");
    println!(
        "  {:>8} {:>12} {:>12} {:>12} {:>8}",
        "persons", "indexed_us", "batch_us", "interp_us", "idx/batch"
    );

    let sizes = [(100usize, 50usize), (200, 100), (400, 200), (800, 400)];
    let mut rows = Vec::new();
    for &(persons, closed) in &sizes {
        let scale = Scale::join_sides(persons, closed);
        let mut indexed = engine(&scale, true, true);
        let mut batch = engine(&scale, true, false);
        let mut interp = engine(&scale, false, false);
        let t_idx = time_query(&mut indexed, &program, 1);
        let t_batch = time_query(&mut batch, &program, 1);
        let t_interp = time_query(&mut interp, &program, 1);
        // Non-vacuity: the indexed engine chose the scan, the batch
        // engine never could.
        let si = indexed.last_stats().expect("stats");
        assert!(si.idx_scans > 0, "indexed engine never scanned the index");
        let sb = batch.last_stats().expect("stats");
        assert_eq!(sb.idx_scans, 0, "index-off engine used the index");
        assert!(sb.batch_steps > 0, "index-off engine skipped the kernels");
        let speedup = t_batch / t_idx;
        println!(
            "  {persons:>8} {:>12.3} {:>12.3} {:>12.3} {speedup:>7.1}x",
            t_idx * 1e6,
            t_batch * 1e6,
            t_interp * 1e6
        );
        rows.push((persons, closed, t_idx, t_batch, t_interp, speedup));
    }

    let (_, _, t_idx_100, ..) = rows[0];
    let &(_, _, t_idx_800, _, _, speedup_800) = rows.last().unwrap();
    assert!(
        speedup_800 >= MIN_SPEEDUP,
        "selective lookup at 800 persons: {speedup_800:.1}x vs batch \
         (target ≥5x, tripwire {MIN_SPEEDUP}x)"
    );
    // Store grew 8×; a sublinear curve stays well under that.
    let growth = t_idx_800 / t_idx_100;
    assert!(
        growth < 4.0,
        "indexed lookup not sublinear: {growth:.1}x time for 8x store"
    );

    // --- cost gate: unselective name bucket keeps the batch kernels --
    // Every element in this tree is named `node`: the bucket is ~100%
    // of the population, far past the selectivity threshold, so the
    // executor's gate refuses the scan even though the plan carries the
    // idx hint.
    let mut gated = Engine::new();
    gated.set_compile(true);
    let tree = xqbench::element_tree(&mut gated.store, 4000)?;
    gated.bind("doc", xqdm::seq![Item::Node(tree)]);
    let unselective = xqsyn::compile("$doc//node")?;
    let explain = gated.explain("$doc//node").expect("explain");
    assert!(explain.contains(",idx"), "idx hint missing: {explain}");
    let out = gated.run_program(&unselective)?;
    let gate_rows = out.len();
    let sg = gated.last_stats().expect("stats");
    assert_eq!(sg.idx_scans, 0, "cost gate failed to refuse the fat bucket");
    assert!(sg.batch_steps > 0, "gated query skipped the batch kernels");
    println!(
        "  cost gate: //node over {gate_rows} same-named elements: \
         idx hint planned, 0 scans taken (batch fallback)"
    );

    // --- JSON ------------------------------------------------------
    let rows_json: Vec<String> = rows
        .iter()
        .map(|(p, c, ti, tb, tn, s)| {
            format!(
                "{{\"persons\": {p}, \"closed_auctions\": {c}, \"indexed_s\": {ti:.9}, \
                 \"batch_s\": {tb:.9}, \"interpreted_s\": {tn:.9}, \"speedup\": {s:.2}}}"
            )
        })
        .collect();
    let section = format!(
        "{{\n    \"bench\": \"selective_id_lookup\",\n    \"query\": \"{}\",\n    \
         \"rows\": [\n      {}\n    ],\n    \"indexed_growth_100_to_800\": {growth:.2},\n    \
         \"cost_gate\": {{\"query\": \"$doc//node\", \"elements\": {gate_rows}, \
         \"idx_hint_planned\": true, \"idx_scans_taken\": 0}}\n  }}",
        LOOKUP.replace('"', "\\\""),
        rows_json.join(",\n      ")
    );
    std::fs::write(
        root.join("BENCH_index.json"),
        format!("{{\n  \"experiment\": \"e18_index\",\n  \"index\": {section}\n}}\n"),
    )?;

    // Update the canonical BENCH.json in place: drop any previous index
    // section, then splice the new one before the final closing brace.
    let bench_path = root.join("BENCH.json");
    if let Ok(mut bench) = std::fs::read_to_string(&bench_path) {
        if let Some(at) = bench.find(",\n  \"index\"") {
            bench.truncate(at);
            bench.push_str("\n}\n");
        }
        if let Some(end) = bench.rfind('}') {
            let mut merged = bench[..end].trim_end().to_string();
            merged.push_str(&format!(",\n  \"index\": {section}\n}}\n"));
            std::fs::write(&bench_path, merged)?;
            println!("\nwrote BENCH_index.json and updated BENCH.json");
            return Ok(());
        }
    }
    println!("\nwrote BENCH_index.json (no BENCH.json to update)");
    Ok(())
}
