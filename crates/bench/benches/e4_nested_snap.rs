//! E4 — §2.5/§3.4: nested `snap` is stack-like, with per-scope Δ lists.
//!
//! The stack-of-update-lists implementation (§4.1) should make a nested
//! snap cost O(depth) scope pushes/pops plus its own updates — i.e. time
//! linear in depth, with no superlinear blow-up from re-scanning outer
//! scopes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use xqcore::Engine;

/// Build `snap { insert..., snap { insert..., ... } }` `depth` levels deep.
fn nested_snap_query(depth: usize) -> String {
    let mut q = String::from("insert { <leaf/> } into { $doc/x }");
    for i in 0..depth {
        q = format!("snap {{ insert {{ <l{i}/> }} into {{ $doc/x }}, {q} }}");
    }
    q
}

fn bench_nested(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_nested_snap");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    for depth in [1usize, 16, 64, 128] {
        group.throughput(Throughput::Elements(depth as u64));
        let q = nested_snap_query(depth);
        group.bench_with_input(BenchmarkId::new("depth", depth), &q, |b, q| {
            b.iter_batched(
                || {
                    let mut e = Engine::new();
                    e.load_document("doc", "<x/>").unwrap();
                    e
                },
                |mut e| e.run(q).expect("nested snap"),
                criterion::BatchSize::LargeInput,
            );
        });
    }

    // Correctness pin: the paper's §3.4 ordering example, asserted here so
    // the bench cannot drift from the semantics it claims to measure.
    let mut e = Engine::new();
    e.load_document("doc", "<x/>").unwrap();
    e.run(
        r#"let $x := $doc/x return
           snap ordered { insert {<a/>} into $x,
                          snap { insert {<b/>} into $x },
                          insert {<c/>} into $x }"#,
    )
    .unwrap();
    let names = e.run("for $n in $doc/x/* return name($n)").unwrap();
    assert_eq!(e.serialize(&names).unwrap(), "b a c");

    group.finish();
}

criterion_group!(benches, bench_nested);
criterion_main!(benches);
