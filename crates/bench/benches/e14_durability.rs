//! E14 — durable-commit latency (ISSUE 6): what one committed Δ costs
//! under each fsync policy.
//!
//! Workload: a stream of small single-insert commits (the paper's
//! Web-service shape — many tiny service calls, each one snap), measured
//! per-commit, medians of `REPS` streams:
//!
//! * **none**  — in-memory engine, no WAL attached (the PR-5 baseline).
//! * **off**   — WAL appends, no explicit fsync.
//! * **batch** — fsync once per 32 commits.
//! * **always**— fsync on every commit marker (the default; full
//!   process- and OS-crash safety).
//!
//! After the `always` stream the store is re-opened and its fingerprint
//! checked against the live engine — a recovery smoke on every bench run.
//!
//! Output: a table on stdout, `BENCH_durability.json`, and the canonical
//! `BENCH.json` updated in place (the `durability` section is replaced;
//! earlier experiments' sections are preserved).

use std::time::Instant;
use xqcore::Engine;
use xqdm::{Store, SyncMode};

const REPS: usize = 5;
const COMMITS: usize = 100;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn temp_dir(tag: &str, rep: usize) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("xqb_e14_{}_{tag}_{rep}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Median per-commit seconds for a stream of small insert commits.
/// `sync = None` runs fully in-memory (no WAL). Returns the medians and,
/// for the durable modes, the last stream's directory fingerprint pair
/// (live, recovered) for the recovery smoke.
fn time_stream(sync: Option<SyncMode>, tag: &str) -> (f64, Option<(u64, u64)>) {
    let mut per_commit = Vec::with_capacity(REPS);
    let mut smoke = None;
    for rep in 0..REPS {
        let mut e = Engine::new().with_seed(14);
        e.set_threads(1);
        let dir = temp_dir(tag, rep);
        if let Some(mode) = sync {
            e.set_durability(mode);
            e.open_store(&dir).expect("open store");
        }
        e.load_document("doc", "<site/>").expect("load");
        let t0 = Instant::now();
        for i in 0..COMMITS {
            e.run(&format!("insert {{ <e n=\"{i}\"/> }} into {{ $doc/site }}"))
                .expect("insert commit");
        }
        per_commit.push(t0.elapsed().as_secs_f64() / COMMITS as f64);
        if sync.is_some() && rep == REPS - 1 {
            let live = e.store.fingerprint();
            drop(e);
            let (store, _report) =
                Store::open_durable(&dir, SyncMode::Off).expect("recovery smoke");
            smoke = Some((live, store.fingerprint()));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    (median(per_commit), smoke)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    xqalg::install();
    let root = repo_root();

    println!("E14: per-commit latency, {COMMITS} single-insert commits, median of {REPS} streams");
    println!("{:<10} {:>14} {:>10}", "sync", "per-commit", "vs none");

    let modes: [(&str, Option<SyncMode>); 4] = [
        ("none", None),
        ("off", Some(SyncMode::Off)),
        ("batch", Some(SyncMode::Batch)),
        ("always", Some(SyncMode::Always)),
    ];
    let mut results: Vec<(&str, f64)> = Vec::new();
    let mut baseline = None;
    for (tag, sync) in modes {
        let (t, smoke) = time_stream(sync, tag);
        if let Some((live, recovered)) = smoke {
            assert_eq!(
                live, recovered,
                "{tag}: recovered fingerprint diverged from the live store"
            );
        }
        let base = *baseline.get_or_insert(t);
        println!("{tag:<10} {:>11.2} us {:>9.2}x", t * 1e6, t / base);
        results.push((tag, t));
    }

    let mut section = String::from("{\n");
    section.push_str(&format!("    \"commits_per_stream\": {COMMITS},\n"));
    for (i, (tag, t)) in results.iter().enumerate() {
        if i > 0 {
            section.push_str(",\n");
        }
        section.push_str(&format!("    \"per_commit_us_{tag}\": {:.3}", t * 1e6));
    }
    section.push_str("\n  }");

    std::fs::write(
        root.join("BENCH_durability.json"),
        format!("{{\n  \"experiment\": \"e14_durability\",\n  \"durability\": {section}\n}}\n"),
    )?;

    // Update the canonical BENCH.json in place: drop any previous
    // durability section, then splice the new one before the final
    // closing brace. Earlier experiments' sections are untouched.
    let bench_path = root.join("BENCH.json");
    if let Ok(mut bench) = std::fs::read_to_string(&bench_path) {
        if let Some(at) = bench.find(",\n  \"durability\"") {
            bench.truncate(at);
            bench.push_str("\n}\n");
        }
        if let Some(end) = bench.rfind('}') {
            let mut merged = bench[..end].trim_end().to_string();
            merged.push_str(&format!(",\n  \"durability\": {section}\n}}\n"));
            std::fs::write(&bench_path, merged)?;
            println!("\nwrote BENCH_durability.json and updated BENCH.json");
            return Ok(());
        }
    }
    println!("\nwrote BENCH_durability.json (no BENCH.json to update)");
    Ok(())
}
