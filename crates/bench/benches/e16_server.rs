//! E16 — multi-session server throughput (ISSUE 8): what xqserve's
//! snapshot-isolated read path buys under concurrent load.
//!
//! Closed-loop harness against the in-process [`xqcore::Server`] (the
//! same core the xqserve binary fronts with TCP): each session thread
//! issues its next request the moment the previous one returns, and
//! every request's latency is collected client-side.
//!
//! Three workloads over an XMark-shaped document:
//!
//! * **read-1** — one session, read-only queries (the serial baseline).
//! * **read-4** — four sessions, the same read-only queries: reads fork
//!   COW snapshots and share one plan cache, so throughput must not drop
//!   below the single-session baseline (gate self-disabled below 4
//!   cores, where there is no parallelism to win).
//! * **mixed-4** — four sessions, one write per 8 requests: writes
//!   serialize through the durable commit path while reads keep pinning
//!   snapshots; reported separately as read/write p50/p99.
//!
//! Output: a table on stdout, `BENCH_e16_server.json`, and the canonical
//! `BENCH.json` updated in place (the `server` section is replaced;
//! earlier experiments' sections are preserved).

use std::sync::{Arc, Barrier};
use std::time::Instant;
use xqcore::{Engine, Server, ServerConfig};

const ITEMS: usize = 300;
const READS_PER_SESSION: usize = 250;
const MIXED_PER_SESSION: usize = 200;

/// Read queries cycled per session: a structural scan, an aggregate,
/// and a predicate walk — all pure, all plan-cacheable.
const READ_QUERIES: [&str; 3] = [
    "count($doc/site/items/item)",
    "sum(for $i in $doc/site/items/item return number($i/@n))",
    "count($doc/site/items/item[number(@n) mod 7 = 0])",
];

fn build_server(sessions: usize) -> Server {
    let mut items = String::from("<site><items>");
    for n in 0..ITEMS {
        items.push_str(&format!("<item n=\"{n}\"><name>lot {n}</name></item>"));
    }
    items.push_str("</items><log/></site>");
    let mut e = Engine::new().with_seed(16);
    e.load_document("doc", &items).expect("load");
    let config = ServerConfig {
        max_sessions: sessions + 1,
        threads: 1, // isolate inter-session scaling from intra-query parallelism
        ..ServerConfig::default()
    };
    Server::with_config(e, config)
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

struct Run {
    qps: f64,
    read_ns: Vec<u64>,
    write_ns: Vec<u64>,
}

/// Drive `sessions` closed-loop workers; a request is a write iff its
/// index hits `write_every` (0 = read-only). Returns client-side
/// latencies and wall-clock throughput.
fn drive(server: &Server, sessions: usize, requests: usize, write_every: usize) -> Run {
    let start = Arc::new(Barrier::new(sessions + 1));
    let workers: Vec<_> = (0..sessions)
        .map(|s| {
            let server = server.clone();
            let start = start.clone();
            std::thread::spawn(move || {
                let session = server.open_session().expect("session");
                let mut reads = Vec::with_capacity(requests);
                let mut writes = Vec::new();
                start.wait();
                for i in 0..requests {
                    let is_write = write_every != 0 && i % write_every == write_every - 1;
                    let query = if is_write {
                        format!("insert {{ <e s=\"{s}\" i=\"{i}\"/> }} into {{ $doc/site/log }}")
                    } else {
                        READ_QUERIES[i % READ_QUERIES.len()].to_string()
                    };
                    let t0 = Instant::now();
                    session.execute(&query).expect("request");
                    let ns = t0.elapsed().as_nanos() as u64;
                    if is_write {
                        writes.push(ns);
                    } else {
                        reads.push(ns);
                    }
                }
                (reads, writes)
            })
        })
        .collect();
    start.wait();
    let t0 = Instant::now();
    let mut read_ns = Vec::new();
    let mut write_ns = Vec::new();
    for w in workers {
        let (r, wr) = w.join().expect("worker");
        read_ns.extend(r);
        write_ns.extend(wr);
    }
    let wall = t0.elapsed().as_secs_f64();
    read_ns.sort_unstable();
    write_ns.sort_unstable();
    Run {
        qps: (sessions * requests) as f64 / wall,
        read_ns,
        write_ns,
    }
}

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    xqalg::install();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "E16: closed-loop server throughput, {ITEMS}-item document, {cores} core(s) available"
    );
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "workload", "qps", "read p50", "read p99", "write p50", "write p99"
    );

    let mut rows: Vec<(&str, Run)> = Vec::new();
    for (tag, sessions, requests, write_every) in [
        ("read-1", 1usize, READS_PER_SESSION, 0usize),
        ("read-4", 4, READS_PER_SESSION, 0),
        ("mixed-4", 4, MIXED_PER_SESSION, 8),
    ] {
        let server = build_server(sessions);
        // Warm the shared plan cache so the first request's planning
        // doesn't skew p99.
        let warm = server.open_session().expect("warm session");
        for q in READ_QUERIES {
            warm.execute(q).expect("warm");
        }
        drop(warm);
        let run = drive(&server, sessions, requests, write_every);
        let p = |v: &[u64], q| percentile(v, q) as f64 / 1e3;
        println!(
            "{tag:<10} {:>10.0} {:>9.1} us {:>9.1} us {:>9.1} us {:>9.1} us",
            run.qps,
            p(&run.read_ns, 0.50),
            p(&run.read_ns, 0.99),
            p(&run.write_ns, 0.50),
            p(&run.write_ns, 0.99),
        );
        // Every request in a mixed run either read a pinned snapshot or
        // committed an epoch; the server's own accounting must agree.
        let stats = server.stats();
        assert_eq!(stats.inflight, 0);
        assert_eq!(stats.snapshot_pins, 0);
        if write_every != 0 {
            assert_eq!(stats.epoch as usize, sessions * (requests / write_every));
        }
        rows.push((tag, run));
    }

    // Acceptance gate (ISSUE 8): concurrent read-only throughput at 4
    // sessions must not fall below 1 session — but only where the
    // machine can actually run 4 readers at once.
    let read1 = rows[0].1.qps;
    let read4 = rows[1].1.qps;
    println!("\nread-4 / read-1 throughput: {:.2}x", read4 / read1);
    if cores >= 4 {
        assert!(
            read4 >= read1,
            "4-session read throughput ({read4:.0} qps) fell below \
             1 session ({read1:.0} qps) on a {cores}-core machine"
        );
        println!("gate: 4-session reads >= 1-session baseline -- OK");
    } else {
        println!("gate: skipped ({cores} core(s) < 4; no parallelism to win)");
    }

    let mut section = String::from("{\n");
    section.push_str(&format!("    \"cores\": {cores},\n"));
    section.push_str(&format!("    \"items\": {ITEMS}"));
    for (tag, run) in &rows {
        let key = tag.replace('-', "_");
        section.push_str(&format!(",\n    \"{key}_qps\": {:.0}", run.qps));
        section.push_str(&format!(
            ",\n    \"{key}_read_p50_us\": {:.1},\n    \"{key}_read_p99_us\": {:.1}",
            percentile(&run.read_ns, 0.50) as f64 / 1e3,
            percentile(&run.read_ns, 0.99) as f64 / 1e3
        ));
        if !run.write_ns.is_empty() {
            section.push_str(&format!(
                ",\n    \"{key}_write_p50_us\": {:.1},\n    \"{key}_write_p99_us\": {:.1}",
                percentile(&run.write_ns, 0.50) as f64 / 1e3,
                percentile(&run.write_ns, 0.99) as f64 / 1e3
            ));
        }
    }
    section.push_str(&format!(
        ",\n    \"read_scaling_4v1\": {:.3}\n  }}",
        read4 / read1
    ));

    let root = repo_root();
    std::fs::write(
        root.join("BENCH_e16_server.json"),
        format!("{{\n  \"experiment\": \"e16_server\",\n  \"server\": {section}\n}}\n"),
    )?;

    // Update the canonical BENCH.json in place: drop any previous server
    // section, then splice the new one before the final closing brace.
    let bench_path = root.join("BENCH.json");
    if let Ok(mut bench) = std::fs::read_to_string(&bench_path) {
        if let Some(at) = bench.find(",\n  \"server\"") {
            bench.truncate(at);
            bench.push_str("\n}\n");
        }
        if let Some(end) = bench.rfind('}') {
            let mut merged = bench[..end].trim_end().to_string();
            merged.push_str(&format!(",\n  \"server\": {section}\n}}\n"));
            std::fs::write(&bench_path, merged)?;
            println!("\nwrote BENCH_e16_server.json and updated BENCH.json");
            return Ok(());
        }
    }
    println!("\nwrote BENCH_e16_server.json (no BENCH.json to update)");
    Ok(())
}
