//! E12 — observability overhead (ISSUE 4): instrumentation must be
//! zero-cost when off.
//!
//! Two questions, measured on the E11 workloads (XMark Q8 variants,
//! 150 persons / 75 closed auctions, medians of `REPS`):
//!
//! * **Disabled cost** — the per-node profiling hooks compile into the
//!   hot path as a single branch on `Evaluator::profiling()`, and the
//!   engine metrics flush is a handful of relaxed atomics per *run*.
//!   A plain `Engine::run` today is compared against the committed
//!   PR-3 baselines in `BENCH_parallel.json` (generated on the same
//!   container class before the hooks existed): the ratio is the
//!   end-to-end price of having the subsystem in the binary. Target
//!   ≤ 1.02 (recorded, not asserted — the committed BENCH.json value
//!   is the gate; a re-run on different hardware only re-reports).
//! * **Enabled cost** — `explain_analyze` on the same workloads: what
//!   opting in actually costs (per-node wall clocks + cardinality
//!   accounting). Reported for scale; there is no target, profiling is
//!   explicit opt-in.
//!
//! Output: a table on stdout and the canonical top-level `BENCH.json`,
//! which also splices in the raw `BENCH_pipeline.json` (PR 2) and
//! `BENCH_parallel.json` (PR 3) so the whole bench trajectory is
//! machine-readable from one file.

use std::time::Instant;
use xmarkgen::Scale;
use xqbench::{xmark_fixture, Q8_PURE_VARIANT, Q8_VARIANT};
use xqcore::Engine;

const REPS: usize = 7;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn q8_engine(scale: &Scale, compile: bool) -> Engine {
    let mut e = Engine::new().with_seed(11);
    e.set_compile(compile);
    e.set_threads(1);
    let (store, bindings) = xmark_fixture(8, scale);
    e.store = store;
    for (name, seq) in bindings {
        e.bind(&name, seq);
    }
    e
}

/// Median seconds for a plain run and for `explain_analyze` of the same
/// query, fresh engine per repetition (updates must not accumulate).
fn time_pair(scale: &Scale, compile: bool, query: &str) -> (f64, f64) {
    let mut plain = Vec::with_capacity(REPS);
    let mut analyze = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let mut e = q8_engine(scale, compile);
        let t0 = Instant::now();
        e.run(query).expect("plain run");
        plain.push(t0.elapsed().as_secs_f64());

        let mut e = q8_engine(scale, compile);
        let t0 = Instant::now();
        let report = e.explain_analyze(query).expect("analyze run");
        analyze.push(t0.elapsed().as_secs_f64());
        assert!(report.contains("totals:"), "analyze report missing totals");
    }
    (median(plain), median(analyze))
}

/// Pull `"q8_pure_<mode>": {"1": <seconds>, …}` out of the committed
/// BENCH_parallel.json without a JSON parser (the shape is ours).
fn committed_baseline(parallel_json: Option<&str>, mode: &str) -> Option<f64> {
    let text = parallel_json?;
    let key = format!("\"q8_pure_{mode}\"");
    let obj = &text[text.find(&key)? + key.len()..];
    let one = &obj[obj.find("\"1\":")? + 4..];
    let end = one.find([',', '}'])?;
    one[..end].trim().parse().ok()
}

/// The workspace root — `cargo bench` runs with the package dir
/// (`crates/bench`) as cwd, but the BENCH files live at the top level.
fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    xqalg::install();
    let scale = Scale::join_sides(150, 75);

    println!("E12: observability overhead, median of {REPS} runs (1 thread)");
    println!(
        "{:<12} {:<12} {:>10} {:>11} {:>9}",
        "workload", "pipeline", "plain", "analyze", "ratio"
    );
    let mut obs = String::from("{\n    \"scale\": {\"persons\": 150, \"closed_auctions\": 75},\n");

    let mut q8_pure_plain = [0.0f64; 2]; // [interpreted, compiled]
    for (wname, query) in [("q8_pure", Q8_PURE_VARIANT), ("q8_update", Q8_VARIANT)] {
        for &compile in &[false, true] {
            let mode = if compile { "compiled" } else { "interpreted" };
            let (plain, analyze) = time_pair(&scale, compile, query);
            if wname == "q8_pure" {
                q8_pure_plain[compile as usize] = plain;
            }
            let ratio = analyze / plain;
            println!(
                "{wname:<12} {mode:<12} {:>7.2} ms {:>8.2} ms {ratio:>8.2}x",
                plain * 1e3,
                analyze * 1e3
            );
            obs.push_str(&format!(
                "    \"{wname}_{mode}\": {{\"plain_s\": {plain:.6}, \
                 \"analyze_s\": {analyze:.6}, \"analyze_ratio\": {ratio:.3}}},\n"
            ));
        }
    }

    // Disabled-path cost vs the committed PR-3 baselines.
    let root = repo_root();
    let parallel = std::fs::read_to_string(root.join("BENCH_parallel.json")).ok();
    obs.push_str("    \"disabled_vs_pr3_baseline\": {");
    println!("\ndisabled-path cost vs committed PR-3 baselines (target ≤ 1.02):");
    for (i, (mode, now)) in [
        ("interpreted", q8_pure_plain[0]),
        ("compiled", q8_pure_plain[1]),
    ]
    .into_iter()
    .enumerate()
    {
        let entry = match committed_baseline(parallel.as_deref(), mode) {
            Some(base) => {
                let ratio = now / base;
                println!(
                    "  q8_pure {mode}: {:.2} ms now vs {:.2} ms committed = {ratio:.3}x",
                    now * 1e3,
                    base * 1e3
                );
                format!(
                    "\"{mode}\": {{\"committed_s\": {base:.6}, \"now_s\": {now:.6}, \
                     \"ratio\": {ratio:.3}}}"
                )
            }
            None => {
                println!("  q8_pure {mode}: no committed baseline found");
                format!("\"{mode}\": null")
            }
        };
        if i > 0 {
            obs.push_str(", ");
        }
        obs.push_str(&entry);
    }
    obs.push_str("}\n  }");

    // Canonical merged bench file: raw per-experiment JSON spliced in.
    let splice = |name: &str| {
        std::fs::read_to_string(root.join(name))
            .map(|s| {
                // Indent the raw text so the merged file stays readable.
                s.trim_end().lines().collect::<Vec<_>>().join("\n  ")
            })
            .unwrap_or_else(|_| "null".to_string())
    };
    let merged = format!(
        "{{\n  \"schema\": \"xquery-bang-bench/1\",\n  \"generated_by\": \"e12_obs_overhead\",\n  \
         \"pipeline\": {},\n  \"parallel\": {},\n  \"obs_overhead\": {}\n}}\n",
        splice("BENCH_pipeline.json"),
        splice("BENCH_parallel.json"),
        obs
    );
    std::fs::write(root.join("BENCH.json"), merged)?;
    println!("\nwrote BENCH.json");
    Ok(())
}
