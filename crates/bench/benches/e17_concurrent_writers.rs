//! E17 — optimistic concurrent writers (ISSUE 9): what the Δ-footprint
//! commit path buys — and costs — under multi-writer load.
//!
//! Closed-loop harness against the in-process [`xqcore::Server`], like
//! E16 but write-only. Two workloads at 1/2/4 writers:
//!
//! * **disjoint** — each writer appends into its own container. The
//!   footprints never intersect, so every Δ validates on the first try;
//!   this measures the pure overhead/benefit of optimistic evaluation
//!   (forked evaluation overlaps, only the commit serializes).
//! * **contended** — every writer read-modify-writes one shared counter
//!   (`replace value of`, the §2.5 nextid shape). This is the worst
//!   case: almost every concurrent Δ conflicts, retries, and may fall
//!   back to the client's XQB0052 re-submit loop. The harness asserts
//!   the lost-update invariant — the final counter equals the total
//!   number of increments — at every writer count.
//!
//! For comparison, both workloads also run at 4 writers with
//! `occ_writers: false` (the PR-8 fully-serialized path), so the table
//! shows the conflict-rate sweep *and* the occ-vs-lock delta.
//!
//! Output: a table on stdout, `BENCH_e17_concurrency.json`, and the
//! canonical `BENCH.json` updated in place (the `concurrency` section is
//! replaced; earlier experiments' sections are preserved).

use std::sync::{Arc, Barrier};
use std::time::Instant;
use xqcore::{Engine, Error, Server, ServerConfig};

const REQUESTS_PER_WRITER: usize = 150;

fn build_server(writers: usize, occ: bool) -> Server {
    let mut doc = String::from("<site><c>0</c>");
    for s in 0..writers {
        doc.push_str(&format!("<w{s}/>"));
    }
    doc.push_str("</site>");
    let mut e = Engine::new().with_seed(17);
    e.load_document("doc", &doc).expect("load");
    let config = ServerConfig {
        max_sessions: writers + 1,
        threads: 1, // isolate inter-writer scaling from intra-query parallelism
        occ_writers: occ,
        ..ServerConfig::default()
    };
    Server::with_config(e, config)
}

struct Run {
    qps: f64,
    conflicts: u64,
    retries: u64,
    resubmits: u64,
    commits: u64,
}

/// Drive `writers` closed-loop sessions through `requests` writes each.
/// The per-request query comes from `query(s, i)`; XQB0052 aborts are
/// re-submitted (the documented client contract) and counted.
fn drive(
    server: &Server,
    writers: usize,
    requests: usize,
    query: impl Fn(usize, usize) -> String + Send + Sync + 'static,
) -> Run {
    // The metrics registry is process-global: measure by delta.
    let before = server.stats();
    let query = Arc::new(query);
    let start = Arc::new(Barrier::new(writers + 1));
    let workers: Vec<_> = (0..writers)
        .map(|s| {
            let server = server.clone();
            let start = start.clone();
            let query = query.clone();
            std::thread::spawn(move || {
                let session = server.open_session().expect("session");
                let mut resubmits = 0u64;
                start.wait();
                for i in 0..requests {
                    let q = query(s, i);
                    loop {
                        match session.execute(&q) {
                            Ok(_) => break,
                            Err(Error::Eval(e)) if e.code == "XQB0052" => resubmits += 1,
                            Err(e) => panic!("{q}: {e}"),
                        }
                    }
                }
                resubmits
            })
        })
        .collect();
    start.wait();
    let t0 = Instant::now();
    let mut resubmits = 0;
    for w in workers {
        resubmits += w.join().expect("worker");
    }
    let wall = t0.elapsed().as_secs_f64();
    let after = server.stats();
    Run {
        qps: (writers * requests) as f64 / wall,
        conflicts: after.conflicts - before.conflicts,
        retries: after.retries - before.retries,
        resubmits,
        commits: after.epoch - before.epoch,
    }
}

fn counter_of(server: &Server) -> u64 {
    let s = server.open_session().expect("probe session");
    s.execute("string($doc/site/c)")
        .expect("probe")
        .body
        .parse()
        .expect("numeric counter")
}

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    xqalg::install();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "E17: closed-loop concurrent writers, {REQUESTS_PER_WRITER} writes/writer, \
         {cores} core(s) available"
    );
    println!(
        "{:<16} {:>10} {:>10} {:>9} {:>10} {:>9}",
        "workload", "qps", "conflicts", "retries", "resubmits", "rate"
    );

    let mut rows: Vec<(String, Run)> = Vec::new();
    let configs: [(&str, usize, bool); 8] = [
        ("disjoint-1", 1, true),
        ("disjoint-2", 2, true),
        ("disjoint-4", 4, true),
        ("disjoint-4-lock", 4, false),
        ("contended-1", 1, true),
        ("contended-2", 2, true),
        ("contended-4", 4, true),
        ("contended-4-lock", 4, false),
    ];
    for (tag, writers, occ) in configs {
        let server = build_server(writers, occ);
        let contended = tag.starts_with("contended");
        let run = if contended {
            drive(&server, writers, REQUESTS_PER_WRITER, |_, _| {
                "replace value of { $doc/site/c/text() } with { $doc/site/c + 1 }".to_string()
            })
        } else {
            drive(&server, writers, REQUESTS_PER_WRITER, |s, i| {
                format!("insert {{ <e i=\"{i}\"/> }} into {{ $doc/site/w{s} }}")
            })
        };

        // Hard invariants, whatever the interleaving:
        if contended {
            // The lost-update gate — every increment survived validation,
            // retry, or client re-submit.
            assert_eq!(
                counter_of(&server),
                (writers * REQUESTS_PER_WRITER) as u64,
                "{tag}: lost update"
            );
        } else {
            // Disjoint footprints must never conflict.
            assert_eq!(run.conflicts, 0, "{tag}: disjoint writers conflicted");
            assert_eq!(run.resubmits, 0, "{tag}: disjoint writers aborted");
        }
        // Every client request eventually committed exactly once — an
        // XQB0052 abort publishes nothing, and the client re-submitted.
        assert_eq!(
            run.commits,
            (writers * REQUESTS_PER_WRITER) as u64,
            "{tag}: commit accounting"
        );

        let rate = run.conflicts as f64 / run.commits as f64;
        println!(
            "{tag:<16} {:>10.0} {:>10} {:>9} {:>10} {:>8.1}%",
            run.qps,
            run.conflicts,
            run.retries,
            run.resubmits,
            rate * 100.0
        );
        rows.push((tag.to_string(), run));
    }

    let mut section = String::from("{\n");
    section.push_str(&format!("    \"cores\": {cores},\n"));
    section.push_str(&format!(
        "    \"requests_per_writer\": {REQUESTS_PER_WRITER}"
    ));
    for (tag, run) in &rows {
        let key = tag.replace('-', "_");
        section.push_str(&format!(
            ",\n    \"{key}_qps\": {:.0},\n    \"{key}_conflicts\": {},\n    \
             \"{key}_retries\": {},\n    \"{key}_resubmits\": {}",
            run.qps, run.conflicts, run.retries, run.resubmits
        ));
    }
    section.push_str("\n  }");

    let root = repo_root();
    std::fs::write(
        root.join("BENCH_e17_concurrency.json"),
        format!(
            "{{\n  \"experiment\": \"e17_concurrent_writers\",\n  \"concurrency\": {section}\n}}\n"
        ),
    )?;

    // Update the canonical BENCH.json in place: drop any previous
    // concurrency section, then splice the new one before the final
    // closing brace.
    let bench_path = root.join("BENCH.json");
    if let Ok(mut bench) = std::fs::read_to_string(&bench_path) {
        if let Some(at) = bench.find(",\n  \"concurrency\"") {
            bench.truncate(at);
            bench.push_str("\n}\n");
        }
        if let Some(end) = bench.rfind('}') {
            let mut merged = bench[..end].trim_end().to_string();
            merged.push_str(&format!(",\n  \"concurrency\": {section}\n}}\n"));
            std::fs::write(&bench_path, merged)?;
            println!("\nwrote BENCH_e17_concurrency.json and updated BENCH.json");
            return Ok(());
        }
    }
    println!("\nwrote BENCH_e17_concurrency.json (no BENCH.json to update)");
    Ok(())
}
