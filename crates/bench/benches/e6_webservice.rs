//! E6 — §2.2/§2.3: the Web-service logging use case.
//!
//! The paper's motivating claim is qualitative — first-class updates let a
//! function both return a value and log — so the measurable question is
//! the *cost* of that expressiveness: `get_item` with logging vs the pure
//! XQuery 1.0 variant, and with the archiving variant (which closes a snap
//! per call to observe its own log).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xmarkgen::{Scale, XmarkGen};
use xqcore::Engine;
use xqdm::Item;

const GET_ITEM_PLAIN: &str = r#"
declare function get_item($itemid, $userid) {
  let $item := $auction//item[@id = $itemid]
  return $item
};
get_item("item3", "person1")"#;

const GET_ITEM_LOGGED: &str = r#"
declare function get_item($itemid, $userid) {
  let $item := $auction//item[@id = $itemid]
  return (
    let $name := $auction//person[@id = $userid]/name return
    insert { <logentry user="{$name}" itemid="{$itemid}"/> }
    into { $log/log },
    $item
  )
};
get_item("item3", "person1")"#;

const GET_ITEM_ARCHIVING: &str = r#"
declare variable $maxlog := 10;
declare function get_item($itemid, $userid) {
  let $item := $auction//item[@id = $itemid]
  return (
    let $name := $auction//person[@id = $userid]/name return
    (snap insert { <logentry user="{$name}" itemid="{$itemid}"/> }
          into { $log/log },
     if (count($log/log/logentry) >= $maxlog)
     then snap delete $log/log/logentry
     else ()),
    $item
  )
};
get_item("item3", "person1")"#;

fn service_engine() -> Engine {
    let mut e = Engine::new();
    let scale = Scale {
        persons: 50,
        items: 40,
        closed_auctions: 20,
        open_auctions: 10,
    };
    let auction = XmarkGen::new(6)
        .generate(&mut e.store, &scale)
        .expect("xmark");
    e.bind("auction", vec![Item::Node(auction)]);
    e.load_document("log", "<log/>").unwrap();
    e
}

fn bench_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_webservice");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    for (label, query) in [
        ("plain-xquery10", GET_ITEM_PLAIN),
        ("with-logging", GET_ITEM_LOGGED),
        ("with-archiving-snap", GET_ITEM_ARCHIVING),
    ] {
        group.bench_with_input(BenchmarkId::new(label, "call"), &query, |b, q| {
            // One engine per batch: the log grows across calls, which is
            // the realistic service profile (archiving keeps it bounded).
            b.iter_batched(
                service_engine,
                |mut e| e.run(q).expect("service call"),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
