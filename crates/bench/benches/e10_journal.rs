//! E10 — undo-journal overhead on the Δ-application success path.
//!
//! [`apply_delta`] runs every request inside a store undo frame so a failed
//! request can roll the store back to its pre-apply state. The frame is pure
//! insurance on the success path: each primitive mutation pushes one inverse
//! entry, and the outermost commit clears the journal in O(entries).
//!
//! This bench quantifies that insurance premium by comparing the journaled
//! entry point against a raw request loop with no frame open (journaling is
//! a no-op when no frame is active, so the raw loop records nothing).
//! Target: < 15% overhead on the e2-style rename and chained-insert Δs.
//! The rollback benches bound the *failure* path: undoing a fully-applied
//! journal is the worst case, and should stay linear in |Δ|.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use xqbench::{chained_inserts_delta, renames_delta};
use xqcore::{apply_delta, Delta, SnapMode};
use xqdm::Store;

type Fixture = fn(&mut Store, usize) -> Delta;

fn rename_fixture(store: &mut Store, k: usize) -> Delta {
    renames_delta(store, k)
}

fn insert_fixture(store: &mut Store, k: usize) -> Delta {
    chained_inserts_delta(store, k).1
}

fn bench_journal(c: &mut Criterion) {
    // Warm the allocator before the first measured group: the very first
    // benchmark in the process otherwise pays page-fault costs none of the
    // later ones see, which skews the journaled/raw ratio.
    for _ in 0..50 {
        let mut store = Store::new();
        let delta = renames_delta(&mut store, 10_000);
        apply_delta(&mut store, delta, SnapMode::Ordered, 42).expect("warmup");
    }

    let mut group = c.benchmark_group("e10_journal");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    let fixtures: [(&str, Fixture); 2] = [("renames", rename_fixture), ("inserts", insert_fixture)];

    for k in [1_000usize, 10_000] {
        group.throughput(Throughput::Elements(k as u64));
        for (name, fixture) in fixtures {
            // Success path, journaled: frame + per-op inverse entries + commit.
            group.bench_with_input(
                BenchmarkId::new(format!("{name}-journaled"), k),
                &k,
                |b, &k| {
                    b.iter_batched(
                        || {
                            let mut store = Store::new();
                            let delta = fixture(&mut store, k);
                            (store, delta)
                        },
                        |(mut store, delta)| {
                            apply_delta(&mut store, delta, SnapMode::Ordered, 42).expect("apply")
                        },
                        criterion::BatchSize::LargeInput,
                    );
                },
            );
            // Baseline: the same requests with no frame open, so every
            // journaling() check is false and nothing is recorded.
            group.bench_with_input(BenchmarkId::new(format!("{name}-raw"), k), &k, |b, &k| {
                b.iter_batched(
                    || {
                        let mut store = Store::new();
                        let delta = fixture(&mut store, k);
                        (store, delta.into_requests())
                    },
                    |(mut store, requests)| {
                        for req in &requests {
                            req.apply(&mut store).expect("apply");
                        }
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
            // Failure path: apply everything inside a frame, then undo it
            // all — the worst-case rollback (journal holds |Δ| entries).
            group.bench_with_input(
                BenchmarkId::new(format!("{name}-rollback"), k),
                &k,
                |b, &k| {
                    b.iter_batched(
                        || {
                            let mut store = Store::new();
                            let delta = fixture(&mut store, k);
                            (store, delta.into_requests())
                        },
                        |(mut store, requests)| {
                            store.begin_frame();
                            for req in &requests {
                                req.apply(&mut store).expect("apply");
                            }
                            store.rollback_frame();
                        },
                        criterion::BatchSize::LargeInput,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_journal);
criterion_main!(benches);
