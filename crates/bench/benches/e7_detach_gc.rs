//! E7 — §3.1/§4.1: the detach semantics of `delete` leaves "persistent
//! but unreachable nodes", and the paper flags their garbage collection as
//! one of the two real data-model problems.
//!
//! Measures (a) how garbage accumulates under a delete-heavy workload
//! (detach itself is cheap — it never frees), and (b) the cost of the
//! explicit reachability sweep `collect_garbage` as store size grows —
//! expected linear in live+dead nodes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use xqdm::{NodeId, QName, Store};

/// A store with `n` children under a root, then all children detached:
/// maximal garbage relative to the root.
fn detach_heavy_store(n: usize) -> (Store, NodeId) {
    let mut store = Store::new();
    let root = store.new_element(QName::local("root"));
    let mut kids = Vec::with_capacity(n);
    for i in 0..n {
        let c = store.new_element(QName::local(format!("c{i}")));
        let t = store.new_text("payload");
        store.append_child(c, t).unwrap();
        store.append_child(root, c).unwrap();
        kids.push(c);
    }
    for c in kids {
        store.detach(c).unwrap();
    }
    (store, root)
}

fn bench_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_detach_gc");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    for n in [1_000usize, 10_000, 50_000] {
        group.throughput(Throughput::Elements(n as u64));
        // Detach alone: O(children-list) removal per node, no freeing.
        group.bench_with_input(BenchmarkId::new("detach-workload", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut store = Store::new();
                    let root = store.new_element(QName::local("root"));
                    let kids: Vec<NodeId> = (0..n)
                        .map(|_| {
                            let c = store.new_element(QName::local("c"));
                            store.append_child(root, c).unwrap();
                            c
                        })
                        .collect();
                    (store, kids)
                },
                |(mut store, kids)| {
                    // Each detach rescans the parent's remaining child
                    // list, so detaching all n children of one wide parent
                    // is O(n²) — the cost profile the detach semantics
                    // implies on wide nodes (reported as such in
                    // EXPERIMENTS.md).
                    for c in kids.into_iter().rev() {
                        store.detach(c).unwrap();
                    }
                    store
                },
                criterion::BatchSize::LargeInput,
            );
        });
        // Reachability statistics (the monitoring a server would run).
        group.bench_with_input(BenchmarkId::new("stats", n), &n, |b, &n| {
            let (store, root) = detach_heavy_store(n);
            b.iter(|| store.stats(&[root]).unwrap());
        });
        // The sweep itself.
        group.bench_with_input(BenchmarkId::new("collect-garbage", n), &n, |b, &n| {
            b.iter_batched(
                || detach_heavy_store(n),
                |(mut store, root)| {
                    let reclaimed = store.collect_garbage(&[root]).unwrap();
                    assert_eq!(reclaimed, 2 * n); // element + text per child
                    store
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gc);
criterion_main!(benches);
