//! E3 — §2.4: "make snap scope as broad as possible, since a broader snap
//! favors optimization."
//!
//! Two programs performing the same N log insertions:
//! * **broad**: one (implicit) snap collecting all N requests, applied
//!   once at the end;
//! * **per-item**: `snap insert` inside the loop — N separate snapshot
//!   scopes, each applying immediately (and therefore each observable).
//!
//! Expected shape: broad ≥ per-item throughput; the per-item variant pays
//! a Δ-scope open/apply cycle per iteration, and the broad variant keeps
//! the loop body effect-free (the precondition for every §4 rewrite).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use xqcore::Engine;

fn engine_with_log() -> Engine {
    let mut e = Engine::new();
    e.load_document("logdoc", "<log/>").unwrap();
    e
}

fn bench_snap_scope(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_snap_scope");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    for n in [100usize, 1_000, 5_000] {
        group.throughput(Throughput::Elements(n as u64));
        let broad = format!(
            "for $i in 1 to {n} return insert {{ <entry n=\"{{$i}}\"/> }} into {{ $logdoc/log }}"
        );
        let per_item = format!(
            "for $i in 1 to {n} return snap insert {{ <entry n=\"{{$i}}\"/> }} into {{ $logdoc/log }}"
        );
        group.bench_with_input(BenchmarkId::new("broad-snap", n), &broad, |b, q| {
            b.iter_batched(
                engine_with_log,
                |mut e| e.run(q).expect("broad"),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("per-item-snap", n), &per_item, |b, q| {
            b.iter_batched(
                engine_with_log,
                |mut e| e.run(q).expect("per-item"),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_snap_scope);
criterion_main!(benches);
