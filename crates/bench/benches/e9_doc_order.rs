//! E9 (ablation) — §4.1: "the only two significant challenges relate to
//! dealing with document order maintenance, and garbage collection".
//!
//! Compares our two document-order implementations on wide XMark-like
//! trees (XMark's `people` element has tens of thousands of children, so
//! fanout is the dominant term):
//!
//! * **gap-keys** (`cmp_doc_order`): O(depth) per comparison, maintained
//!   incrementally at insertion;
//! * **scan** (`cmp_doc_order_scan`): recompute sibling positions by
//!   scanning child lists — O(depth · fanout) per comparison.
//!
//! Expected shape: scan degrades linearly with fanout; gap-keys stay flat.
//! `sort_and_dedup` (every path step's ddo pass) inherits the gap-key
//! speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use xqdm::{NodeId, QName, Store};

/// A root with `fanout` children, each with one text child.
fn wide_tree(fanout: usize) -> (Store, Vec<NodeId>) {
    let mut store = Store::new();
    let root = store.new_element(QName::local("people"));
    let kids: Vec<NodeId> = (0..fanout)
        .map(|i| {
            let c = store.new_element(QName::local(format!("person{i}")));
            let t = store.new_text("x");
            store.append_child(c, t).unwrap();
            store.append_child(root, c).unwrap();
            c
        })
        .collect();
    (store, kids)
}

fn bench_doc_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_doc_order");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    for fanout in [100usize, 1_000, 10_000] {
        let (store, kids) = wide_tree(fanout);
        // Compare nodes from the middle of the list (worst case for scan).
        let a = kids[fanout / 2 - 1];
        let b = kids[fanout / 2];
        group.bench_with_input(
            BenchmarkId::new("cmp-gap-keys", fanout),
            &fanout,
            |bch, _| {
                bch.iter(|| store.cmp_doc_order(a, b).unwrap());
            },
        );
        group.bench_with_input(BenchmarkId::new("cmp-scan", fanout), &fanout, |bch, _| {
            bch.iter(|| store.cmp_doc_order_scan(a, b).unwrap());
        });
        // The operation queries actually pay for: ddo over a step result.
        group.throughput(Throughput::Elements(fanout as u64));
        group.bench_with_input(BenchmarkId::new("sort-dedup", fanout), &fanout, |bch, _| {
            let mut shuffled: Vec<NodeId> = kids.iter().rev().copied().collect();
            bch.iter(|| {
                let mut v = shuffled.clone();
                store.sort_and_dedup(&mut v).unwrap();
                v
            });
            shuffled.reverse();
        });
    }
    group.finish();
}

criterion_group!(benches, bench_doc_order);
criterion_main!(benches);
