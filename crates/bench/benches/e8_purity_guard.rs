//! E8 — §4.2/§4.3: the side-effect judgment as an optimizer guard.
//!
//! Paper: "if we had used a snap insert at line 5 of the source code, the
//! group-by optimization would be more difficult to detect". Our compiler
//! makes that concrete: the plain `insert` variant is rewritten to the
//! outer-join/group-by plan; the `snap insert` variant must fall back to
//! the nested loop.
//!
//! Expected shape: the two variants do the same work per match, but the
//! guarded one loses the O(n·m) → O(n+m+matches) rewrite, so its runtime
//! diverges quadratically — the measurable price of observing one's own
//! effects mid-query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xmarkgen::Scale;
use xqalg::{run_optimized, Compiler, QueryPlan};
use xqbench::{xmark_fixture, Q8_SNAP_VARIANT, Q8_VARIANT};

fn bench_guard(c: &mut Criterion) {
    let plain = xqsyn::compile(Q8_VARIANT).expect("compile plain");
    let snapped = xqsyn::compile(Q8_SNAP_VARIANT).expect("compile snapped");

    // Pin the optimizer decisions the experiment is about.
    assert!(matches!(
        Compiler::new(&plain).compile(&plain.body),
        QueryPlan::OuterJoinGroupBy(_)
    ));
    assert!(matches!(
        Compiler::new(&snapped).compile(&snapped.body),
        QueryPlan::Iterate(_)
    ));

    let mut group = c.benchmark_group("e8_purity_guard");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    for n in [50usize, 100, 200] {
        let scale = Scale::join_sides(n, n / 2);
        group.bench_with_input(
            BenchmarkId::new("insert-rewritten", n),
            &scale,
            |b, scale| {
                b.iter_batched(
                    || xmark_fixture(8, scale),
                    |(mut store, bindings)| {
                        let (v, optimized) =
                            run_optimized(&plain, &mut store, &bindings, 0).expect("plain");
                        assert!(optimized);
                        v
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("snap-insert-fallback", n),
            &scale,
            |b, scale| {
                b.iter_batched(
                    || xmark_fixture(8, scale),
                    |(mut store, bindings)| {
                        let (v, optimized) =
                            run_optimized(&snapped, &mut store, &bindings, 0).expect("snapped");
                        assert!(!optimized);
                        v
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_guard);
criterion_main!(benches);
