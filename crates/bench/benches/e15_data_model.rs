//! E15 — the raw-speed data model (DESIGN.md §14): what the interned
//! names, batch step kernels, and scratch reuse buy on real workloads.
//!
//! Three measurements, medians of `REPS` runs:
//!
//! * **parse MB/s** — XMark XML text into a fresh store (interner hot
//!   path: every tag name interns once, then compares as a `u32`).
//! * **serialize MB/s** — the same document back to text (ids resolve
//!   lexically; serialization is the bit-compatibility boundary the
//!   fingerprint pins in `tests/data_model.rs` guard).
//! * **compiled XMark Q8, 800 persons** — the engine-default pipeline
//!   with batched join sources and key paths, against the committed
//!   PR-6 row (`engine_s` 0.022494, BENCH.json history): the PR 7
//!   acceptance line is ≥2× on this row.
//!
//! Output: a table on stdout, `BENCH_data_model.json`, and the canonical
//! `BENCH.json` updated in place (the `data_model` section is replaced;
//! earlier experiments' sections are preserved).

use std::time::Instant;
use xmarkgen::{Scale, XmarkGen};
use xqcore::Engine;
use xqdm::item::Item;
use xqdm::{xml, Store};

const REPS: usize = 5;
/// The committed PR-6 compiled-Q8 row at 800 persons (BENCH.json).
const PR6_Q8_800_S: f64 = 0.022494;
/// Regression tripwire: generous slack under the ≥2× acceptance line so
/// a loud CI container reports honestly instead of flaking; the real
/// measured speedup lands in BENCH.json either way.
const MIN_SPEEDUP: f64 = 1.5;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn q8_engine(scale: &Scale) -> Engine {
    let mut e = Engine::new();
    let auction = XmarkGen::new(8)
        .generate(&mut e.store, scale)
        .expect("generate xmark");
    let purchasers = xml::parse_fragment(&mut e.store, "<purchasers/>").expect("purchasers")[0];
    e.bind("auction", xqdm::seq![Item::Node(auction)]);
    e.bind("purchasers", xqdm::seq![Item::Node(purchasers)]);
    e
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    xqalg::install();
    let root = repo_root();

    // --- parse / serialize throughput -------------------------------
    let scale = Scale::join_sides(800, 400);
    let text = XmarkGen::new(8).generate_xml(&scale).expect("xmark xml");
    let mb = text.len() as f64 / (1024.0 * 1024.0);

    let mut parse_s = Vec::with_capacity(REPS);
    let mut serialize_s = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let mut store = Store::new();
        let t0 = Instant::now();
        let doc = xml::parse_document(&mut store, &text)?;
        parse_s.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let out = xml::serialize(&store, doc)?;
        serialize_s.push(t0.elapsed().as_secs_f64());
        assert!(!out.is_empty());
    }
    let parse_mbs = mb / median(parse_s);
    let serialize_mbs = mb / median(serialize_s);
    println!("E15: data model, {mb:.2} MiB XMark document, median of {REPS}");
    println!("  parse:     {parse_mbs:>8.1} MiB/s");
    println!("  serialize: {serialize_mbs:>8.1} MiB/s");

    // --- compiled Q8 with batched sources and keys ------------------
    let mut q8_s = Vec::with_capacity(REPS);
    let mut rows = 0usize;
    for _ in 0..REPS {
        let mut e = q8_engine(&scale);
        let t0 = Instant::now();
        let out = e.run(xqbench::Q8_VARIANT)?;
        q8_s.push(t0.elapsed().as_secs_f64());
        rows = out.len();
        let stats = e.last_stats().expect("stats");
        assert!(stats.joins_executed > 0, "Q8 did not take the join plan");
        assert!(stats.batch_steps > 0, "Q8 join did not run batch kernels");
    }
    assert_eq!(rows, 800);
    let q8 = median(q8_s);
    let speedup = PR6_Q8_800_S / q8;
    println!(
        "  compiled Q8 (800 persons): {:.2} ms vs {:.2} ms committed PR-6 = {speedup:.2}x",
        q8 * 1e3,
        PR6_Q8_800_S * 1e3
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "compiled Q8 regressed: {speedup:.2}x vs PR-6 (target ≥2x, tripwire {MIN_SPEEDUP}x)"
    );

    let section = format!(
        "{{\n    \"document_mib\": {mb:.3},\n    \"parse_mib_s\": {parse_mbs:.1},\n    \
         \"serialize_mib_s\": {serialize_mbs:.1},\n    \"q8_compiled_batched\": \
         {{\"persons\": 800, \"closed_auctions\": 400, \"engine_s\": {q8:.6}, \
         \"pr6_engine_s\": {PR6_Q8_800_S}, \"speedup\": {speedup:.2}}}\n  }}"
    );
    std::fs::write(
        root.join("BENCH_data_model.json"),
        format!("{{\n  \"experiment\": \"e15_data_model\",\n  \"data_model\": {section}\n}}\n"),
    )?;

    // Update the canonical BENCH.json in place: drop any previous
    // data_model section, then splice the new one before the final
    // closing brace. Earlier experiments' sections are untouched.
    let bench_path = root.join("BENCH.json");
    if let Ok(mut bench) = std::fs::read_to_string(&bench_path) {
        if let Some(at) = bench.find(",\n  \"data_model\"") {
            bench.truncate(at);
            bench.push_str("\n}\n");
        }
        if let Some(end) = bench.rfind('}') {
            let mut merged = bench[..end].trim_end().to_string();
            merged.push_str(&format!(",\n  \"data_model\": {section}\n}}\n"));
            std::fs::write(&bench_path, merged)?;
            println!("\nwrote BENCH_data_model.json and updated BENCH.json");
            return Ok(());
        }
    }
    println!("\nwrote BENCH_data_model.json (no BENCH.json to update)");
    Ok(())
}
