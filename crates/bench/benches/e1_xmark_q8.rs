//! E1 — §4.3 complexity claim on the XMark Q8 variant.
//!
//! Paper: naive evaluation is `O(|person| · |closed_auction|)`; the
//! outer-join/group-by plan is `O(|person| + |closed_auction| +
//! |matches|)`, "resulting in a substantial improvement".
//!
//! Expected shape: naive time grows ~quadratically with the scale knob
//! (both sides grow together), optimized ~linearly; the ratio therefore
//! grows ~linearly. Absolute numbers are ours, not Galax's.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xmarkgen::Scale;
use xqalg::{run_naive, run_optimized};
use xqbench::{xmark_fixture, Q8_VARIANT};

fn bench_q8(c: &mut Criterion) {
    let program = xqsyn::compile(Q8_VARIANT).expect("compile Q8");
    let mut group = c.benchmark_group("e1_xmark_q8");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    for n in [50usize, 100, 200] {
        let scale = Scale::join_sides(n, n / 2);
        group.bench_with_input(BenchmarkId::new("naive", n), &scale, |b, scale| {
            b.iter_batched(
                || xmark_fixture(8, scale),
                |(mut store, bindings)| {
                    run_naive(&program, &mut store, &bindings, 0).expect("naive")
                },
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("optimized", n), &scale, |b, scale| {
            b.iter_batched(
                || xmark_fixture(8, scale),
                |(mut store, bindings)| {
                    let (v, opt) =
                        run_optimized(&program, &mut store, &bindings, 0).expect("optimized");
                    assert!(opt);
                    v
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    // The optimized plan keeps scaling where naive would take minutes.
    for n in [400usize, 800] {
        let scale = Scale::join_sides(n, n / 2);
        group.bench_with_input(BenchmarkId::new("optimized", n), &scale, |b, scale| {
            b.iter_batched(
                || xmark_fixture(8, scale),
                |(mut store, bindings)| {
                    run_optimized(&program, &mut store, &bindings, 0).expect("optimized")
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_q8);
criterion_main!(benches);
