//! E11 — parallel evaluation of effect-free regions (DESIGN.md §9).
//!
//! Three measurements, one claim: when the purity gate admits a loop
//! body, worker threads buy wall-clock time *without changing any
//! observable*; when it rejects one, the engine provably stays
//! sequential.
//!
//! * **Q8-pure × threads** — the XMark Q8 variant with its updates
//!   stripped (`Q8_PURE_VARIANT`), evaluated at 1/2/4/8 threads on both
//!   pipelines. The interpreted pipeline runs the paper's naive nested
//!   loop, so the fan-out parallelizes the quadratic scan; the compiled
//!   pipeline parallelizes the per-row group-by bodies on top of the
//!   hash join.
//! * **Q8-snap (impure)** — the `snap insert` variant: the gate must
//!   refuse it (`par_regions == 0` even at 8 threads, and EXPLAIN shows
//!   no `par` marker). Asserted, not just measured.
//! * **E3 logging workload** — per-item `snap insert` loop, the other
//!   impure shape: timed at 1 and 4 threads to show the thread knob is
//!   inert on impure code.
//!
//! Custom harness (no Criterion): medians over fixed repetitions, a
//! human-readable table on stdout, and machine-readable
//! `BENCH_parallel.json` for EXPERIMENTS.md.

use std::time::Instant;
use xmarkgen::Scale;
use xqbench::{xmark_fixture, Q8_PURE_VARIANT, Q8_SNAP_VARIANT};
use xqcore::Engine;

const REPS: usize = 5;
const THREADS: &[usize] = &[1, 2, 4, 8];

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Engine with the XMark fixture bound to `$auction`/`$purchasers`.
fn q8_engine(scale: &Scale, compile: bool, threads: usize) -> Engine {
    let mut e = Engine::new().with_seed(11);
    e.set_compile(compile);
    e.set_threads(threads);
    let (store, bindings) = xmark_fixture(8, scale);
    e.store = store;
    for (name, seq) in bindings {
        e.bind(&name, seq);
    }
    e
}

/// Median seconds for `query` on a fresh engine per repetition.
fn time_q8(scale: &Scale, compile: bool, threads: usize, query: &str) -> (f64, String, u64) {
    let mut times = Vec::with_capacity(REPS);
    let mut result = String::new();
    let mut par_regions = 0;
    for _ in 0..REPS {
        let mut e = q8_engine(scale, compile, threads);
        let t0 = Instant::now();
        let v = e.run(query).expect("q8 run");
        times.push(t0.elapsed().as_secs_f64());
        result = e.serialize(&v).expect("serialize");
        par_regions = e.last_stats().unwrap().par_regions;
    }
    (median(times), result, par_regions)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    xqalg::install();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let scale = Scale::join_sides(150, 75);
    let mut json = String::from("{\n  \"experiment\": \"e11_parallel\",\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str("  \"scale\": {\"persons\": 150, \"closed_auctions\": 75},\n");

    // The pure variant must carry the par marker on the compiled plan…
    let probe = q8_engine(&scale, true, 8);
    let plan = probe.explain(Q8_PURE_VARIANT)?;
    assert!(
        plan.contains(",par"),
        "pure Q8 variant must carry a par marker:\n{plan}"
    );

    // --- Q8-pure × threads, both pipelines -----------------------------
    println!("E11: XMark Q8 pure variant, median of {REPS} runs ({cores} core(s) available)");
    println!(
        "{:<14} {:>8} {:>12} {:>9} {:>12}",
        "pipeline", "threads", "median", "speedup", "par_regions"
    );
    let mut baseline_value = None;
    let mut interpreted_speedup_4 = 1.0;
    for &compile in &[false, true] {
        let name = if compile { "compiled" } else { "interpreted" };
        let mut base = 0.0;
        json.push_str(&format!("  \"q8_pure_{name}\": {{"));
        for (i, &threads) in THREADS.iter().enumerate() {
            let (t, value, par_regions) = time_q8(&scale, compile, threads, Q8_PURE_VARIANT);
            if threads == 1 {
                base = t;
                assert_eq!(par_regions, 0, "{name}: sequential run must not fan out");
            } else {
                assert!(
                    par_regions > 0,
                    "{name}: pure Q8 did not fan out at {threads} threads"
                );
            }
            // Bit-for-bit identical values across every configuration.
            match &baseline_value {
                None => baseline_value = Some(value),
                Some(b) => assert_eq!(b, &value, "{name}×{threads} changed the result"),
            }
            let speedup = base / t;
            if !compile && threads == 4 {
                interpreted_speedup_4 = speedup;
            }
            println!(
                "{name:<14} {threads:>8} {:>9.2} ms {speedup:>8.2}x {par_regions:>12}",
                t * 1e3
            );
            if i > 0 {
                json.push_str(", ");
            }
            json.push_str(&format!("\"{threads}\": {:.6}", t));
        }
        json.push_str("},\n");
    }
    json.push_str(&format!(
        "  \"interpreted_speedup_at_4_threads\": {interpreted_speedup_4:.3},\n"
    ));
    // The speedup claim is a statement about parallel hardware; on a
    // single-core host the same run instead demonstrates that the
    // machinery adds no observable overhead (and no observable anything
    // else — values asserted identical above).
    if cores >= 4 {
        assert!(
            interpreted_speedup_4 >= 1.5,
            "expected ≥1.5× at 4 threads on {cores} cores, got {interpreted_speedup_4:.2}×"
        );
    } else {
        println!("(speedup assertion skipped: {cores} core(s) < 4 — nothing to parallelize onto)");
    }

    // --- Q8-snap: the impure variant provably stays sequential ---------
    let probe = q8_engine(&scale, true, 8);
    let plan = probe.explain(Q8_SNAP_VARIANT)?;
    assert!(
        !plan.contains(",par"),
        "impure Q8 snap variant must carry no par marker:\n{plan}"
    );
    let (t_snap, _, par_regions) = time_q8(&scale, true, 8, Q8_SNAP_VARIANT);
    assert_eq!(
        par_regions, 0,
        "snap-inside-loop variant fanned out — gate broken"
    );
    println!(
        "\nQ8 snap variant @8 threads: {:.2} ms, par_regions = 0, no `par` in EXPLAIN",
        t_snap * 1e3
    );
    json.push_str(&format!(
        "  \"q8_snap_8threads\": {{\"seconds\": {t_snap:.6}, \"par_regions\": 0, \"explain_has_par\": false}},\n"
    ));

    // --- E3 logging workload: thread knob inert on impure code ---------
    let n = 2_000usize;
    let log_query = format!(
        "for $i in 1 to {n} return snap insert {{ <entry n=\"{{$i}}\"/> }} into {{ $logdoc/log }}"
    );
    json.push_str("  \"e3_logging\": {");
    println!("\nE3 logging workload ({n} per-item snaps):");
    for (i, &threads) in [1usize, 4].iter().enumerate() {
        let mut times = Vec::with_capacity(REPS);
        let mut entries = 0;
        for _ in 0..REPS {
            let mut e = Engine::new().with_seed(11);
            e.set_threads(threads);
            e.load_document("logdoc", "<log/>").unwrap();
            let t0 = Instant::now();
            e.run(&log_query).expect("logging run");
            times.push(t0.elapsed().as_secs_f64());
            assert_eq!(e.last_stats().unwrap().par_regions, 0);
            let c = e.run("count($logdoc/log/entry)").unwrap();
            entries = e.serialize(&c).unwrap().parse::<usize>().unwrap();
        }
        assert_eq!(entries, n);
        let t = median(times);
        println!(
            "  threads={threads}: {:.2} ms (sequential by the gate)",
            t * 1e3
        );
        if i > 0 {
            json.push_str(", ");
        }
        json.push_str(&format!("\"{threads}\": {t:.6}"));
    }
    json.push_str(", \"par_regions\": 0}\n}\n");

    std::fs::write("BENCH_parallel.json", &json)?;
    println!("\nwrote BENCH_parallel.json");
    Ok(())
}
