//! Shared fixtures for the XQuery! benchmark harness.
//!
//! One Criterion bench per experiment in DESIGN.md §6 lives under
//! `benches/`; this library holds the workload builders they share, so a
//! bench file reads like the experiment protocol it implements.

use xmarkgen::{Scale, XmarkGen};
use xqcore::update::{Delta, UpdateRequest};
use xqdm::item::{Item, Sequence};
use xqdm::store::InsertAnchor;
use xqdm::{NodeId, QName, Store, XdmResult};

/// The §4.3 XMark Q8 variant, verbatim from the paper (modulo `$purchasers`
/// pointing at an element we create).
pub const Q8_VARIANT: &str = r#"
for $p in $auction//person
let $a :=
  for $t in $auction//closed_auction
  where $t/buyer/@person = $p/@id
  return (insert { <buyer person="{$t/buyer/@person}"
                     itemid="{$t/itemref/@item}" /> }
          into { $purchasers }, $t)
return <item person="{ $p/name }">{ count($a) }</item>"#;

/// The Q8 variant stripped of its updates: the same join/group shape,
/// but the per-person work is pure (no constructors, no pending
/// updates), so the parallel gate (DESIGN.md §9) admits the loop body.
/// `$a` is used twice so the simplifier cannot inline the `let` away —
/// the outer-join/group-by shape survives to plan recognition.
/// Workload for experiment E11.
pub const Q8_PURE_VARIANT: &str = r#"
for $p in $auction//person
let $a :=
  for $t in $auction//closed_auction
  where $t/buyer/@person = $p/@id
  return $t
return concat(string($p/name), ":", string(count($a)), ":",
              string(count($a/itemref)))"#;

/// The same query with `snap insert` in the inner branch — the §4.3
/// variation that must suppress the join rewrite (experiment E8).
pub const Q8_SNAP_VARIANT: &str = r#"
for $p in $auction//person
let $a :=
  for $t in $auction//closed_auction
  where $t/buyer/@person = $p/@id
  return (snap insert { <buyer person="{$t/buyer/@person}"
                          itemid="{$t/itemref/@item}" /> }
          into { $purchasers }, $t)
return <item person="{ $p/name }">{ count($a) }</item>"#;

/// Build an XMark store plus a fresh `purchasers` element; returns
/// `(store, bindings)` ready for `xqalg::run_naive`/`run_optimized`.
pub fn xmark_fixture(seed: u64, scale: &Scale) -> (Store, Vec<(String, Sequence)>) {
    let mut store = Store::new();
    let auction = XmarkGen::new(seed)
        .generate(&mut store, scale)
        .expect("generate xmark");
    let purchasers = store.new_element(QName::local("purchasers"));
    (
        store,
        vec![
            ("auction".to_string(), xqdm::seq![Item::Node(auction)]),
            ("purchasers".to_string(), xqdm::seq![Item::Node(purchasers)]),
        ],
    )
}

/// A conflict-free Δ of `k` rename requests over `k` fresh nodes.
/// (Renames commute when targets are distinct, so every snap mode accepts
/// this list — it isolates pure application/verification cost.)
pub fn renames_delta(store: &mut Store, k: usize) -> Delta {
    (0..k)
        .map(|i| {
            let n = store.new_element(QName::local(format!("n{i}")));
            UpdateRequest::Rename {
                node: n,
                name: QName::local(format!("r{i}")),
            }
        })
        .collect()
}

/// A conflict-free Δ of `k` chained inserts under one parent (each insert
/// anchors after the previous node, so slots are all distinct).
pub fn chained_inserts_delta(store: &mut Store, k: usize) -> (NodeId, Delta) {
    let parent = store.new_element(QName::local("p"));
    let first = store.new_element(QName::local("c"));
    store.append_child(parent, first).expect("seed child");
    let mut delta = Delta::new();
    let mut anchor = first;
    for _ in 0..k {
        let c = store.new_element(QName::local("c"));
        delta.push(UpdateRequest::Insert {
            nodes: vec![c],
            parent,
            anchor: InsertAnchor::After(anchor),
        });
        anchor = c;
    }
    (parent, delta)
}

/// A Δ with exactly one conflict buried at the end (worst case for the
/// verifier: it must scan everything).
pub fn conflicting_delta(store: &mut Store, k: usize) -> Delta {
    let mut delta = renames_delta(store, k);
    let victim = store.new_element(QName::local("victim"));
    delta.push(UpdateRequest::Rename {
        node: victim,
        name: QName::local("a"),
    });
    delta.push(UpdateRequest::Rename {
        node: victim,
        name: QName::local("b"),
    });
    delta
}

/// Build a balanced element tree with `n` element nodes total (fanout 8),
/// returning its root. Used by the deep-copy experiment.
pub fn element_tree(store: &mut Store, n: usize) -> XdmResult<NodeId> {
    let root = store.new_element(QName::local("root"));
    let mut frontier = vec![root];
    let mut made = 1usize;
    'outer: loop {
        let mut next = Vec::new();
        for &parent in &frontier {
            for _ in 0..8 {
                if made >= n {
                    break 'outer;
                }
                let c = store.new_element(QName::local("node"));
                let t = store.new_text("x");
                store.append_child(c, t)?;
                store.append_child(parent, c)?;
                next.push(c);
                made += 1;
            }
        }
        frontier = next;
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqcore::verify_conflict_free;

    #[test]
    fn fixtures_are_well_formed() {
        let (store, bindings) = xmark_fixture(1, &Scale::tiny());
        assert_eq!(bindings.len(), 2);
        assert!(store.len() > 50);
    }

    #[test]
    fn renames_delta_is_conflict_free() {
        let mut store = Store::new();
        let d = renames_delta(&mut store, 100);
        assert_eq!(d.len(), 100);
        assert!(verify_conflict_free(&d).is_ok());
    }

    #[test]
    fn chained_inserts_are_conflict_free_and_apply() {
        let mut store = Store::new();
        let (parent, d) = chained_inserts_delta(&mut store, 50);
        assert!(verify_conflict_free(&d).is_ok());
        xqcore::apply_delta(&mut store, d, xqcore::SnapMode::Ordered, 0).unwrap();
        assert_eq!(store.children(parent).unwrap().len(), 51);
    }

    #[test]
    fn conflicting_delta_is_detected() {
        let mut store = Store::new();
        let d = conflicting_delta(&mut store, 100);
        assert!(verify_conflict_free(&d).is_err());
    }

    #[test]
    fn element_tree_has_requested_size() {
        let mut store = Store::new();
        let root = element_tree(&mut store, 100).unwrap();
        let elems = store
            .descendants(root)
            .unwrap()
            .into_iter()
            .filter(|&n| store.name(n).unwrap().is_some())
            .count();
        assert_eq!(elems + 1, 100); // +1 for the root itself
    }
}
