//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crate registry, so this workspace vendors
//! the API subset its property tests use:
//!
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`] macros;
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive`, `boxed`;
//! * integer-range strategies, tuple strategies, [`arbitrary::any`],
//!   [`collection::vec`], [`option::of`], and
//!   [`string::string_regex`] for the `[class]{m,n}` patterns the tests
//!   rely on (plain `&str` literals are also usable as strategies);
//! * [`test_runner::ProptestConfig`] / [`test_runner::TestCaseError`].
//!
//! Differences from upstream: generation is deterministic per test name and
//! case index (reruns are exactly reproducible) and there is **no
//! shrinking** — a failing case reports its full inputs instead.

pub mod test_runner {
    /// Per-`proptest!` configuration. Only `cases` is consulted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }

        /// Upstream distinguishes rejection from failure; the shim treats
        /// both as failures (no strategy here generates rejections).
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic per-case random source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator keyed on the test path and case index, so every run
        /// of a test replays the same case sequence.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            TestRng {
                state: h ^ ((case as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15)),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `0..bound` (`bound` ≥ 1).
        pub fn below(&mut self, bound: usize) -> usize {
            debug_assert!(bound >= 1);
            (self.next_u64() % bound as u64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::Range;
    use std::rc::Rc;

    /// A generator of test values.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Build a recursive strategy: `self` generates leaves, and
        /// `recurse` wraps an inner strategy into a branch strategy. The
        /// shim ignores the size hints and bounds recursion by `depth`.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                strat = Union::new(vec![leaf.clone(), recurse(strat).boxed()]).boxed();
            }
            strat
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen: Rc::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V> {
        gen: Rc<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.gen)(rng)
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union of the given arms (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    /// A strategy generating exactly one value.
    #[derive(Debug, Clone)]
    pub struct Just<V>(pub V);

    impl<V: Debug + Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident . $i:tt),+ ))+) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// String literals act as regex strategies (subset; see
    /// [`crate::string::string_regex`]).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::string_regex(self)
                .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
                .generate(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// Its canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-domain strategy for a primitive.
    pub struct Any<T>(PhantomData<T>);

    macro_rules! impl_any {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = Any<$t>;
                fn arbitrary() -> Any<$t> {
                    Any(PhantomData)
                }
            }
        )*};
    }
    impl_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = Any<bool>;
        fn arbitrary() -> Any<bool> {
            Any(PhantomData)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed length or a half-open
    /// range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    /// Generates `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `Option`s of values from `inner` (`None` 1 time in 4).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// A strategy producing `None` or a value from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A compiled `[class]{m,n}`-style pattern (sequence of classes, each
    /// with a repetition count). This covers every pattern used by the
    /// workspace's tests; richer regexes are rejected with an error.
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        parts: Vec<Part>,
    }

    #[derive(Debug, Clone)]
    enum Part {
        Literal(char),
        Class {
            chars: Vec<char>,
            min: usize,
            max: usize,
        },
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for part in &self.parts {
                match part {
                    Part::Literal(c) => out.push(*c),
                    Part::Class { chars, min, max } => {
                        let len = min + rng.below(max - min + 1);
                        for _ in 0..len {
                            out.push(chars[rng.below(chars.len())]);
                        }
                    }
                }
            }
            out
        }
    }

    /// Compile a regex subset into a generator: literal characters and
    /// `[class]` char-classes (with `a-z` ranges) optionally followed by
    /// `{m}`, `{m,n}`, `*`, `+`, or `?`.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, String> {
        let mut parts = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                '[' => {
                    let mut class = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let c = chars
                            .next()
                            .ok_or_else(|| format!("unterminated class in {pattern:?}"))?;
                        match c {
                            ']' => break,
                            '\\' => {
                                let esc = chars
                                    .next()
                                    .ok_or_else(|| format!("dangling escape in {pattern:?}"))?;
                                class.push(esc);
                                prev = Some(esc);
                            }
                            '-' if prev.is_some() && chars.peek() != Some(&']') => {
                                let hi = chars.next().unwrap();
                                let lo = prev.take().unwrap();
                                if lo as u32 > hi as u32 {
                                    return Err(format!("bad range {lo}-{hi} in {pattern:?}"));
                                }
                                // `lo` is already in the class; add the rest.
                                for u in (lo as u32 + 1)..=(hi as u32) {
                                    class.push(char::from_u32(u).unwrap());
                                }
                            }
                            other => {
                                class.push(other);
                                prev = Some(other);
                            }
                        }
                    }
                    if class.is_empty() {
                        return Err(format!("empty class in {pattern:?}"));
                    }
                    let (min, max) = parse_repeat(&mut chars, pattern)?;
                    parts.push(Part::Class {
                        chars: class,
                        min,
                        max,
                    });
                }
                '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '.' => {
                    return Err(format!("unsupported regex syntax {c:?} in {pattern:?}"));
                }
                '\\' => {
                    let esc = chars
                        .next()
                        .ok_or_else(|| format!("dangling escape in {pattern:?}"))?;
                    parts.push(Part::Literal(esc));
                }
                other => parts.push(Part::Literal(other)),
            }
        }
        Ok(RegexGeneratorStrategy { parts })
    }

    fn parse_repeat(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> Result<(usize, usize), String> {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                let (lo, hi) = match spec.split_once(',') {
                    Some((lo, hi)) => (lo.trim(), hi.trim()),
                    None => (spec.trim(), spec.trim()),
                };
                let lo: usize = lo
                    .parse()
                    .map_err(|_| format!("bad repeat {spec:?} in {pattern:?}"))?;
                let hi: usize = hi
                    .parse()
                    .map_err(|_| format!("bad repeat {spec:?} in {pattern:?}"))?;
                if hi < lo {
                    return Err(format!("bad repeat {spec:?} in {pattern:?}"));
                }
                Ok((lo, hi))
            }
            Some('*') => {
                chars.next();
                Ok((0, 8))
            }
            Some('+') => {
                chars.next();
                Ok((1, 8))
            }
            Some('?') => {
                chars.next();
                Ok((0, 1))
            }
            _ => Ok((1, 1)),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fallible assertion: returns a [`test_runner::TestCaseError`] instead of
/// panicking, so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fallible equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+),
                    l,
                    r
                ),
            ));
        }
    }};
}

/// Fallible inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    ::std::stringify!($left),
                    ::std::stringify!($right),
                    l
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("{}\n  both: {:?}", ::std::format!($($fmt)+), l),
            ));
        }
    }};
}

/// The property-test harness macro. Each `#[test] fn name(arg in strategy,
/// ...) { body }` expands to a standard `#[test]` running `cases`
/// deterministic cases; `prop_assert*` failures report the generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!([$cfg] $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!([$crate::test_runner::ProptestConfig::default()] $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     #[test]
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = ::std::format!(
                    ::std::concat!($("\n    ", ::std::stringify!($arg), " = {:?}",)+),
                    $(&$arg),+
                );
                #[allow(unreachable_code)]
                let __result = (move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __result {
                    ::std::panic!(
                        "proptest case {}/{} failed: {}\n  inputs:{}",
                        __case + 1,
                        __config.cases,
                        e,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_items!([$cfg] $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_within_class() {
        let strat = crate::string::string_regex("[a-c]{2,4}").unwrap();
        let mut rng = TestRng::for_case("regex", 0);
        for _ in 0..100 {
            let s = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!((2..=4).contains(&s.chars().count()), "bad len: {s:?}");
            assert!(
                s.chars().all(|c| ('a'..='c').contains(&c)),
                "bad char: {s:?}"
            );
        }
    }

    #[test]
    fn regex_space_to_tilde_covers_printable_ascii() {
        let strat = crate::string::string_regex("[ -~]{0,40}").unwrap();
        let mut rng = TestRng::for_case("printable", 3);
        for _ in 0..50 {
            let s = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("x", 5);
        let mut b = TestRng::for_case("x", 5);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 6);
        assert_ne!(TestRng::for_case("x", 5).next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn harness_runs_generated_cases(
            xs in crate::collection::vec(0i64..100, 0..10),
            flag in any::<bool>(),
            word in "[a-z]{1,5}",
        ) {
            prop_assert!(xs.len() < 10);
            prop_assert!(xs.iter().all(|&x| (0..100).contains(&x)));
            prop_assert!(!word.is_empty() && word.len() <= 5);
            if flag {
                // Early return must be accepted by the harness closure.
                return Ok(());
            }
            prop_assert_eq!(xs.len(), xs.len());
            prop_assert_ne!(word.clone() + "x", word);
        }

        #[test]
        fn oneof_and_recursive_strategies_work(
            v in prop_oneof![(0u8..4).prop_map(|x| x as u32), (10u8..14).prop_map(|x| x as u32)]
        ) {
            prop_assert!((0..4).contains(&v) || (10..14).contains(&v));
        }
    }
}
