//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crate registry, so this workspace vendors
//! the API subset its benches use: `Criterion::benchmark_group`, group
//! configuration (`sample_size` / `measurement_time` / `warm_up_time` /
//! `throughput`), `bench_with_input` / `bench_function`, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: warm up for the configured time,
//! then time batches of iterations for the configured measurement window
//! and report the median per-iteration time. That is enough to compare
//! alternatives within one run (every table in EXPERIMENTS.md is a ratio),
//! though it lacks criterion's outlier analysis and HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (reported alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("ordered", 1000)` renders as `ordered/1000`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// How batched inputs are grouped; the shim times each routine call
/// individually, so the hint only bounds batch sizes.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            throughput: None,
        }
    }

    /// A standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(20, Duration::from_secs(2), Duration::from_millis(300));
        f(&mut b);
        b.report(name, None);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for measurement.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size, self.measurement_time, self.warm_up_time);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.name), self.throughput);
        self
    }

    /// Run one benchmark without an input parameter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size, self.measurement_time, self.warm_up_time);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.name), self.throughput);
        self
    }

    /// End the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration, warm_up_time: Duration) -> Self {
        Bencher {
            sample_size,
            measurement_time,
            warm_up_time,
            samples: Vec::new(),
        }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + cost estimate.
        let mut iters_done: u64 = 0;
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time || iters_done == 0 {
            black_box(routine());
            iters_done += 1;
            if iters_done >= 1_000_000 {
                break;
            }
        }
        let est = warm_start.elapsed().as_nanos() as f64 / iters_done as f64;
        // Choose a per-sample batch so all samples fit the measurement time.
        let budget = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((budget / est.max(1.0)) as u64).clamp(1, 10_000_000);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Time `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up + estimate (one setup+routine pair per pass).
        let mut est = f64::MAX;
        let warm_start = Instant::now();
        loop {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            est = est.min(t.elapsed().as_nanos() as f64);
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Per-sample batches sized so measurement fits the time budget.
        // Setup runs interleaved with the timed calls (only the routine is
        // on the clock): pre-building a whole batch of inputs would hold
        // `batch` large fixtures alive at once and skew the measurement
        // with allocator and cache pressure the routine never sees in
        // real use.
        let budget = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((budget / est.max(1.0)) as usize).clamp(1, 100_000);
        for _ in 0..self.sample_size {
            let mut acc = Duration::ZERO;
            for _ in 0..batch {
                let input = setup();
                let t = Instant::now();
                let out = routine(input);
                acc += t.elapsed();
                drop(black_box(out));
            }
            self.samples.push(acc.as_nanos() as f64 / batch as f64);
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{label:<60} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let lo = sorted[0];
        let hi = sorted[sorted.len() - 1];
        let tp = match throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  {:>12.0} elem/s", n as f64 / (median / 1e9))
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!("  {:>12.0} B/s", n as f64 / (median / 1e9))
            }
            _ => String::new(),
        };
        println!(
            "{label:<60} time: [{} {} {}]{tp}",
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("batched", 10), &10u64, |b, &n| {
            b.iter_batched(
                || vec![1u64; n as usize],
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        group.finish();
    }
}
