//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crate registry, so this workspace vendors
//! the *exact* `rand` 0.8 API subset it uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] / [`Rng::gen_bool`],
//! and [`seq::SliceRandom::shuffle`]. The generator is SplitMix64 — not the
//! upstream ChaCha stream, but every consumer in this workspace only relies
//! on *seeded determinism* (same seed ⇒ same sequence) and reasonable
//! statistical spread, both of which SplitMix64 provides.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds (API-compatible subset).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a range. A single blanket
/// [`SampleRange`] impl per range shape keeps type inference identical to
/// upstream `rand` (integer literals fall back to `i32`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `lo..hi`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `lo..=hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + (hi - lo) * unit
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                // Indistinguishable from the half-open draw at f64 granularity.
                Self::sample_half_open(lo, hi, rng)
            }
        }
    )*};
}
impl_float_uniform!(f32, f64);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics when the range is empty,
    /// matching `rand`'s behaviour.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// The user-facing sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates), the only `seq` API this workspace
    /// uses.
    pub trait SliceRandom {
        /// Uniformly permute the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0..1_000_000usize),
                b.gen_range(0..1_000_000usize)
            );
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100)
            .all(|_| StdRng::seed_from_u64(42).gen_range(0..u64::MAX) == c.gen_range(0..u64::MAX));
        assert!(!same);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(1.0..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should not be identity");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
