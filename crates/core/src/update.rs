//! Update requests and pending-update lists (paper §3.2).
//!
//! An *update request* is "a tuple that contains the operation name and its
//! parameters"; its application is a partial function from stores to stores
//! (the precondition checks live in `xqdm::Store`). An *update list* Δ is an
//! ordered list of requests, collected during evaluation inside a `snap`
//! scope and applied when the scope closes.

use xqdm::store::InsertAnchor;
use xqdm::{NodeId, QName, Store, XdmResult};

/// One update request (the paper's `opname(par1, ..., parn)` tuples).
///
/// `replace` does not appear: the paper's rule decomposes it into an
/// `insert` followed by a `delete`.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateRequest {
    /// `insert(nodeseq, nodepar, nodepos)` — splice `nodes` into `parent`
    /// at `anchor`.
    Insert {
        /// The (already copied, parentless) nodes to insert.
        nodes: Vec<NodeId>,
        /// The insertion parent.
        parent: NodeId,
        /// Position among the parent's children.
        anchor: InsertAnchor,
    },
    /// `insertAttributes(nodeseq, element)` — attach attribute nodes to an
    /// element. Not in the paper's tuple list (its examples only splice
    /// child content), but required for `replace` on attribute targets;
    /// attribute order is insignificant in the XDM, so this request
    /// commutes with other attribute insertions on the same element.
    InsertAttributes {
        /// Parentless attribute nodes to attach.
        nodes: Vec<NodeId>,
        /// The owner element.
        element: NodeId,
    },
    /// `delete(node)` — detach `node` from its parent (paper §3.1: delete
    /// does not erase).
    Delete {
        /// The node to detach.
        node: NodeId,
    },
    /// `rename(node, name)`.
    Rename {
        /// The element or attribute to rename.
        node: NodeId,
        /// The new name.
        name: QName,
    },
    /// `setValue(node, string)` — `replace value of`: overwrite the
    /// string value of a text or attribute node in place. The only
    /// request whose store write is pure value-aspect (no tree-shape
    /// change), which is what lets the server's last-writer-wins
    /// conflict policy waive it.
    SetValue {
        /// The text or attribute node to overwrite.
        node: NodeId,
        /// The new string value.
        value: String,
    },
}

impl UpdateRequest {
    /// Apply this request to the store (a partial function: precondition
    /// failures surface as errors).
    pub fn apply(&self, store: &mut Store) -> XdmResult<()> {
        match self {
            UpdateRequest::Insert {
                nodes,
                parent,
                anchor,
            } => store.apply_insert(nodes, *parent, *anchor),
            UpdateRequest::InsertAttributes { nodes, element } => {
                for &a in nodes {
                    store.attach_attribute(*element, a)?;
                }
                Ok(())
            }
            UpdateRequest::Delete { node } => store.detach(*node),
            UpdateRequest::Rename { node, name } => store.apply_rename(*node, name.clone()),
            UpdateRequest::SetValue { node, value } => {
                // The store setters precondition-check the node kind
                // (text vs attribute) themselves.
                match store.kind(*node)? {
                    xqdm::NodeKind::Attribute { .. } => {
                        store.set_attribute_value(*node, value.clone())
                    }
                    _ => store.set_text(*node, value.clone()),
                }
            }
        }
    }

    /// The operation name, for diagnostics.
    pub fn opname(&self) -> &'static str {
        match self {
            UpdateRequest::Insert { .. } => "insert",
            UpdateRequest::InsertAttributes { .. } => "insert-attributes",
            UpdateRequest::Delete { .. } => "delete",
            UpdateRequest::Rename { .. } => "rename",
            UpdateRequest::SetValue { .. } => "set-value",
        }
    }
}

/// A pending update list Δ: an ordered list of update requests. The order
/// is fully specified by the language semantics (left-to-right evaluation);
/// whether application *honours* that order depends on the snap mode.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Delta {
    requests: Vec<UpdateRequest>,
}

impl Delta {
    /// An empty Δ.
    pub fn new() -> Self {
        Delta::default()
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Append one request (the paper's `(Δ1, op(...))`).
    pub fn push(&mut self, req: UpdateRequest) {
        self.requests.push(req);
    }

    /// Concatenate another Δ onto this one (the paper's `(Δ1, Δ2)`).
    pub fn extend(&mut self, other: Delta) {
        self.requests.extend(other.requests);
    }

    /// The requests, in Δ order.
    pub fn requests(&self) -> &[UpdateRequest] {
        &self.requests
    }

    /// Consume into the request list.
    pub fn into_requests(self) -> Vec<UpdateRequest> {
        self.requests
    }
}

impl FromIterator<UpdateRequest> for Delta {
    fn from_iter<T: IntoIterator<Item = UpdateRequest>>(iter: T) -> Self {
        Delta {
            requests: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqdm::QName;

    #[test]
    fn delta_preserves_order() {
        let mut s = Store::new();
        let a = s.new_element(QName::local("a"));
        let b = s.new_element(QName::local("b"));
        let mut d = Delta::new();
        d.push(UpdateRequest::Rename {
            node: a,
            name: QName::local("x"),
        });
        d.push(UpdateRequest::Rename {
            node: b,
            name: QName::local("y"),
        });
        assert_eq!(d.len(), 2);
        assert_eq!(d.requests()[0].opname(), "rename");
    }

    #[test]
    fn extend_concatenates() {
        let mut s = Store::new();
        let a = s.new_element(QName::local("a"));
        let mut d1 = Delta::new();
        d1.push(UpdateRequest::Delete { node: a });
        let mut d2 = Delta::new();
        d2.push(UpdateRequest::Rename {
            node: a,
            name: QName::local("x"),
        });
        d1.extend(d2);
        assert_eq!(d1.len(), 2);
        assert_eq!(d1.requests()[1].opname(), "rename");
    }

    #[test]
    fn apply_insert_request() {
        let mut s = Store::new();
        let p = s.new_element(QName::local("p"));
        let c = s.new_element(QName::local("c"));
        let req = UpdateRequest::Insert {
            nodes: vec![c],
            parent: p,
            anchor: InsertAnchor::Last,
        };
        req.apply(&mut s).unwrap();
        assert_eq!(s.children(p).unwrap(), &[c]);
    }
}
