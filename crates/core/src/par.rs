//! Parallel evaluation of effect-free regions (DESIGN.md §9).
//!
//! The paper's §4.2 observation — evaluation inside an innermost `snap` is
//! effect-free, so "both the pure subexpressions and the update operations
//! can be evaluated in any order" — is exactly the precondition for data
//! parallelism. This module supplies the three pieces the evaluator and
//! the plan executor share:
//!
//! * the **gate** ([`par_safe`]): a loop body may fan out only when the
//!   effect lattice rates it `Pure` *and* a structural walk (transitive
//!   through called functions) finds no construct the rating hides —
//!   `fn:parse-xml` allocates store nodes behind its read-only rating,
//!   `fn:trace` has observable output order, and a `snap` over pure code
//!   draws seeds and bumps snap statistics;
//! * the **pure evaluator** ([`eval_pure`]): the `Pure` subset of the
//!   dynamic semantics over a *shared* `&Store`, so workers need no store
//!   locking at all (the store has no interior mutability; see the
//!   `Send + Sync` assertions in `xqdm`);
//! * the **fan-out driver** ([`par_map`]): contiguous chunks over a scoped
//!   worker pool (`std::thread::scope`, no dependencies), per-item results
//!   collected in input order.
//!
//! Sequential semantics are preserved bit-for-bit: values and their order
//! (chunks are contiguous and reassembled in input order), Δ statistics
//! (a `Pure` body touches neither the Δ stack nor the snap counters), and
//! error codes ([`merge_in_order`] surfaces the error of the *first*
//! failing iteration, which is the one the sequential loop would have
//! raised; later iterations may run wastefully but — being pure — leave no
//! trace).

use crate::effects::{Effect, EffectAnalysis};
use crate::env::{DynEnv, Focus};
use crate::eval::{cmp_keys, gather_axis, require_node};
use crate::functions;
use crate::limits::{self, LimitGuard, TripKind};
use std::collections::{HashMap, HashSet};
use xqdm::atomic::{arithmetic, negate, value_compare, Atomic};
use xqdm::item::{self, Item, Sequence};
use xqdm::seq;
use xqdm::{Store, XdmError, XdmResult};
use xqsyn::ast::{NodeCompOp, Quantifier};
use xqsyn::core::{Core, CoreFunction};

/// Fewest source items worth fanning out — below this, spawn cost
/// dominates any conceivable body.
pub const PAR_MIN_ITEMS: usize = 4;

/// Stack size for parallel workers: pure evaluation recurses like the main
/// evaluation thread (same depth limit, [`crate::limits::Limits::max_depth`]),
/// so workers get the same headroom. The reservation is virtual; pages
/// commit lazily.
const PAR_STACK_BYTES: usize = 64 << 20;

/// Upper bound on configured worker counts (a typo like `XQB_THREADS=800`
/// should not try to spawn 800 threads per loop).
pub const MAX_THREADS: usize = 64;

/// The thread count the `XQB_THREADS` environment variable requests, or 1
/// (sequential) when unset or unparsable. Read at engine/evaluator
/// construction; override per engine with `Engine::set_threads`.
pub fn threads_from_env() -> usize {
    std::env::var("XQB_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .map(|n| n.clamp(1, MAX_THREADS))
        .unwrap_or(1)
}

/// May `body` be evaluated by parallel workers sharing `&Store`? Requires
/// the effect rating `Pure` (so the body neither allocates, nor appends
/// update requests, nor applies them) **and** structural transparency
/// ([`par_transparent`]) transitively through every user function the body
/// can call. This is the single safety judgment every layer (interpreter
/// loop, plan executor, join sides) consults — the E8 purity guard,
/// reused and sharpened.
pub fn par_safe(
    body: &Core,
    analysis: &EffectAnalysis,
    funcs: &HashMap<(String, usize), CoreFunction>,
) -> bool {
    if analysis.effect(body) != Effect::Pure {
        return false;
    }
    let mut visited: HashSet<(String, usize)> = HashSet::new();
    transparent_rec(body, funcs, &mut visited)
}

fn transparent_rec(
    expr: &Core,
    funcs: &HashMap<(String, usize), CoreFunction>,
    visited: &mut HashSet<(String, usize)>,
) -> bool {
    if !par_transparent(expr) {
        return false;
    }
    let mut callees: Vec<(String, usize)> = Vec::new();
    expr.walk(&mut |e| {
        if let Core::Call(name, args) = e {
            callees.push((name.clone(), args.len()));
        }
    });
    for key in callees {
        if let Some(f) = funcs.get(&key) {
            if visited.insert(key) && !transparent_rec(&f.body, funcs, visited) {
                return false;
            }
        }
        // Unknown non-builtins were already rated Effectful by the
        // analysis, so par_safe rejected them before reaching here.
    }
    true
}

/// Expression-level transparency: no call to a par-opaque built-in
/// ([`functions::is_par_opaque`]) and no `snap` (even over pure code a
/// snap draws an application seed and counts toward the snap statistics,
/// which must match the sequential run exactly). Does **not** chase user
/// function calls — [`par_safe`] does.
pub fn par_transparent(expr: &Core) -> bool {
    let mut ok = true;
    expr.walk(&mut |e| match e {
        Core::Call(name, _) if functions::is_par_opaque(name) => ok = false,
        Core::Snap(..) => ok = false,
        _ => {}
    });
    ok
}

/// Would `body` be admitted by the parallel gate, judged from the effect
/// analysis alone? Used by EXPLAIN to annotate join bodies; advisory in
/// the rare case where a called pure function hides a par-opaque built-in
/// (the runtime gate still rejects it).
pub fn body_par(body: &Core, analysis: &EffectAnalysis) -> bool {
    analysis.effect(body) == Effect::Pure && par_transparent(body)
}

/// Does `core` contain a `for` loop whose body the parallel gate would
/// admit (see [`body_par`] for the advisory caveat)? Used by EXPLAIN to
/// put the `par` marker on `Iterate` leaves.
pub fn marks_par_loop(core: &Core, analysis: &EffectAnalysis) -> bool {
    let mut found = false;
    core.walk(&mut |e| {
        if let Core::For { body, .. } = e {
            if body_par(body, analysis) {
                found = true;
            }
        }
    });
    found
}

/// The read-only slice of an `Evaluator` that pure workers need: the
/// function table and the globals. Obtain one from
/// `Evaluator::pure_ctx()`.
#[derive(Clone, Copy)]
pub struct PureCtx<'a> {
    /// Registered user functions (program + modules).
    pub functions: &'a HashMap<(String, usize), CoreFunction>,
    /// Global variable bindings.
    pub globals: &'a HashMap<String, Sequence>,
    /// The evaluator's armed limit guard, shared by every worker: the
    /// first worker to exceed a limit trips it and every sibling's next
    /// tick unwinds with the same error class (DESIGN.md §12).
    pub guard: &'a LimitGuard,
    /// The evaluator's recursion-depth limit (`XQB0040`).
    pub max_depth: usize,
}

/// Fan `items` out over at most `threads` scoped workers and collect the
/// per-item results **in input order**. Each worker receives a clone of
/// `env` (workers never see each other's bindings) and processes one
/// contiguous chunk, so within-chunk evaluation order equals sequential
/// order. A panicking worker propagates its panic to the caller after the
/// scope joins every thread — identical blast radius to a panic in a
/// sequential loop (the engine's catch/rollback sees the same thing).
///
/// Thread-spawn failure (an OS resource limit, not a query error) degrades
/// gracefully: chunks whose worker could not be spawned are evaluated
/// sequentially on the calling thread after the spawned workers join, and
/// the `engine.par_spawn_fallback` counter records the event. A pure body
/// cannot observe the difference.
pub fn par_map<T, F>(threads: usize, env: &DynEnv, items: &[T], f: F) -> Vec<XdmResult<Sequence>>
where
    T: Sync,
    F: Fn(&mut DynEnv, usize, &T) -> XdmResult<Sequence> + Sync,
{
    let n = items.len();
    let workers = threads.clamp(1, MAX_THREADS).min(n);
    if workers <= 1 {
        let mut env = env.clone();
        return items
            .iter()
            .enumerate()
            .map(|(i, it)| f(&mut env, i, it))
            .collect();
    }
    let chunk = n.div_ceil(workers);
    let mut results: Vec<Option<XdmResult<Sequence>>> = (0..n).map(|_| None).collect();
    let mut spawn_failed = false;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        let mut rest: &mut [Option<XdmResult<Sequence>>] = &mut results;
        for w in 0..workers {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let (slot, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            let chunk_items = &items[lo..hi];
            let f = &f;
            let mut wenv = env.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("xqb-par-{w}"))
                .stack_size(PAR_STACK_BYTES)
                .spawn_scoped(scope, move || {
                    for (j, it) in chunk_items.iter().enumerate() {
                        slot[j] = Some(f(&mut wenv, lo + j, it));
                    }
                });
            match spawned {
                Ok(h) => handles.push(h),
                // An OS thread limit is not the query's fault: the dropped
                // closure releases its slots (still `None`), and the
                // sequential sweep below fills them.
                Err(_) => spawn_failed = true,
            }
        }
        for h in handles {
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
    });
    if spawn_failed {
        crate::obs::global()
            .counter("engine.par_spawn_fallback")
            .add(1);
        let mut fenv = env.clone();
        for (i, slot) in results.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(f(&mut fenv, i, &items[i]));
            }
        }
    }
    // Order preservation: the chunks partition 0..n exactly, so every slot
    // must be filled — a hole would mean dropped or reordered work.
    debug_assert!(
        results.iter().all(Option::is_some),
        "parallel worker left an item slot unfilled"
    );
    results
        .into_iter()
        .map(|r| r.expect("parallel worker left an item slot unfilled"))
        .collect()
}

/// Concatenate per-item results in input order; the first error — the one
/// the sequential loop would have raised — wins.
pub fn merge_in_order(results: Vec<XdmResult<Sequence>>) -> XdmResult<Sequence> {
    let mut out = Sequence::new();
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

fn non_pure(what: &str) -> XdmError {
    XdmError::new(
        "XQB0051",
        format!("internal: parallel worker reached a non-pure operator ({what})"),
    )
}

/// The `Pure` subset of the dynamic semantics over a shared `&Store`.
/// `depth` is the evaluator's recursion depth at the fan-out point, so the
/// `XQB0040` recursion limit fires at exactly the nesting the sequential
/// evaluation would have reported. Every step ticks the shared
/// [`LimitGuard`], so fuel/deadline trips cancel sibling workers
/// cooperatively. Operators outside the subset (updates, constructors,
/// `copy`, `snap`) report `XQB0051`: the gate excludes them statically, so
/// reaching one is a gate bug, never a user error.
pub fn eval_pure(
    ctx: &PureCtx<'_>,
    store: &Store,
    env: &mut DynEnv,
    depth: usize,
    expr: &Core,
) -> XdmResult<Sequence> {
    let depth = depth + 1;
    if depth > ctx.max_depth {
        ctx.guard.note_trip(TripKind::Depth);
        return Err(limits::depth_error(ctx.max_depth));
    }
    ctx.guard.tick()?;
    match expr {
        Core::Const(a) => Ok(seq![Item::Atomic(a.clone())]),
        Core::Var(name) => match env.var(name) {
            Ok(v) => Ok(v.clone()),
            Err(e) => ctx.globals.get(name).cloned().ok_or(e),
        },
        Core::ContextItem => Ok(seq![env.focus()?.item.clone()]),
        Core::Seq(items) => {
            let mut out = Sequence::new();
            for e in items {
                out.extend(eval_pure(ctx, store, env, depth, e)?);
            }
            Ok(out)
        }
        Core::For {
            var,
            position,
            source,
            body,
        } => {
            // Sequential inside a worker: one level of fan-out is enough,
            // and nesting scoped pools would multiply thread counts.
            let src = eval_pure(ctx, store, env, depth, source)?;
            let mut out = Sequence::new();
            for (i, it) in src.into_iter().enumerate() {
                env.push_var(var.clone(), seq![it]);
                if let Some(p) = position {
                    env.push_var(p.clone(), seq![Item::integer((i + 1) as i64)]);
                }
                let r = eval_pure(ctx, store, env, depth, body);
                if position.is_some() {
                    env.pop_var();
                }
                env.pop_var();
                out.extend(r?);
            }
            Ok(out)
        }
        Core::Let { var, value, body } => {
            let v = eval_pure(ctx, store, env, depth, value)?;
            env.push_var(var.clone(), v);
            let r = eval_pure(ctx, store, env, depth, body);
            env.pop_var();
            r
        }
        Core::If(cond, then, els) => {
            let c = eval_pure(ctx, store, env, depth, cond)?;
            if item::effective_boolean(&c, store)? {
                eval_pure(ctx, store, env, depth, then)
            } else {
                eval_pure(ctx, store, env, depth, els)
            }
        }
        Core::Quantified {
            quantifier,
            var,
            source,
            satisfies,
        } => {
            let src = eval_pure(ctx, store, env, depth, source)?;
            let mut result = matches!(quantifier, Quantifier::Every);
            for it in src {
                env.push_var(var.clone(), seq![it]);
                let s = eval_pure(ctx, store, env, depth, satisfies);
                env.pop_var();
                let holds = item::effective_boolean(&s?, store)?;
                match quantifier {
                    Quantifier::Some if holds => {
                        result = true;
                        break;
                    }
                    Quantifier::Every if !holds => {
                        result = false;
                        break;
                    }
                    _ => {}
                }
            }
            Ok(seq![Item::boolean(result)])
        }
        Core::SortedFor {
            var,
            source,
            keys,
            body,
        } => {
            let src = eval_pure(ctx, store, env, depth, source)?;
            let mut keyed: Vec<(Vec<Option<Atomic>>, Item)> = Vec::with_capacity(src.len());
            for it in src {
                env.push_var(var.clone(), seq![it.clone()]);
                let ks = (|env: &mut DynEnv| {
                    let mut ks = Vec::with_capacity(keys.len());
                    for k in keys {
                        let kv = eval_pure(ctx, store, env, depth, &k.key)?;
                        let a = item::zero_or_one(kv)?
                            .map(|x| x.atomize(store))
                            .transpose()?;
                        ks.push(a);
                    }
                    Ok(ks)
                })(env);
                env.pop_var();
                keyed.push((ks?, it));
            }
            keyed.sort_by(|(ka, _), (kb, _)| {
                for (i, (a, b)) in ka.iter().zip(kb).enumerate() {
                    let ord = cmp_keys(a, b);
                    let ord = if keys[i].ascending {
                        ord
                    } else {
                        ord.reverse()
                    };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            let mut out = Sequence::new();
            for (_, it) in keyed {
                env.push_var(var.clone(), seq![it]);
                let r = eval_pure(ctx, store, env, depth, body);
                env.pop_var();
                out.extend(r?);
            }
            Ok(out)
        }
        Core::Arith(op, l, r) => {
            let lv = eval_pure(ctx, store, env, depth, l)?;
            let rv = eval_pure(ctx, store, env, depth, r)?;
            let la = item::zero_or_one(lv)?
                .map(|x| x.atomize(store))
                .transpose()?;
            let ra = item::zero_or_one(rv)?
                .map(|x| x.atomize(store))
                .transpose()?;
            match (la, ra) {
                (Some(a), Some(b)) => Ok(seq![Item::Atomic(arithmetic(*op, &a, &b)?)]),
                _ => Ok(seq![]),
            }
        }
        Core::Neg(e) => {
            let v = eval_pure(ctx, store, env, depth, e)?;
            match item::zero_or_one(v)?
                .map(|x| x.atomize(store))
                .transpose()?
            {
                Some(a) => Ok(seq![Item::Atomic(negate(&a)?)]),
                None => Ok(seq![]),
            }
        }
        Core::GeneralComp(op, l, r) => {
            let lv = eval_pure(ctx, store, env, depth, l)?;
            let rv = eval_pure(ctx, store, env, depth, r)?;
            Ok(seq![Item::boolean(item::general_compare_seqs(
                *op, &lv, &rv, store,
            )?)])
        }
        Core::ValueComp(op, l, r) => {
            let lv = eval_pure(ctx, store, env, depth, l)?;
            let rv = eval_pure(ctx, store, env, depth, r)?;
            let la = item::zero_or_one(lv)?
                .map(|x| x.atomize(store))
                .transpose()?;
            let ra = item::zero_or_one(rv)?
                .map(|x| x.atomize(store))
                .transpose()?;
            match (la, ra) {
                (Some(a), Some(b)) => Ok(seq![Item::boolean(value_compare(*op, &a, &b)?)]),
                _ => Ok(seq![]),
            }
        }
        Core::NodeComp(op, l, r) => {
            let lv = eval_pure(ctx, store, env, depth, l)?;
            let rv = eval_pure(ctx, store, env, depth, r)?;
            let ln = item::zero_or_one(lv)?;
            let rn = item::zero_or_one(rv)?;
            match (ln, rn) {
                (Some(a), Some(b)) => {
                    let (a, b) = (require_node(a)?, require_node(b)?);
                    let res = match op {
                        NodeCompOp::Is => a == b,
                        NodeCompOp::Precedes => {
                            store.cmp_doc_order(a, b)? == std::cmp::Ordering::Less
                        }
                        NodeCompOp::Follows => {
                            store.cmp_doc_order(a, b)? == std::cmp::Ordering::Greater
                        }
                    };
                    Ok(seq![Item::boolean(res)])
                }
                _ => Ok(seq![]),
            }
        }
        Core::And(l, r) => {
            let lv = eval_pure(ctx, store, env, depth, l)?;
            if !item::effective_boolean(&lv, store)? {
                return Ok(seq![Item::boolean(false)]);
            }
            let rv = eval_pure(ctx, store, env, depth, r)?;
            Ok(seq![Item::boolean(item::effective_boolean(&rv, store)?)])
        }
        Core::Or(l, r) => {
            let lv = eval_pure(ctx, store, env, depth, l)?;
            if item::effective_boolean(&lv, store)? {
                return Ok(seq![Item::boolean(true)]);
            }
            let rv = eval_pure(ctx, store, env, depth, r)?;
            Ok(seq![Item::boolean(item::effective_boolean(&rv, store)?)])
        }
        Core::Union(l, r) => {
            let mut lv = eval_pure(ctx, store, env, depth, l)?;
            let rv = eval_pure(ctx, store, env, depth, r)?;
            lv.extend(rv);
            let mut nodes = item::all_nodes(&lv)?;
            store.sort_and_dedup(&mut nodes)?;
            Ok(nodes.into_iter().map(Item::Node).collect())
        }
        Core::Range(l, r) => {
            let lv = eval_pure(ctx, store, env, depth, l)?;
            let rv = eval_pure(ctx, store, env, depth, r)?;
            let la = item::zero_or_one(lv)?
                .map(|x| x.atomize(store))
                .transpose()?;
            let ra = item::zero_or_one(rv)?
                .map(|x| x.atomize(store))
                .transpose()?;
            match (la, ra) {
                (Some(a), Some(b)) => {
                    let (a, b) = (a.to_integer()?, b.to_integer()?);
                    let span = b
                        .checked_sub(a)
                        .and_then(|d| d.checked_add(1))
                        .unwrap_or(i64::MAX)
                        .max(0) as u64;
                    ctx.guard.charge(span)?;
                    Ok((a..=b).map(Item::integer).collect())
                }
                _ => Ok(seq![]),
            }
        }
        Core::MapStep {
            base,
            axis,
            test,
            predicates,
        } => {
            let origins = eval_pure(ctx, store, env, depth, base)?;
            let mut out = Sequence::new();
            for origin in &origins {
                let n = require_node(origin.clone())?;
                let axis_nodes = gather_axis(store, n, *axis, test)?;
                let mut items: Sequence = axis_nodes.into_iter().map(Item::Node).collect();
                for pred in predicates {
                    items = filter_positional_pure(ctx, store, env, depth, items, pred)?;
                }
                out.extend(items);
            }
            let mut nodes = item::all_nodes(&out)?;
            store.sort_and_dedup(&mut nodes)?;
            Ok(nodes.into_iter().map(Item::Node).collect())
        }
        Core::DocOrder(e) => {
            let v = eval_pure(ctx, store, env, depth, e)?;
            let mut nodes = item::all_nodes(&v)?;
            store.sort_and_dedup(&mut nodes)?;
            Ok(nodes.into_iter().map(Item::Node).collect())
        }
        Core::Predicate { base, pred } => {
            let v = eval_pure(ctx, store, env, depth, base)?;
            filter_positional_pure(ctx, store, env, depth, v, pred)
        }
        Core::Call(name, args) => {
            let mut values = Vec::with_capacity(args.len());
            for a in args {
                values.push(eval_pure(ctx, store, env, depth, a)?);
            }
            if let Some(result) = functions::dispatch_readonly(name, values.clone(), store, env) {
                return result;
            }
            let key = (name.to_string(), args.len());
            let Some(func) = ctx.functions.get(&key) else {
                return Err(XdmError::new(
                    "XPST0017",
                    format!("undefined function {name}#{}", args.len()),
                ));
            };
            // Function bodies see only their parameters and globals.
            let mut fenv = DynEnv::new();
            for (p, v) in func.params.iter().zip(values) {
                fenv.push_var(p.clone(), v);
            }
            eval_pure(ctx, store, &mut fenv, depth, &func.body)
        }
        Core::ElemCtor { .. }
        | Core::AttrCtor { .. }
        | Core::TextCtor(_)
        | Core::DocCtor(_)
        | Core::Copy(_) => Err(non_pure("node constructor")),
        Core::Insert { .. }
        | Core::Delete(_)
        | Core::Replace(..)
        | Core::ReplaceValue(..)
        | Core::Rename(..) => Err(non_pure("update operator")),
        Core::Snap(..) => Err(non_pure("snap")),
    }
}

/// Positional predicate filtering — the pure twin of the evaluator's rule.
fn filter_positional_pure(
    ctx: &PureCtx<'_>,
    store: &Store,
    env: &mut DynEnv,
    depth: usize,
    items: Sequence,
    pred: &Core,
) -> XdmResult<Sequence> {
    if let Core::Const(a) = pred {
        if a.is_numeric() {
            let wanted = a.to_double()?;
            let idx = wanted as usize;
            if wanted.fract() == 0.0 && idx >= 1 && idx <= items.len() {
                return Ok(seq![items[idx - 1].clone()]);
            }
            return Ok(seq![]);
        }
    }
    let size = items.len();
    let mut out = Sequence::new();
    for (i, it) in items.into_iter().enumerate() {
        env.push_focus(Focus {
            item: it.clone(),
            position: i + 1,
            size,
        });
        let v = eval_pure(ctx, store, env, depth, pred);
        env.pop_focus();
        let v = v?;
        let keep = match v.as_slice() {
            [Item::Atomic(a)] if a.is_numeric() => a.to_double()? == (i + 1) as f64,
            other => item::effective_boolean(other, store)?,
        };
        if keep {
            out.push(it);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use xqsyn::compile;

    fn gate(src: &str) -> bool {
        let prog = compile(src).expect("compile");
        let analysis = EffectAnalysis::new(&prog);
        let funcs: HashMap<(String, usize), CoreFunction> = prog
            .functions
            .iter()
            .map(|f| ((f.name.clone(), f.params.len()), f.clone()))
            .collect();
        // Gate judged on the whole body expression, as a loop body would be.
        par_safe(&prog.body, &analysis, &funcs)
    }

    #[test]
    fn gate_admits_pure_rejects_impure() {
        assert!(gate("$x/a[@id = 3] + count($y)"));
        assert!(gate("for $i in 1 to 9 return $i * $i"));
        // Alloc, Pending, Effectful: all rejected.
        assert!(!gate("<a/>"));
        assert!(!gate("insert { <a/> } into { $x }"));
        assert!(!gate("snap { delete { $x } }"));
        // Pure-rated but par-opaque.
        assert!(!gate("parse-xml(\"<a/>\")"));
        assert!(!gate("trace($x, \"label\")"));
        // A snap over pure code is Pure on the lattice but draws seeds.
        assert!(!gate("snap { 1 + 2 }"));
    }

    #[test]
    fn gate_chases_function_bodies() {
        assert!(gate(
            "declare function f($n) { $n * 2 }; for $i in $s return f($i)"
        ));
        // parse-xml hides behind a pure-rated function body.
        assert!(!gate(
            "declare function f($n) { parse-xml(\"<a/>\") }; for $i in $s return f($i)"
        ));
        // ...and behind one more level of calls.
        assert!(!gate(
            "declare function g() { parse-xml(\"<a/>\") };
             declare function f($n) { g() };
             f(1)"
        ));
    }

    #[test]
    fn par_map_preserves_input_order_and_first_error() {
        let env = DynEnv::new();
        let items: Vec<i64> = (0..100).collect();
        let results = par_map(8, &env, &items, |_env, i, it| {
            assert_eq!(*it as usize, i);
            Ok(seq![Item::integer(*it * 2)])
        });
        let merged = merge_in_order(results).unwrap();
        assert_eq!(merged.len(), 100);
        assert_eq!(merged[41], Item::integer(82));

        // Two failing items: the earlier one's error surfaces.
        let results = par_map(8, &env, &items, |_env, _i, it| {
            if *it == 97 {
                Err(XdmError::new("E-LATE", "late"))
            } else if *it == 13 {
                Err(XdmError::new("E-EARLY", "early"))
            } else {
                Ok(seq![])
            }
        });
        assert_eq!(merge_in_order(results).unwrap_err().code, "E-EARLY");
    }

    #[test]
    fn eval_pure_matches_sequential_evaluator() {
        let mut store = Store::new();
        let doc =
            xqdm::xml::parse_document(&mut store, "<r><e k=\"1\"/><e k=\"2\"/><e k=\"3\"/></r>")
                .unwrap();
        let prog = compile(
            "for $e in $doc//e order by -number($e/@k) return concat(\"k\", string($e/@k))",
        )
        .unwrap();
        let mut ev = Evaluator::new(&prog);
        ev.bind_global("doc", seq![Item::Node(doc)]);
        let mut env = DynEnv::new();
        let sequential = ev.eval_query(&mut store, &mut env, &prog.body).unwrap();

        let ctx = ev.pure_ctx();
        let mut penv = DynEnv::new();
        let parallel_path = eval_pure(&ctx, &store, &mut penv, 0, &prog.body).unwrap();
        assert_eq!(sequential, parallel_path);
    }

    #[test]
    fn eval_pure_rejects_non_pure_operators_defensively() {
        let prog = compile("insert { <a/> } into { $x }").unwrap();
        let ev = Evaluator::new(&prog);
        let ctx = ev.pure_ctx();
        let store = Store::new();
        let mut env = DynEnv::new();
        let err = eval_pure(&ctx, &store, &mut env, 0, &prog.body).unwrap_err();
        assert_eq!(err.code, "XQB0051");
    }

    #[test]
    fn threads_env_parsing_is_defensive() {
        // Not asserting on the live environment (tests run concurrently);
        // just the clamp logic via par_map worker counts.
        let env = DynEnv::new();
        let items = [1i64, 2, 3];
        let r = par_map(usize::MAX, &env, &items, |_e, _i, it| {
            Ok(seq![Item::integer(*it)])
        });
        assert_eq!(merge_in_order(r).unwrap().len(), 3);
    }
}
