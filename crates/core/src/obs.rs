//! Execution observability (DESIGN.md §10): a process-wide metrics
//! registry, per-plan-node runtime profiles, structured trace spans, and
//! the engine's slow-query log.
//!
//! Three layers, cheapest first:
//!
//! * **Registry** — named monotonic [`Counter`]s and log₂-bucketed
//!   [`Histogram`]s. The hot path is a relaxed atomic add on a
//!   pre-resolved handle; the name→handle map is only locked at
//!   registration and snapshot time ("lock-free-ish"). The engine flushes
//!   its per-run [`EvalStats`](crate::eval::EvalStats) deltas here after
//!   every run, and `xqb:stats()` / `xqb:reset-stats()` expose the
//!   [`global`] registry to queries.
//! * **[`Profile`]** — per-plan-node counters (calls, wall time,
//!   input/output cardinality, Δ requests, par attribution) captured only
//!   when the engine runs under `explain_analyze`. When profiling is off
//!   the evaluator's per-node hook is a single `Option` check.
//! * **[`TraceSink`]** — JSON-lines span events (begin/end with parent
//!   ids) written to the path named by `XQB_TRACE`. Spans cover the
//!   engine run, planning, and every snap scope — not every plan node, so
//!   trace volume stays proportional to query structure, not data size.
//!
//! The format parsers ([`parse_trace`], [`validate_spans`]) live here too
//! so the CI smoke test and the conformance suite validate exactly what
//! the sink writes.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ----------------------------------------------------------------------
// counters and histograms
// ----------------------------------------------------------------------

/// A monotonic counter. Updates are relaxed atomic adds; readers see a
/// value at least as fresh as the last `add` that happened-before the
/// read.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// An instantaneous level — in-flight requests, open sessions, snapshot
/// pins. Unlike a [`Counter`] it moves both ways and may be overwritten;
/// the snapshot reports its current value, not an accumulation.
#[derive(Default)]
pub struct Gauge(std::sync::atomic::AtomicI64);

impl Gauge {
    /// Raise the level by `n`.
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Lower the level by `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Overwrite the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of log₂ buckets a [`Histogram`] keeps: bucket *i* counts values
/// `v` with `⌊log₂ v⌋ = i` (bucket 0 also takes `v = 0`), covering the
/// full `u64` range.
pub const HIST_BUCKETS: usize = 64;

/// A log₂-bucketed histogram of `u64` samples (nanoseconds, cardinalities)
/// with exact count/sum/max. Same concurrency story as [`Counter`].
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HIST_BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        let bucket = if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Estimate the `q`-quantile (0 < q ≤ 1) from the log₂ buckets: the
    /// upper bound of the bucket where the cumulative count first reaches
    /// `q` of the total — within 2× of the true quantile. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                // The observed max is a tighter bound than the top
                // bucket's open upper edge.
                let edge = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return edge.min(self.max.load(Ordering::Relaxed));
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the aggregates.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Aggregates captured from a [`Histogram`] at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

// ----------------------------------------------------------------------
// registry
// ----------------------------------------------------------------------

/// How many slow-query records the registry retains (newest win).
pub const SLOW_LOG_CAP: usize = 64;

/// A named-metrics registry plus the slow-query ring. One process-wide
/// instance lives behind [`global`]; tests may construct private ones.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    slow_log: Mutex<VecDeque<SlowQuery>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, registering it (at zero) on first use.
    /// Callers on hot paths should resolve once and keep the handle.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, registering it (at zero) on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Record a slow query (ring of [`SLOW_LOG_CAP`] entries) and emit its
    /// JSON line to stderr.
    pub fn record_slow(&self, entry: SlowQuery) {
        eprintln!("{}", entry.to_json());
        let mut ring = self.slow_log.lock().expect("slow log poisoned");
        if ring.len() >= SLOW_LOG_CAP {
            ring.pop_front();
        }
        ring.push_back(entry);
        drop(ring);
        self.counter("engine.slow_queries").add(1);
    }

    /// The retained slow-query records, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow_log
            .lock()
            .expect("slow log poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Zero every counter and histogram and clear the slow-query ring.
    /// Registered names stay registered (handles remain valid).
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .expect("counter registry poisoned")
            .values()
        {
            c.reset();
        }
        for g in self
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .values()
        {
            g.reset();
        }
        for h in self
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .values()
        {
            h.reset();
        }
        self.slow_log.lock().expect("slow log poisoned").clear();
    }
}

/// A point-in-time copy of a registry's metrics, name-sorted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram aggregates by name.
    pub histograms: BTreeMap<String, HistSnapshot>,
}

impl MetricsSnapshot {
    /// Render as a single JSON object (`xqb:stats()` returns this string):
    /// `{"counters":{...},"gauges":{...},"histograms":{"name":{"count":..,"sum":..,"max":..}}}`.
    /// The `gauges` member is omitted while no gauge is registered, so
    /// engine-only stats keep their original shape.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{}:{v}", json_string(k)));
        }
        if !self.gauges.is_empty() {
            s.push_str("},\"gauges\":{");
            for (i, (k, v)) in self.gauges.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("{}:{v}", json_string(k)));
            }
        }
        s.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"max\":{}}}",
                json_string(k),
                h.count,
                h.sum,
                h.max
            ));
        }
        s.push_str("}}");
        s
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry: the one the engine flushes into and
/// `xqb:stats()` reads.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Pre-resolved handles for the engine's per-run flush: one relaxed
/// atomic add per field per run, no map lookups on the hot path.
pub struct EngineMetrics {
    /// `engine.runs` — runs started (successful or not).
    pub runs: Arc<Counter>,
    /// `engine.errors` — runs that returned an error.
    pub errors: Arc<Counter>,
    /// `engine.snaps_closed` — cumulative [`EvalStats::snaps_closed`](crate::eval::EvalStats).
    pub snaps_closed: Arc<Counter>,
    /// `engine.requests_emitted` — cumulative Δ requests emitted.
    pub requests_emitted: Arc<Counter>,
    /// `engine.requests_applied` — cumulative Δ requests applied.
    pub requests_applied: Arc<Counter>,
    /// `engine.plan_nodes` — compiled plan nodes executed.
    pub plan_nodes: Arc<Counter>,
    /// `engine.joins` — join operators executed.
    pub joins: Arc<Counter>,
    /// `engine.par_regions` — regions that fanned out.
    pub par_regions: Arc<Counter>,
    /// `engine.par_items` — items evaluated inside those regions.
    pub par_items: Arc<Counter>,
    /// `engine.batch_steps` — batch step-kernel invocations.
    pub batch_steps: Arc<Counter>,
    /// `engine.batch_nodes` — nodes those kernels produced (pre-dedup).
    pub batch_nodes: Arc<Counter>,
    /// `engine.idx.scans` — index-driven path steps executed.
    pub idx_scans: Arc<Counter>,
    /// `engine.idx.hits` — nodes those index scans emitted (pre-dedup).
    pub idx_hits: Arc<Counter>,
    /// `engine.cache_hits` — plan-cache hits.
    pub cache_hits: Arc<Counter>,
    /// `engine.cache_misses` — plan-cache misses.
    pub cache_misses: Arc<Counter>,
    /// `engine.limit_trips.depth` — runs stopped by the recursion-depth
    /// limit (`XQB0040`; DESIGN.md §12).
    pub limit_depth: Arc<Counter>,
    /// `engine.limit_trips.fuel` — runs stopped by fuel exhaustion
    /// (`XQB0041`).
    pub limit_fuel: Arc<Counter>,
    /// `engine.limit_trips.deadline` — runs stopped by the wall-clock
    /// deadline (`XQB0042`).
    pub limit_deadline: Arc<Counter>,
    /// `engine.limit_trips.memory` — runs stopped by the memory budget
    /// (`XQB0043`).
    pub limit_memory: Arc<Counter>,
    /// `engine.run_ns` — per-run wall time histogram (nanoseconds).
    pub run_ns: Arc<Histogram>,
    /// `engine.wal.commits` — durable commits flushed to the redo log
    /// (docs/DURABILITY.md).
    pub wal_commits: Arc<Counter>,
    /// `engine.wal.records` — redo records across those commits.
    pub wal_records: Arc<Counter>,
    /// `engine.wal.bytes` — bytes appended to the log, framing included.
    pub wal_bytes: Arc<Counter>,
    /// `engine.wal.fsyncs` — commits that fsynced (sync-mode dependent).
    pub wal_fsyncs: Arc<Counter>,
    /// `engine.wal.checkpoints` — compacted checkpoints installed.
    pub wal_checkpoints: Arc<Counter>,
    /// `engine.wal.tail_dropped` — corrupt log tails dropped during
    /// recovery (each one a graceful degradation, never an abort).
    pub wal_tail_dropped: Arc<Counter>,
    /// `engine.wal.replayed_commits` — committed batches replayed at
    /// startup recovery.
    pub wal_replayed: Arc<Counter>,
    /// `engine.wal.commit_ns` — per-commit flush latency histogram.
    pub wal_commit_ns: Arc<Histogram>,
}

impl EngineMetrics {
    /// Resolve every handle against the [`global`] registry.
    pub fn from_global() -> Self {
        let g = global();
        EngineMetrics {
            runs: g.counter("engine.runs"),
            errors: g.counter("engine.errors"),
            snaps_closed: g.counter("engine.snaps_closed"),
            requests_emitted: g.counter("engine.requests_emitted"),
            requests_applied: g.counter("engine.requests_applied"),
            plan_nodes: g.counter("engine.plan_nodes"),
            joins: g.counter("engine.joins"),
            par_regions: g.counter("engine.par_regions"),
            par_items: g.counter("engine.par_items"),
            batch_steps: g.counter("engine.batch_steps"),
            batch_nodes: g.counter("engine.batch_nodes"),
            idx_scans: g.counter("engine.idx.scans"),
            idx_hits: g.counter("engine.idx.hits"),
            cache_hits: g.counter("engine.cache_hits"),
            cache_misses: g.counter("engine.cache_misses"),
            limit_depth: g.counter("engine.limit_trips.depth"),
            limit_fuel: g.counter("engine.limit_trips.fuel"),
            limit_deadline: g.counter("engine.limit_trips.deadline"),
            limit_memory: g.counter("engine.limit_trips.memory"),
            run_ns: g.histogram("engine.run_ns"),
            wal_commits: g.counter("engine.wal.commits"),
            wal_records: g.counter("engine.wal.records"),
            wal_bytes: g.counter("engine.wal.bytes"),
            wal_fsyncs: g.counter("engine.wal.fsyncs"),
            wal_checkpoints: g.counter("engine.wal.checkpoints"),
            wal_tail_dropped: g.counter("engine.wal.tail_dropped"),
            wal_replayed: g.counter("engine.wal.replayed_commits"),
            wal_commit_ns: g.histogram("engine.wal.commit_ns"),
        }
    }

    /// Bump the limit-trip counter matching `code`, if it is one of the
    /// `XQB004x` resource-governance codes.
    pub fn note_limit_trip(&self, code: &str) {
        match code {
            "XQB0040" => self.limit_depth.add(1),
            "XQB0041" => self.limit_fuel.add(1),
            "XQB0042" => self.limit_deadline.add(1),
            "XQB0043" => self.limit_memory.add(1),
            _ => {}
        }
    }
}

// ----------------------------------------------------------------------
// slow-query log
// ----------------------------------------------------------------------

/// One slow-query record (threshold set by `XQB_SLOW_MS` or
/// `Engine::set_slow_query_threshold`).
#[derive(Debug, Clone, PartialEq)]
pub struct SlowQuery {
    /// 128-bit plan-cache fingerprint of the module-augmented program,
    /// rendered as hex — stable across runs of the same query text.
    pub fingerprint: String,
    /// Wall time in milliseconds.
    pub millis: f64,
    /// Plan-cache outcome: `"hit"`, `"miss"`, or `"uncompiled"` (planner
    /// disabled or absent).
    pub cache: &'static str,
    /// Δ-application mode of the implicit top-level snap (always
    /// `"ordered"`; recorded so the log format survives future modes).
    pub snap_mode: &'static str,
    /// Worker-thread budget the run used.
    pub threads: usize,
    /// Snaps closed during the run.
    pub snaps_closed: u64,
    /// Update requests applied during the run.
    pub requests_applied: u64,
}

impl SlowQuery {
    /// The JSON line the engine writes to stderr.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"slow_query\":{{\"fingerprint\":\"{}\",\"millis\":{:.3},\"cache\":\"{}\",\
             \"snap_mode\":\"{}\",\"threads\":{},\"snaps_closed\":{},\"requests_applied\":{}}}}}",
            self.fingerprint,
            self.millis,
            self.cache,
            self.snap_mode,
            self.threads,
            self.snaps_closed,
            self.requests_applied
        )
    }
}

// ----------------------------------------------------------------------
// per-node profiles
// ----------------------------------------------------------------------

/// Runtime counters for one plan node (identified by its pre-order index
/// in the plan tree; node ids are assigned per program section —
/// body, prolog variables, compiled functions — by the planner).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Times the node was executed (a loop body counts per iteration).
    pub calls: u64,
    /// Inclusive wall time (nanoseconds) across all calls.
    pub wall_ns: u64,
    /// Input cardinality: loop-source / join-outer / condition / bound-value
    /// rows the node consumed, summed over calls.
    pub input_rows: u64,
    /// Output cardinality: items the node returned, summed over calls.
    pub output_rows: u64,
    /// Δ requests emitted while the node (or any descendant) ran.
    pub delta_incl: u64,
    /// Δ requests attributable to this node alone (inclusive minus the
    /// children's inclusive counts).
    pub delta_self: u64,
    /// Parallel regions begun while the node ran (inclusive).
    pub par_regions: u64,
    /// Items fanned out in those regions (inclusive).
    pub par_items: u64,
    /// Batch step-kernel invocations while the node ran (inclusive).
    pub batch_steps: u64,
    /// Nodes those kernels produced, pre-dedup (inclusive).
    pub batch_nodes: u64,
    /// Index-driven path steps while the node ran (inclusive).
    pub idx_scans: u64,
    /// Nodes those index scans emitted, pre-dedup (inclusive).
    pub idx_hits: u64,
}

/// Per-node statistics for one analyzed run, indexed by plan-node id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    nodes: Vec<NodeStats>,
}

impl Profile {
    /// Stats for node `id` (zeros if the node never executed).
    pub fn node(&self, id: usize) -> NodeStats {
        self.nodes.get(id).copied().unwrap_or_default()
    }

    /// Mutable stats slot for node `id`, growing the table as needed.
    pub fn node_mut(&mut self, id: usize) -> &mut NodeStats {
        if self.nodes.len() <= id {
            self.nodes.resize(id + 1, NodeStats::default());
        }
        &mut self.nodes[id]
    }

    /// Number of node slots (≥ highest executed id + 1).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// No node executed at all?
    pub fn is_empty(&self) -> bool {
        self.nodes.iter().all(|n| n.calls == 0)
    }

    /// Sum of `delta_self` over every node — must equal the run's
    /// `requests_emitted` total when every emission happened under some
    /// profiled node (the obs-invariants suite pins this).
    pub fn total_delta_self(&self) -> u64 {
        self.nodes.iter().map(|n| n.delta_self).sum()
    }

    /// Sum of `calls` over every node.
    pub fn total_calls(&self) -> u64 {
        self.nodes.iter().map(|n| n.calls).sum()
    }
}

// ----------------------------------------------------------------------
// trace spans
// ----------------------------------------------------------------------

/// A JSON-lines span sink. Each line is one event:
///
/// ```json
/// {"ev":"b","id":3,"parent":1,"name":"snap","t":123456}
/// {"ev":"e","id":3,"t":234567}
/// ```
///
/// `id` is unique per sink, `parent` is the enclosing span's id (omitted
/// for roots), `t` is nanoseconds since the sink was created. Writes are
/// line-atomic behind a mutex; span ids come from an atomic counter, so
/// concurrent spans interleave without corruption.
pub struct TraceSink {
    out: Mutex<Box<dyn std::io::Write + Send>>,
    next_id: AtomicU64,
    t0: Instant,
}

impl TraceSink {
    /// A sink writing to the file at `path` (truncated).
    pub fn to_path(path: &str) -> std::io::Result<TraceSink> {
        let file = std::fs::File::create(path)?;
        Ok(TraceSink {
            out: Mutex::new(Box::new(std::io::BufWriter::new(file))),
            next_id: AtomicU64::new(1),
            t0: Instant::now(),
        })
    }

    /// The sink named by the `XQB_TRACE` environment variable, if set.
    /// An unwritable path is reported to stderr and disables tracing
    /// rather than failing the engine.
    pub fn from_env() -> Option<Arc<TraceSink>> {
        let path = std::env::var("XQB_TRACE").ok()?;
        match TraceSink::to_path(&path) {
            Ok(sink) => Some(Arc::new(sink)),
            Err(e) => {
                eprintln!("XQB_TRACE: cannot open {path}: {e}");
                None
            }
        }
    }

    /// Begin a span; returns its id for [`TraceSink::end`] and for child
    /// spans' `parent`.
    pub fn begin(&self, name: &str, parent: Option<u64>) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let t = self.t0.elapsed().as_nanos();
        let mut out = self.out.lock().expect("trace sink poisoned");
        let _ = match parent {
            Some(p) => writeln!(
                out,
                "{{\"ev\":\"b\",\"id\":{id},\"parent\":{p},\"name\":{},\"t\":{t}}}",
                json_string(name)
            ),
            None => writeln!(
                out,
                "{{\"ev\":\"b\",\"id\":{id},\"name\":{},\"t\":{t}}}",
                json_string(name)
            ),
        };
        id
    }

    /// End the span `id`.
    pub fn end(&self, id: u64) {
        let t = self.t0.elapsed().as_nanos();
        let mut out = self.out.lock().expect("trace sink poisoned");
        let _ = writeln!(out, "{{\"ev\":\"e\",\"id\":{id},\"t\":{t}}}");
    }

    /// Flush buffered events to the underlying file.
    pub fn flush(&self) {
        let _ = self.out.lock().expect("trace sink poisoned").flush();
    }
}

/// One parsed trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// `true` for a begin (`"b"`) event, `false` for an end (`"e"`).
    pub begin: bool,
    /// Span id.
    pub id: u64,
    /// Parent span id (begin events only; `None` for roots and ends).
    pub parent: Option<u64>,
    /// Span name (begin events only; empty for ends).
    pub name: String,
    /// Nanoseconds since the sink was created.
    pub t: u64,
}

/// Parse the JSON-lines trace format [`TraceSink`] writes. This is a
/// validator for our own fixed single-line object shape, not a general
/// JSON parser; any malformed line is an error.
pub fn parse_trace(text: &str) -> Result<Vec<SpanEvent>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |what: &str| format!("trace line {}: {what}: {line}", lineno + 1);
        let body = line
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| err("not a JSON object"))?;
        let mut begin = None;
        let mut id = None;
        let mut parent = None;
        let mut name = None;
        let mut t = None;
        for field in split_top_level_fields(body) {
            let (key, value) = field
                .split_once(':')
                .ok_or_else(|| err("field without ':'"))?;
            let key = key.trim().trim_matches('"');
            let value = value.trim();
            match key {
                "ev" => match value {
                    "\"b\"" => begin = Some(true),
                    "\"e\"" => begin = Some(false),
                    _ => return Err(err("ev must be \"b\" or \"e\"")),
                },
                "id" => id = Some(value.parse::<u64>().map_err(|_| err("bad id"))?),
                "parent" => parent = Some(value.parse::<u64>().map_err(|_| err("bad parent"))?),
                "name" => {
                    let inner = value
                        .strip_prefix('"')
                        .and_then(|s| s.strip_suffix('"'))
                        .ok_or_else(|| err("name must be a string"))?;
                    name = Some(inner.replace("\\\"", "\"").replace("\\\\", "\\"));
                }
                "t" => t = Some(value.parse::<u64>().map_err(|_| err("bad t"))?),
                _ => return Err(err("unknown field")),
            }
        }
        let begin = begin.ok_or_else(|| err("missing ev"))?;
        let id = id.ok_or_else(|| err("missing id"))?;
        let t = t.ok_or_else(|| err("missing t"))?;
        if begin && name.is_none() {
            return Err(err("begin event missing name"));
        }
        if !begin && (parent.is_some() || name.is_some()) {
            return Err(err("end event carries begin-only fields"));
        }
        events.push(SpanEvent {
            begin,
            id,
            parent,
            name: name.unwrap_or_default(),
            t,
        });
    }
    Ok(events)
}

/// Split `a:1,b:"x,y"` style object bodies on top-level commas (commas
/// inside string values don't split).
fn split_top_level_fields(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        match c {
            '\\' if in_string => escaped = !escaped,
            '"' if !escaped => in_string = !in_string,
            ',' if !in_string => {
                out.push(&body[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    if start < body.len() {
        out.push(&body[start..]);
    }
    out
}

/// Validate span discipline over parsed events: ids unique, every end has
/// a matching open begin, every parent is open when its child begins, and
/// no span is left open. Returns the number of complete spans.
pub fn validate_spans(events: &[SpanEvent]) -> Result<usize, String> {
    use std::collections::HashSet;
    let mut open: HashSet<u64> = HashSet::new();
    let mut seen: HashSet<u64> = HashSet::new();
    let mut closed = 0usize;
    for ev in events {
        if ev.begin {
            if !seen.insert(ev.id) {
                return Err(format!("span id {} reused", ev.id));
            }
            if let Some(p) = ev.parent {
                if !open.contains(&p) {
                    return Err(format!(
                        "span {} ({}) begins under parent {} which is not open",
                        ev.id, ev.name, p
                    ));
                }
            }
            open.insert(ev.id);
        } else {
            if !open.remove(&ev.id) {
                return Err(format!("span {} ends without an open begin", ev.id));
            }
            closed += 1;
        }
    }
    if !open.is_empty() {
        let mut ids: Vec<_> = open.into_iter().collect();
        ids.sort_unstable();
        return Err(format!("spans left open: {ids:?}"));
    }
    Ok(closed)
}

// ----------------------------------------------------------------------
// rendering helpers
// ----------------------------------------------------------------------

/// Human-readable nanoseconds (`742ns`, `13.2µs`, `4.71ms`, `1.20s`).
pub fn fmt_ns(ns: u64) -> String {
    let ns_f = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns_f / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns_f / 1e6)
    } else {
        format!("{:.2}s", ns_f / 1e9)
    }
}

/// Mask every `time=<value>` token so analyzed plans can be pinned as
/// goldens: timings vary run to run, cardinalities must not.
pub fn mask_timings(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(i) = rest.find("time=") {
        let after = i + "time=".len();
        out.push_str(&rest[..after]);
        out.push_str("<t>");
        let tail = &rest[after..];
        let end = tail
            .find(|c: char| c.is_whitespace() || c == ')' || c == ',')
            .unwrap_or(tail.len());
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

/// Escape a string as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_snapshot_reset() {
        let r = Registry::new();
        let c = r.counter("x.count");
        c.add(3);
        r.counter("x.count").add(2);
        assert_eq!(c.get(), 5);
        let snap = r.snapshot();
        assert_eq!(snap.counters["x.count"], 5);
        r.reset();
        assert_eq!(c.get(), 0);
        // The handle stays live across reset.
        c.add(1);
        assert_eq!(r.snapshot().counters["x.count"], 1);
    }

    #[test]
    fn gauges_move_both_ways_and_render() {
        let r = Registry::new();
        let g = r.gauge("x.level");
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        assert_eq!(r.snapshot().gauges["x.level"], 3);
        assert!(r
            .snapshot()
            .to_json()
            .contains("\"gauges\":{\"x.level\":3}"));
        r.reset();
        assert_eq!(g.get(), 0);
        g.set(-1);
        assert_eq!(r.snapshot().gauges["x.level"], -1);
        // Gauge-free snapshots keep the original two-member shape.
        assert!(!Registry::new().snapshot().to_json().contains("gauges"));
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.record(100); // bucket 6, upper edge 127
        }
        h.record(1_000_000); // bucket 19
        assert_eq!(h.quantile(0.5), 127);
        assert_eq!(h.quantile(0.99), 127);
        // The top-most populated bucket is clamped to the observed max.
        assert_eq!(h.quantile(1.0), 1_000_000);
        assert_eq!(Histogram::default().quantile(0.5), 0);
    }

    #[test]
    fn histogram_aggregates() {
        let h = Histogram::default();
        for v in [0, 1, 1000, 65_536] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 66_537);
        assert_eq!(s.max, 65_536);
    }

    #[test]
    fn snapshot_json_shape() {
        let r = Registry::new();
        r.counter("a").add(7);
        r.histogram("h").record(5);
        let json = r.snapshot().to_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"a\":7"));
        assert!(json.contains("\"h\":{\"count\":1,\"sum\":5,\"max\":5}"));
    }

    #[test]
    fn profile_grows_and_sums() {
        let mut p = Profile::default();
        p.node_mut(3).delta_self = 2;
        p.node_mut(1).delta_self = 1;
        p.node_mut(1).calls = 4;
        assert_eq!(p.len(), 4);
        assert_eq!(p.total_delta_self(), 3);
        assert_eq!(p.total_calls(), 4);
        assert_eq!(p.node(99), NodeStats::default());
    }

    #[test]
    fn trace_roundtrip_and_validation() {
        let path =
            std::env::temp_dir().join(format!("xqb-trace-test-{}.jsonl", std::process::id()));
        let sink = TraceSink::to_path(path.to_str().unwrap()).unwrap();
        let run = sink.begin("run", None);
        let snap = sink.begin("snap", Some(run));
        sink.end(snap);
        sink.end(run);
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let events = parse_trace(&text).unwrap();
        assert_eq!(events.len(), 4);
        assert_eq!(validate_spans(&events).unwrap(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn validation_rejects_bad_nesting() {
        let events = parse_trace(
            "{\"ev\":\"b\",\"id\":1,\"name\":\"run\",\"t\":0}\n{\"ev\":\"e\",\"id\":2,\"t\":1}\n",
        )
        .unwrap();
        assert!(validate_spans(&events).is_err());
        // A child under a never-opened parent.
        let events =
            parse_trace("{\"ev\":\"b\",\"id\":2,\"parent\":9,\"name\":\"x\",\"t\":0}").unwrap();
        assert!(validate_spans(&events).is_err());
        // Parse errors for malformed lines.
        assert!(parse_trace("{\"ev\":\"q\",\"id\":1,\"t\":0}").is_err());
        assert!(parse_trace("not json").is_err());
    }

    #[test]
    fn mask_timings_replaces_all_values() {
        let s = "Iterate (calls=2 time=1.23ms rows=5→3) time=99ns, time=4s)";
        assert_eq!(
            mask_timings(s),
            "Iterate (calls=2 time=<t> rows=5→3) time=<t>, time=<t>)"
        );
    }

    #[test]
    fn slow_query_json_line() {
        let q = SlowQuery {
            fingerprint: "00ff".into(),
            millis: 12.5,
            cache: "hit",
            snap_mode: "ordered",
            threads: 4,
            snaps_closed: 2,
            requests_applied: 3,
        };
        let j = q.to_json();
        assert!(j.contains("\"fingerprint\":\"00ff\""));
        assert!(j.contains("\"millis\":12.500"));
        assert!(j.contains("\"cache\":\"hit\""));
        assert!(j.contains("\"threads\":4"));
    }
}
