//! Resource governance: recursion-depth, fuel, deadline, and memory limits.
//!
//! PR 1 made snap application atomic, but stack overflows and runaway
//! queries bypass that frame entirely: they abort the process instead of
//! unwinding through the undo journal. This module turns every resource
//! exhaustion into an ordinary dynamic error that rolls back like any
//! other failure:
//!
//! | code      | limit                                   |
//! |-----------|-----------------------------------------|
//! | `XQB0040` | recursion / nesting depth               |
//! | `XQB0041` | evaluation-step fuel                    |
//! | `XQB0042` | wall-clock deadline                     |
//! | `XQB0043` | materialized-sequence / Δ memory budget |
//!
//! [`Limits`] is the plain config (engine builders, `XQB_*` env vars,
//! `xqbang` flags, REPL `:limits`). [`LimitGuard`] is the cheap runtime
//! check shared by every execution surface — interpreted evaluator,
//! compiled executor, and parallel workers. The guard is `Clone` and all
//! state is atomic, so one guard is shared across sibling workers: the
//! first worker to exceed a limit trips the guard and every sibling's next
//! [`LimitGuard::tick`] observes the trip and unwinds with the same error
//! class (cooperative first-exceeder cancellation).
//!
//! When no fuel/deadline/memory limit is armed, `tick()` is a single
//! branch on an inline bool — measured ≤2% on the XMark Q8 hot path
//! (`e13_limits_overhead`).

use std::sync::atomic::{AtomicI64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use xqdm::error::{XdmError, XdmResult};

/// Default maximum evaluator recursion depth (user-function calls plus
/// nested plan execution). Matches the 64 MiB dedicated eval stack.
pub const DEFAULT_MAX_DEPTH: usize = 512;

/// Default maximum expression nesting depth accepted by the `xqsyn`
/// recursive-descent parser. Deep enough for any realistic query, shallow
/// enough that parsing never overflows a 2 MiB thread stack.
pub const DEFAULT_MAX_PARSE_DEPTH: usize = 200;

/// Default maximum element nesting depth accepted by the XML parser. The
/// parser itself is iterative (cannot overflow the stack); this bounds
/// pathological documents before they bloat the store.
pub const DEFAULT_MAX_XML_DEPTH: usize = 4096;

/// How many ticks pass between deadline polls. `Instant::now()` is a
/// syscall-ish operation; polling every tick would dominate the hot path.
const DEADLINE_POLL_MASK: u64 = 0x3FF; // every 1024 ticks

/// Which limit tripped first. Stored in the shared guard so sibling
/// workers report the same class as the first exceeder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TripKind {
    /// No trip recorded.
    None = 0,
    /// Recursion / nesting depth (`XQB0040`).
    Depth = 1,
    /// Evaluation-step fuel (`XQB0041`).
    Fuel = 2,
    /// Wall-clock deadline (`XQB0042`).
    Deadline = 3,
    /// Memory budget (`XQB0043`).
    Memory = 4,
}

impl TripKind {
    fn from_u8(v: u8) -> TripKind {
        match v {
            1 => TripKind::Depth,
            2 => TripKind::Fuel,
            3 => TripKind::Deadline,
            4 => TripKind::Memory,
            _ => TripKind::None,
        }
    }

    /// The error code raised for this trip class.
    pub fn code(self) -> &'static str {
        match self {
            TripKind::None => "XQB0000",
            TripKind::Depth => "XQB0040",
            TripKind::Fuel => "XQB0041",
            TripKind::Deadline => "XQB0042",
            TripKind::Memory => "XQB0043",
        }
    }
}

/// Error constructor for a depth trip (`XQB0040`).
pub fn depth_error(limit: usize) -> XdmError {
    XdmError::new(
        "XQB0040",
        format!("recursion/nesting depth limit exceeded (max {limit})"),
    )
}

/// Error constructor for a fuel trip (`XQB0041`).
pub fn fuel_error(limit: u64) -> XdmError {
    XdmError::new(
        "XQB0041",
        format!("evaluation fuel exhausted (budget {limit} steps)"),
    )
}

/// Error constructor for a deadline trip (`XQB0042`).
pub fn deadline_error(ms: u64) -> XdmError {
    XdmError::new("XQB0042", format!("query deadline exceeded ({ms} ms)"))
}

/// Error constructor for a memory-budget trip (`XQB0043`).
pub fn memory_error(limit: u64) -> XdmError {
    XdmError::new(
        "XQB0043",
        format!("memory budget exceeded (limit {limit} items)"),
    )
}

/// Resource limits for one engine / one run. Plain data; the runtime
/// mechanism is [`LimitGuard`].
///
/// `None` means "unlimited" for the optional knobs. Depth limits are
/// always finite: they protect the native stack, which is itself finite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum evaluator recursion depth (`XQB0040`).
    pub max_depth: usize,
    /// Maximum expression nesting depth in the query parser (`XQB0040`,
    /// surfaced as a parse error).
    pub max_parse_depth: usize,
    /// Maximum element nesting depth in parsed XML documents (`XQB0040`).
    pub max_xml_depth: usize,
    /// Evaluation-step fuel budget (`XQB0041`); every evaluator step and
    /// every compiled plan node costs one unit.
    pub fuel: Option<u64>,
    /// Materialized-item budget (`XQB0043`); charged for materialized
    /// sequence items and pending-update Δ entries.
    pub memory_items: Option<u64>,
    /// Wall-clock deadline per run, in milliseconds (`XQB0042`).
    pub deadline_ms: Option<u64>,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_depth: DEFAULT_MAX_DEPTH,
            max_parse_depth: DEFAULT_MAX_PARSE_DEPTH,
            max_xml_depth: DEFAULT_MAX_XML_DEPTH,
            fuel: None,
            memory_items: None,
            deadline_ms: None,
        }
    }
}

impl Limits {
    /// Defaults overridden by `XQB_MAX_DEPTH`, `XQB_MAX_PARSE_DEPTH`,
    /// `XQB_MAX_XML_DEPTH`, `XQB_FUEL`, `XQB_MEMORY_ITEMS`, and
    /// `XQB_DEADLINE_MS`. Unset or unparseable variables keep the default.
    pub fn from_env() -> Self {
        fn get<T: std::str::FromStr>(name: &str) -> Option<T> {
            std::env::var(name).ok()?.trim().parse().ok()
        }
        let mut l = Limits::default();
        if let Some(d) = get::<usize>("XQB_MAX_DEPTH") {
            l.max_depth = d.max(1);
        }
        if let Some(d) = get::<usize>("XQB_MAX_PARSE_DEPTH") {
            l.max_parse_depth = d.max(1);
        }
        if let Some(d) = get::<usize>("XQB_MAX_XML_DEPTH") {
            l.max_xml_depth = d.max(1);
        }
        l.fuel = get::<u64>("XQB_FUEL").or(l.fuel);
        l.memory_items = get::<u64>("XQB_MEMORY_ITEMS").or(l.memory_items);
        l.deadline_ms = get::<u64>("XQB_DEADLINE_MS").or(l.deadline_ms);
        l
    }

    /// True when any of fuel, memory, or deadline is armed (the limits
    /// that require runtime ticking; depth is checked structurally).
    pub fn needs_guard(&self) -> bool {
        self.fuel.is_some() || self.memory_items.is_some() || self.deadline_ms.is_some()
    }
}

#[derive(Debug)]
struct GuardShared {
    /// Remaining fuel. `i64::MAX` when unlimited (never reaches zero in
    /// practice: ~292 years of ticks at 1 GHz).
    fuel: AtomicI64,
    fuel_budget: u64,
    /// Initial `fuel` value, so the first tick can be recognized without
    /// a separate counter (the deadline is polled deterministically on
    /// the first tick — `deadline_ms = 0` trips immediately).
    fuel_init: i64,
    /// Remaining memory budget in items; `i64::MAX` when unlimited.
    memory: AtomicI64,
    memory_budget: u64,
    /// Absolute deadline, armed when the guard is created.
    deadline: Option<Instant>,
    deadline_ms: u64,
    /// Depth limit, for reporting sibling-observed depth trips.
    depth_limit: usize,
    /// First limit class to trip; sticky until re-armed.
    tripped: AtomicU8,
}

/// Cheap cooperative limit check, shared across execution surfaces and
/// worker threads. Cloning shares the underlying state.
///
/// The hot-path cost when nothing is armed is one inline bool test —
/// `active` lives on the guard itself, not behind the `Arc`.
#[derive(Debug, Clone)]
pub struct LimitGuard {
    active: bool,
    inner: Arc<GuardShared>,
}

impl LimitGuard {
    /// Build a guard for one run of a query. The wall-clock deadline is
    /// anchored **now**, so construct the guard when the run starts.
    pub fn new(limits: &Limits) -> Self {
        let fuel_budget = limits.fuel.unwrap_or(0);
        let memory_budget = limits.memory_items.unwrap_or(0);
        let deadline_ms = limits.deadline_ms.unwrap_or(0);
        let fuel_init = match limits.fuel {
            Some(f) => i64::try_from(f).unwrap_or(i64::MAX),
            None => i64::MAX,
        };
        LimitGuard {
            active: limits.needs_guard(),
            inner: Arc::new(GuardShared {
                fuel: AtomicI64::new(fuel_init),
                fuel_budget,
                fuel_init,
                memory: AtomicI64::new(match limits.memory_items {
                    Some(m) => i64::try_from(m).unwrap_or(i64::MAX),
                    None => i64::MAX,
                }),
                memory_budget,
                deadline: limits
                    .deadline_ms
                    .map(|ms| Instant::now() + Duration::from_millis(ms)),
                deadline_ms,
                depth_limit: limits.max_depth,
                tripped: AtomicU8::new(TripKind::None as u8),
            }),
        }
    }

    /// A guard with nothing armed; `tick` is a single branch.
    pub fn unlimited() -> Self {
        LimitGuard::new(&Limits::default())
    }

    /// One evaluation step: burns a unit of fuel, periodically polls the
    /// deadline, and observes trips recorded by sibling workers.
    #[inline]
    pub fn tick(&self) -> XdmResult<()> {
        if !self.active {
            return Ok(());
        }
        self.tick_slow()
    }

    // Not `#[cold]`: when any limit is armed this *is* the per-step hot
    // path; only the disabled fast path above should be favoured.
    fn tick_slow(&self) -> XdmResult<()> {
        let g = &*self.inner;
        let t = g.tripped.load(Ordering::Relaxed);
        if t != TripKind::None as u8 {
            return Err(self.trip_error(TripKind::from_u8(t)));
        }
        // One atomic RMW per tick: the fuel counter doubles as the pace
        // for deadline polls (it decrements every tick even when fuel is
        // unlimited, starting from i64::MAX).
        let remaining = g.fuel.fetch_sub(1, Ordering::Relaxed);
        if remaining <= 0 {
            return Err(self.trip(TripKind::Fuel));
        }
        if let Some(deadline) = g.deadline {
            // Poll on the very first tick (deterministic: a 0 ms deadline
            // trips before any work) and then every 1024 fuel units.
            let poll = remaining == g.fuel_init || remaining as u64 & DEADLINE_POLL_MASK == 0;
            if poll && Instant::now() >= deadline {
                return Err(self.trip(TripKind::Deadline));
            }
        }
        Ok(())
    }

    /// Charge `n` items against the memory budget (materialized sequence
    /// items, pending-update Δ entries).
    #[inline]
    pub fn charge(&self, n: u64) -> XdmResult<()> {
        if !self.active {
            return Ok(());
        }
        self.charge_slow(n)
    }

    #[cold]
    fn charge_slow(&self, n: u64) -> XdmResult<()> {
        let g = &*self.inner;
        if g.memory_budget == 0 {
            return Ok(());
        }
        let t = g.tripped.load(Ordering::Relaxed);
        if t != TripKind::None as u8 {
            return Err(self.trip_error(TripKind::from_u8(t)));
        }
        let take = i64::try_from(n).unwrap_or(i64::MAX);
        if g.memory.fetch_sub(take, Ordering::Relaxed) - take < 0 {
            return Err(self.trip(TripKind::Memory));
        }
        Ok(())
    }

    /// Record a trip observed outside the guard (e.g. the structural
    /// depth check) so sibling workers cancel with the same class.
    pub fn note_trip(&self, kind: TripKind) {
        let _ = self.inner.tripped.compare_exchange(
            TripKind::None as u8,
            kind as u8,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Which limit class tripped, if any.
    pub fn tripped(&self) -> TripKind {
        TripKind::from_u8(self.inner.tripped.load(Ordering::Relaxed))
    }

    fn trip(&self, kind: TripKind) -> XdmError {
        self.note_trip(kind);
        // Report the winning class: a sibling may have tripped first.
        self.trip_error(self.tripped())
    }

    fn trip_error(&self, kind: TripKind) -> XdmError {
        let g = &*self.inner;
        match kind {
            TripKind::Depth => depth_error(g.depth_limit),
            TripKind::Fuel => fuel_error(g.fuel_budget),
            TripKind::Deadline => deadline_error(g.deadline_ms),
            TripKind::Memory => memory_error(g.memory_budget),
            TripKind::None => XdmError::new("XQB0000", "no limit tripped".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_limits_are_inactive() {
        let l = Limits::default();
        assert!(!l.needs_guard());
        let g = LimitGuard::new(&l);
        for _ in 0..10_000 {
            g.tick().unwrap();
        }
        g.charge(u64::MAX / 2).unwrap();
        assert_eq!(g.tripped(), TripKind::None);
    }

    #[test]
    fn fuel_trips_after_budget() {
        let g = LimitGuard::new(&Limits {
            fuel: Some(10),
            ..Limits::default()
        });
        for _ in 0..10 {
            g.tick().unwrap();
        }
        let err = g.tick().unwrap_err();
        assert_eq!(err.code, "XQB0041");
        assert_eq!(g.tripped(), TripKind::Fuel);
        // Sticky: later ticks keep failing with the same class.
        assert_eq!(g.tick().unwrap_err().code, "XQB0041");
    }

    #[test]
    fn zero_deadline_trips_on_first_poll() {
        let g = LimitGuard::new(&Limits {
            deadline_ms: Some(0),
            ..Limits::default()
        });
        // The first tick polls deterministically (remaining == fuel_init).
        let err = g.tick().unwrap_err();
        assert_eq!(err.code, "XQB0042");
    }

    #[test]
    fn memory_budget_trips() {
        let g = LimitGuard::new(&Limits {
            memory_items: Some(100),
            ..Limits::default()
        });
        g.charge(60).unwrap();
        g.charge(40).unwrap();
        let err = g.charge(1).unwrap_err();
        assert_eq!(err.code, "XQB0043");
    }

    #[test]
    fn shared_trip_is_observed_by_clones() {
        let g = LimitGuard::new(&Limits {
            fuel: Some(1),
            ..Limits::default()
        });
        let sibling = g.clone();
        g.tick().unwrap();
        assert_eq!(g.tick().unwrap_err().code, "XQB0041");
        // The sibling's next tick sees the trip without burning fuel.
        assert_eq!(sibling.tick().unwrap_err().code, "XQB0041");
    }

    #[test]
    fn note_trip_wins_for_depth() {
        let g = LimitGuard::new(&Limits {
            fuel: Some(1_000),
            ..Limits::default()
        });
        g.note_trip(TripKind::Depth);
        assert_eq!(g.tick().unwrap_err().code, "XQB0040");
    }

    #[test]
    fn env_parsing() {
        // Serialized via a unique var set; avoid cross-test env races by
        // only asserting on vars this test sets.
        std::env::set_var("XQB_FUEL", "1234");
        std::env::set_var("XQB_MAX_DEPTH", "77");
        let l = Limits::from_env();
        assert_eq!(l.fuel, Some(1234));
        assert_eq!(l.max_depth, 77);
        std::env::remove_var("XQB_FUEL");
        std::env::remove_var("XQB_MAX_DEPTH");
    }

    #[test]
    fn trip_codes() {
        assert_eq!(TripKind::Depth.code(), "XQB0040");
        assert_eq!(TripKind::Fuel.code(), "XQB0041");
        assert_eq!(TripKind::Deadline.code(), "XQB0042");
        assert_eq!(TripKind::Memory.code(), "XQB0043");
    }
}
