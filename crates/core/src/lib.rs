//! # xqcore — the dynamic semantics of XQuery!
//!
//! This crate implements the paper's core contribution (Ghelli, Ré, Siméon,
//! *XQuery!: An XML Query Language with Side Effects*, EDBT 2006):
//!
//! * the extended semantic judgment `store0; dynEnv ⊢ Expr ⇒ value; Δ;
//!   store1` as a big-step evaluator over the normalized core language
//!   ([`eval::Evaluator`]), with the paper's strict left-to-right
//!   evaluation order;
//! * pending update lists Δ ([`update::Delta`]) and the update requests of
//!   §3.2, kept on the **stack of update lists** described in §4.1;
//! * the **`snap`** operator with free nesting, and the three Δ-application
//!   semantics — ordered, nondeterministic, conflict-detection
//!   ([`apply::apply_delta`], [`conflict::verify_conflict_free`] — the
//!   latter in linear time with a pair of hash tables, as §4.1 claims);
//! * the side-effect judgment that guards optimizer rewritings
//!   ([`effects::EffectAnalysis`]), including the call-graph "monadic"
//!   fixpoint of §5;
//! * a built-in function library and a host-facing [`engine::Engine`]
//!   facade.
//!
//! ## Quick example
//!
//! ```
//! use xqcore::Engine;
//!
//! let mut engine = Engine::new();
//! engine.load_document("log", "<log/>").unwrap();
//! // The paper's §2.3 pattern: a snap makes the insertion visible to the
//! // rest of the same query.
//! let n = engine
//!     .run("(snap insert { <entry/> } into { $log/log }, count($log/log/entry))")
//!     .unwrap();
//! assert_eq!(engine.serialize(&n).unwrap(), "1");
//! ```

pub mod apply;
pub mod check;
pub mod conflict;
pub mod effects;
pub mod engine;
pub mod env;
pub mod eval;
pub mod functions;
pub mod limits;
pub mod obs;
pub mod par;
pub mod planner;
pub mod server;
pub mod update;

pub use apply::apply_delta;
pub use check::{check_program, Diagnostic, Severity};
pub use conflict::verify_conflict_free;
pub use effects::{Effect, EffectAnalysis};
pub use engine::{Engine, EngineSnapshot, Error};
pub use env::{DynEnv, Focus};
pub use eval::{EvalStats, Evaluator};
pub use limits::{LimitGuard, Limits, TripKind};
pub use obs::{Gauge, MetricsSnapshot, NodeStats, Profile, Registry, TraceSink};
pub use par::{par_safe, threads_from_env, PureCtx, MAX_THREADS, PAR_MIN_ITEMS};
pub use planner::{
    program_fingerprint, CompiledProgram, FunctionExecutor, Planner, SharedPlanCache,
};
pub use server::{
    CommitRecord, ConflictPolicy, RequestKind, Response, Server, ServerConfig, ServerStats, Session,
};
pub use update::{Delta, UpdateRequest};
pub use xqsyn::ast::SnapMode;
