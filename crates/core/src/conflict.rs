//! Conflict detection for update lists (paper §3.2, §4.1).
//!
//! In the *conflict-detection* snap mode, "update application is divided
//! into conflict verification followed by store modification. The first
//! phase tries to prove, by some simple rules, that the update sequence is
//! actually conflict-free, meaning that the ordered application of every
//! permutation of Δ would produce the same result." Verification runs in
//! **linear time using a pair of hash tables over node ids** (§4.1) — that
//! claim is exactly what experiment E2 measures.
//!
//! ## The rules
//!
//! A Δ is conflict-free when none of the following hold:
//!
//! 1. **rename/rename**: two renames of the same node to different names
//!    (last-writer-wins makes the result order-dependent);
//! 2. **insert/insert (same node)**: the same node appears in the payload
//!    of two inserts (whichever applies second fails its parentless
//!    precondition — which one fails depends on order);
//! 3. **insert/insert (same slot)**: two inserts target the same insertion
//!    slot `(parent, anchor)` — the relative order of the two payloads
//!    depends on application order;
//! 4. **delete/anchor**: a node is deleted and also used as the `After`
//!    anchor of an insert (once detached it is no longer a child of the
//!    insertion parent, so one order fails and the other succeeds);
//! 5. **delete/insert (same node)**: a node is both deleted and inserted
//!    (final attachment depends on order).
//!
//! Duplicate deletes are *not* conflicts: detach is idempotent. A rename
//! combined with a delete of the same node commutes (renaming a detached
//! node is legal). As the paper concedes, these rules "rule out many
//! reasonable pieces of code" — e.g. two independent appends to the same
//! log element (rule 3) — which is why ordered mode stays the default.

use crate::update::{Delta, UpdateRequest};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use xqdm::store::InsertAnchor;
use xqdm::{NodeId, QName, XdmError, XdmResult};

/// Per-node write flags — the first of the two hash tables.
#[derive(Debug, Default)]
struct NodeFlags {
    renamed_to: Option<QName>,
    value_set_to: Option<String>,
    deleted: bool,
    inserted: bool,
}

/// An insertion slot — key of the second hash table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Slot {
    First(NodeId),
    Last(NodeId),
    After(NodeId),
}

/// Verify that `delta` is conflict-free. Returns the offending description
/// on conflict. Linear time: one pass, two hash tables.
pub fn verify_conflict_free(delta: &Delta) -> XdmResult<()> {
    let mut node_flags: HashMap<NodeId, NodeFlags> = HashMap::new();
    let mut slots: HashSet<Slot> = HashSet::new();
    // Anchors used by inserts, checked against deletes (rule 4). Kept in the
    // node-flags table conceptually; tracked separately for clarity.
    let mut anchors_used: HashSet<NodeId> = HashSet::new();

    for req in delta.requests() {
        match req {
            UpdateRequest::Rename { node, name } => {
                let flags = node_flags.entry(*node).or_default();
                match &flags.renamed_to {
                    Some(prev) if prev != name => {
                        return Err(conflict(format!(
                            "node {node} renamed to both \"{prev}\" and \"{name}\""
                        )));
                    }
                    _ => flags.renamed_to = Some(name.clone()),
                }
            }
            UpdateRequest::SetValue { node, value } => {
                // Same shape as rename: two set-values on one node
                // observe application order unless they agree.
                let flags = node_flags.entry(*node).or_default();
                match &flags.value_set_to {
                    Some(prev) if prev != value => {
                        return Err(conflict(format!(
                            "node {node} value set to both \"{prev}\" and \"{value}\""
                        )));
                    }
                    _ => flags.value_set_to = Some(value.clone()),
                }
            }
            UpdateRequest::Delete { node } => {
                let flags = node_flags.entry(*node).or_default();
                flags.deleted = true;
                if flags.inserted {
                    return Err(conflict(format!(
                        "node {node} is both inserted and deleted"
                    )));
                }
                if anchors_used.contains(node) {
                    return Err(conflict(format!(
                        "node {node} is deleted and used as an insertion anchor"
                    )));
                }
            }
            UpdateRequest::InsertAttributes { nodes, element } => {
                // Attribute order is insignificant (XDM), so two attribute
                // insertions on one element commute; only the payload-node
                // rules apply. (A duplicate attribute *name* fails in every
                // order — a uniform failure, not an order dependence.)
                let _ = element;
                for n in nodes {
                    match node_flags.entry(*n) {
                        Entry::Occupied(mut e) => {
                            let flags = e.get_mut();
                            if flags.inserted {
                                return Err(conflict(format!("node {n} inserted twice")));
                            }
                            if flags.deleted {
                                return Err(conflict(format!(
                                    "node {n} is both inserted and deleted"
                                )));
                            }
                            flags.inserted = true;
                        }
                        Entry::Vacant(e) => {
                            e.insert(NodeFlags {
                                inserted: true,
                                ..Default::default()
                            });
                        }
                    }
                }
            }
            UpdateRequest::Insert {
                nodes,
                parent,
                anchor,
            } => {
                let slot = match anchor {
                    InsertAnchor::First => Slot::First(*parent),
                    InsertAnchor::Last => Slot::Last(*parent),
                    InsertAnchor::After(pos) => Slot::After(*pos),
                };
                if !slots.insert(slot) {
                    return Err(conflict(format!(
                        "two inserts target the same slot under {parent}"
                    )));
                }
                if let InsertAnchor::After(pos) = anchor {
                    anchors_used.insert(*pos);
                    if node_flags.get(pos).map(|f| f.deleted).unwrap_or(false) {
                        return Err(conflict(format!(
                            "node {pos} is deleted and used as an insertion anchor"
                        )));
                    }
                }
                for n in nodes {
                    match node_flags.entry(*n) {
                        Entry::Occupied(mut e) => {
                            let flags = e.get_mut();
                            if flags.inserted {
                                return Err(conflict(format!("node {n} inserted twice")));
                            }
                            if flags.deleted {
                                return Err(conflict(format!(
                                    "node {n} is both inserted and deleted"
                                )));
                            }
                            flags.inserted = true;
                        }
                        Entry::Vacant(e) => {
                            e.insert(NodeFlags {
                                inserted: true,
                                ..Default::default()
                            });
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

fn conflict(msg: String) -> XdmError {
    XdmError::new("XQB0010", format!("update conflict: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqdm::Store;

    fn setup() -> (Store, NodeId, NodeId, NodeId) {
        let mut s = Store::new();
        let p = s.new_element(QName::local("p"));
        let a = s.new_element(QName::local("a"));
        let b = s.new_element(QName::local("b"));
        s.append_child(p, a).unwrap();
        s.append_child(p, b).unwrap();
        (s, p, a, b)
    }

    fn ins(nodes: Vec<NodeId>, parent: NodeId, anchor: InsertAnchor) -> UpdateRequest {
        UpdateRequest::Insert {
            nodes,
            parent,
            anchor,
        }
    }

    #[test]
    fn disjoint_updates_are_conflict_free() {
        let (_, p, a, b) = setup();
        let d: Delta = vec![
            UpdateRequest::Rename {
                node: a,
                name: QName::local("x"),
            },
            UpdateRequest::Delete { node: b },
            ins(vec![], p, InsertAnchor::First),
        ]
        .into_iter()
        .collect();
        assert!(verify_conflict_free(&d).is_ok());
    }

    #[test]
    fn double_rename_same_name_ok_different_name_conflicts() {
        let (_, _, a, _) = setup();
        let same: Delta = vec![
            UpdateRequest::Rename {
                node: a,
                name: QName::local("x"),
            },
            UpdateRequest::Rename {
                node: a,
                name: QName::local("x"),
            },
        ]
        .into_iter()
        .collect();
        assert!(verify_conflict_free(&same).is_ok());
        let diff: Delta = vec![
            UpdateRequest::Rename {
                node: a,
                name: QName::local("x"),
            },
            UpdateRequest::Rename {
                node: a,
                name: QName::local("y"),
            },
        ]
        .into_iter()
        .collect();
        assert!(verify_conflict_free(&diff).is_err());
    }

    #[test]
    fn double_delete_is_idempotent_not_conflict() {
        let (_, _, a, _) = setup();
        let d: Delta = vec![
            UpdateRequest::Delete { node: a },
            UpdateRequest::Delete { node: a },
        ]
        .into_iter()
        .collect();
        assert!(verify_conflict_free(&d).is_ok());
    }

    #[test]
    fn rename_plus_delete_commutes() {
        let (_, _, a, _) = setup();
        let d: Delta = vec![
            UpdateRequest::Rename {
                node: a,
                name: QName::local("x"),
            },
            UpdateRequest::Delete { node: a },
        ]
        .into_iter()
        .collect();
        assert!(verify_conflict_free(&d).is_ok());
    }

    #[test]
    fn same_slot_inserts_conflict() {
        let (mut s, p, a, _) = setup();
        let n1 = s.new_element(QName::local("n1"));
        let n2 = s.new_element(QName::local("n2"));
        // Two appends to the same parent: the paper's "reasonable code"
        // that conflict detection nevertheless rules out.
        let d: Delta = vec![
            ins(vec![n1], p, InsertAnchor::Last),
            ins(vec![n2], p, InsertAnchor::Last),
        ]
        .into_iter()
        .collect();
        assert!(verify_conflict_free(&d).is_err());
        // Different slots are fine.
        let d2: Delta = vec![
            ins(vec![n1], p, InsertAnchor::First),
            ins(vec![n2], p, InsertAnchor::After(a)),
        ]
        .into_iter()
        .collect();
        assert!(verify_conflict_free(&d2).is_ok());
    }

    #[test]
    fn node_inserted_twice_conflicts() {
        let (mut s, p, a, _) = setup();
        let n = s.new_element(QName::local("n"));
        let d: Delta = vec![
            ins(vec![n], p, InsertAnchor::First),
            ins(vec![n], p, InsertAnchor::After(a)),
        ]
        .into_iter()
        .collect();
        assert!(verify_conflict_free(&d).is_err());
    }

    #[test]
    fn delete_of_anchor_conflicts_in_both_orders() {
        let (mut s, p, a, _) = setup();
        let n = s.new_element(QName::local("n"));
        let d: Delta = vec![
            UpdateRequest::Delete { node: a },
            ins(vec![n], p, InsertAnchor::After(a)),
        ]
        .into_iter()
        .collect();
        assert!(verify_conflict_free(&d).is_err());
        let d2: Delta = vec![
            ins(vec![n], p, InsertAnchor::After(a)),
            UpdateRequest::Delete { node: a },
        ]
        .into_iter()
        .collect();
        assert!(verify_conflict_free(&d2).is_err());
    }

    #[test]
    fn insert_and_delete_of_same_node_conflicts() {
        let (mut s, p, _, _) = setup();
        let n = s.new_element(QName::local("n"));
        let d: Delta = vec![
            ins(vec![n], p, InsertAnchor::First),
            UpdateRequest::Delete { node: n },
        ]
        .into_iter()
        .collect();
        assert!(verify_conflict_free(&d).is_err());
    }
}
