//! The side-effect judgment (paper §4.2, §5).
//!
//! "A number of the syntactic rewritings must be guarded by a judgment
//! which detects whether side effects occur in a given subexpression."
//! This module computes, for every expression and declared function, where
//! it sits on the effect lattice:
//!
//! ```text
//! Pure  ⊑  Alloc  ⊑  Pending  ⊑  Effectful
//! ```
//!
//! * **Pure** — no store interaction at all; freely reorderable.
//! * **Alloc** — only allocates new nodes (constructors, `copy`). The paper
//!   notes such evaluations "can still be commuted or interleaved".
//! * **Pending** — produces update requests but applies none: "an
//!   expression which just produces update requests, without applying
//!   them, is actually side-effect free, hence can be evaluated with the
//!   same approaches used to evaluate pure functional expressions" (§3.4).
//!   Order of Δ still matters under the ordered snap mode, and cardinality
//!   always matters.
//! * **Effectful** — contains a `snap` (or calls a function that may
//!   execute one): the store can change mid-evaluation, and the strict
//!   left-to-right order is binding.
//!
//! Function effects need a fixpoint over the call graph (recursive
//! functions; the paper's "monadic rule": a function that calls an
//! updating function is updating as well).

use std::collections::HashMap;
use xqsyn::core::{Core, CoreFunction, CoreProgram};

/// The effect lattice (derives `Ord`: variants are declared bottom-up).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effect {
    /// No store interaction.
    Pure,
    /// Allocates nodes but neither requests nor applies updates.
    Alloc,
    /// Produces pending update requests, applies none.
    Pending,
    /// May apply updates (contains / reaches a `snap`).
    Effectful,
}

impl Effect {
    /// Join (least upper bound).
    pub fn join(self, other: Effect) -> Effect {
        self.max(other)
    }

    /// May this expression be re-evaluated with different cardinality
    /// without changing observable behaviour? True only when no update
    /// requests are produced.
    pub fn cardinality_safe(self) -> bool {
        self <= Effect::Alloc
    }

    /// Is evaluation order unconstrained (the paper's "inside an innermost
    /// snap ... both the pure subexpressions and the update operations can
    /// be evaluated in any order", as long as Δ order is reassembled)?
    pub fn order_free(self) -> bool {
        self < Effect::Effectful
    }
}

/// Effect analysis over a program: computes per-function effects by
/// fixpoint, then answers queries about arbitrary expressions.
pub struct EffectAnalysis {
    functions: HashMap<(String, usize), Effect>,
}

impl EffectAnalysis {
    /// Analyze a program's function declarations to a fixpoint.
    pub fn new(program: &CoreProgram) -> Self {
        Self::for_functions(&program.functions)
    }

    /// Analyze an explicit function set to a fixpoint — the evaluator uses
    /// this for its registered-function table, which may hold module
    /// functions beyond any single program's declarations.
    pub fn for_functions<'a, I>(funcs: I) -> Self
    where
        I: IntoIterator<Item = &'a CoreFunction>,
    {
        let funcs: Vec<&CoreFunction> = funcs.into_iter().collect();
        let mut functions: HashMap<(String, usize), Effect> = funcs
            .iter()
            .map(|f| ((f.name.clone(), f.params.len()), Effect::Pure))
            .collect();
        // Kleene iteration: effects only grow, the lattice has height 4,
        // so this terminates quickly.
        loop {
            let mut changed = false;
            for f in &funcs {
                let key = (f.name.clone(), f.params.len());
                let e = effect_with(&f.body, &functions);
                let cur = functions.get_mut(&key).expect("registered");
                if e > *cur {
                    *cur = e;
                    changed = true;
                }
            }
            if !changed {
                return EffectAnalysis { functions };
            }
        }
    }

    /// An analysis with no user functions.
    pub fn empty() -> Self {
        EffectAnalysis {
            functions: HashMap::new(),
        }
    }

    /// The effect of an expression under this program's functions.
    pub fn effect(&self, expr: &Core) -> Effect {
        effect_with(expr, &self.functions)
    }

    /// The effect of a declared function.
    pub fn function_effect(&self, name: &str, arity: usize) -> Option<Effect> {
        self.functions.get(&(name.to_string(), arity)).copied()
    }
}

/// Structural effect computation given current function assumptions.
fn effect_with(expr: &Core, funcs: &HashMap<(String, usize), Effect>) -> Effect {
    let mut acc = match expr {
        Core::Const(_) | Core::Var(_) | Core::ContextItem => Effect::Pure,
        Core::ElemCtor { .. }
        | Core::AttrCtor { .. }
        | Core::TextCtor(_)
        | Core::DocCtor(_)
        | Core::Copy(_) => Effect::Alloc,
        Core::Insert { .. }
        | Core::Delete(_)
        | Core::Replace(..)
        | Core::ReplaceValue(..)
        | Core::Rename(..) => Effect::Pending,
        Core::Snap(_, body) => {
            // A snap *applies* its body's pending updates. If the body can't
            // produce any, the snap applies an empty Δ and is as benign as
            // its body.
            let b = effect_with(body, funcs);
            return if b >= Effect::Pending {
                Effect::Effectful
            } else {
                b
            };
        }
        Core::Call(name, args) => {
            let base = if crate::functions::is_builtin(name) {
                // Built-ins never touch the store beyond reading;
                // constructor-ish ones don't allocate nodes either.
                Effect::Pure
            } else {
                funcs
                    .get(&(name.clone(), args.len()))
                    .copied()
                    // Unknown function: assume the worst (e.g. a module
                    // boundary without an updating flag — §5 argues such
                    // flags belong in signatures; absent one we stay sound).
                    .unwrap_or(Effect::Effectful)
            };
            let mut e = base;
            for a in args {
                e = e.join(effect_with(a, funcs));
            }
            return e;
        }
        _ => Effect::Pure,
    };
    expr.for_each_child(|c| acc = acc.join(effect_with(c, funcs)));
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqsyn::compile;

    fn body_effect(src: &str) -> Effect {
        let prog = compile(src).expect("compile");
        EffectAnalysis::new(&prog).effect(&prog.body)
    }

    #[test]
    fn literals_and_paths_are_pure() {
        assert_eq!(body_effect("1 + 2"), Effect::Pure);
        assert_eq!(body_effect("$x//person[@id = 3]"), Effect::Pure);
        assert_eq!(body_effect("for $x in $s return count($x)"), Effect::Pure);
    }

    #[test]
    fn constructors_allocate() {
        assert_eq!(body_effect("<a/>"), Effect::Alloc);
        assert_eq!(body_effect("element foo { 1 }"), Effect::Alloc);
        assert_eq!(body_effect("copy { $x }"), Effect::Alloc);
    }

    #[test]
    fn updates_are_pending() {
        assert_eq!(body_effect("insert { <a/> } into { $x }"), Effect::Pending);
        assert_eq!(body_effect("delete { $x }"), Effect::Pending);
        assert_eq!(
            body_effect("for $i in 1 to 3 return insert { <a/> } into { $x }"),
            Effect::Pending
        );
    }

    #[test]
    fn snap_makes_updates_effectful() {
        assert_eq!(body_effect("snap { delete { $x } }"), Effect::Effectful);
        // ...but a snap over pure code is harmless.
        assert_eq!(body_effect("snap { 1 + 2 }"), Effect::Pure);
        assert_eq!(body_effect("snap { <a/> }"), Effect::Alloc);
    }

    #[test]
    fn function_effects_propagate_monadically() {
        // The paper's rule: "a function that calls an updating function is
        // updating as well."
        let prog = compile(
            r#"
            declare function upd() { snap delete { $x } };
            declare function wrapper() { upd() };
            declare function pure() { 1 + 1 };
            wrapper()"#,
        )
        .unwrap();
        let a = EffectAnalysis::new(&prog);
        assert_eq!(a.function_effect("upd", 0), Some(Effect::Effectful));
        assert_eq!(a.function_effect("wrapper", 0), Some(Effect::Effectful));
        assert_eq!(a.function_effect("pure", 0), Some(Effect::Pure));
        assert_eq!(a.effect(&prog.body), Effect::Effectful);
    }

    #[test]
    fn recursive_functions_reach_fixpoint() {
        let prog = compile(
            r#"
            declare function even($n) { if ($n = 0) then true() else odd($n - 1) };
            declare function odd($n) { if ($n = 0) then false() else even($n - 1) };
            even(4)"#,
        )
        .unwrap();
        let a = EffectAnalysis::new(&prog);
        assert_eq!(a.function_effect("even", 1), Some(Effect::Pure));
        // Mutual recursion with an update somewhere.
        let prog2 = compile(
            r#"
            declare function f($n) { if ($n = 0) then () else g($n - 1) };
            declare function g($n) { (delete { $x }, f($n - 1)) };
            f(3)"#,
        )
        .unwrap();
        let a2 = EffectAnalysis::new(&prog2);
        assert_eq!(a2.function_effect("f", 1), Some(Effect::Pending));
        assert_eq!(a2.function_effect("g", 1), Some(Effect::Pending));
    }

    #[test]
    fn unknown_functions_assumed_effectful() {
        let a = EffectAnalysis::empty();
        let prog = compile("mystery(1)").unwrap();
        assert_eq!(a.effect(&prog.body), Effect::Effectful);
    }

    #[test]
    fn lattice_properties() {
        assert!(Effect::Pure < Effect::Alloc);
        assert!(Effect::Alloc < Effect::Pending);
        assert!(Effect::Pending < Effect::Effectful);
        assert!(Effect::Alloc.cardinality_safe());
        assert!(!Effect::Pending.cardinality_safe());
        assert!(Effect::Pending.order_free());
        assert!(!Effect::Effectful.order_free());
    }
}
