//! Static checking (the paper's §5 direction: "a bit of typing would be
//! useful: the signature of functions ... should contain an updating
//! flag").
//!
//! XQuery! is dynamically typed over well-formed data, but a host still
//! wants errors before evaluation: undefined variables and functions,
//! arity mismatches, duplicate declarations — plus the effect-related
//! lints this paper motivates: flagging *updating* functions and warning
//! where an applied effect (`snap`) hides in a position whose evaluation
//! order users rarely think about (path predicates, `order by` keys,
//! quantifier conditions).

use crate::effects::{Effect, EffectAnalysis};
use crate::functions;
use std::collections::{HashMap, HashSet};
use xqsyn::core::{Core, CoreProgram};

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Evaluation would fail.
    Error,
    /// Legal but suspicious.
    Warning,
}

/// One static-check finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity.
    pub severity: Severity,
    /// Stable machine code (XQuery codes where one fits).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    fn error(code: &'static str, message: String) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            message,
        }
    }

    fn warning(code: &'static str, message: String) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code,
            message,
        }
    }
}

/// Statically check a program. `host_vars` are the variables the host
/// promises to bind before running (e.g. loaded documents).
pub fn check_program(program: &CoreProgram, host_vars: &[&str]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let analysis = EffectAnalysis::new(program);

    // Declared functions, with duplicate detection.
    let mut declared: HashMap<(String, usize), usize> = HashMap::new();
    for f in &program.functions {
        *declared
            .entry((f.name.clone(), f.params.len()))
            .or_insert(0) += 1;
    }
    for ((name, arity), count) in &declared {
        if *count > 1 {
            diags.push(Diagnostic::error(
                "XQST0034",
                format!("function {name}#{arity} declared {count} times"),
            ));
        }
        if functions::is_builtin(name) {
            diags.push(Diagnostic::warning(
                "XQB0103",
                format!("declared function {name}#{arity} shadows a built-in"),
            ));
        }
    }

    // Duplicate global variables.
    let mut seen_vars = HashSet::new();
    for (name, _) in &program.variables {
        if !seen_vars.insert(name.clone()) {
            diags.push(Diagnostic::error(
                "XQST0049",
                format!("variable ${name} declared more than once"),
            ));
        }
    }

    // Updating-flag report (§5): informational warnings for functions that
    // apply effects.
    for f in &program.functions {
        if analysis.function_effect(&f.name, f.params.len()) == Some(Effect::Effectful) {
            diags.push(Diagnostic::warning(
                "XQB0100",
                format!(
                    "function {}#{} is updating (applies effects via snap)",
                    f.name,
                    f.params.len()
                ),
            ));
        }
    }

    // Scope/arity/effect checks per expression.
    let mut globals: HashSet<String> = host_vars.iter().map(|s| s.to_string()).collect();
    let cx = Context {
        declared: &declared,
        analysis: &analysis,
    };
    for f in &program.functions {
        let mut scope: Vec<String> = f.params.clone();
        // Function bodies see parameters + globals (all declared globals:
        // declaration order is not enforced for function bodies, matching
        // the evaluator, which resolves globals at call time).
        let mut fglobals = globals.clone();
        for (name, _) in &program.variables {
            fglobals.insert(name.clone());
        }
        check_expr(&f.body, &mut scope, &fglobals, &cx, &mut diags);
    }
    for (name, init) in &program.variables {
        check_expr(init, &mut Vec::new(), &globals, &cx, &mut diags);
        globals.insert(name.clone());
    }
    check_expr(&program.body, &mut Vec::new(), &globals, &cx, &mut diags);
    diags
}

struct Context<'a> {
    declared: &'a HashMap<(String, usize), usize>,
    analysis: &'a EffectAnalysis,
}

fn check_expr(
    expr: &Core,
    scope: &mut Vec<String>,
    globals: &HashSet<String>,
    cx: &Context<'_>,
    diags: &mut Vec<Diagnostic>,
) {
    match expr {
        Core::Var(name) => {
            if !scope.iter().any(|v| v == name) && !globals.contains(name) {
                diags.push(Diagnostic::error(
                    "XPST0008",
                    format!("undefined variable ${name}"),
                ));
            }
        }
        Core::Call(name, args) => {
            if !functions::is_builtin(name)
                && !cx.declared.contains_key(&(name.clone(), args.len()))
            {
                let other_arities: Vec<usize> = cx
                    .declared
                    .keys()
                    .filter(|(n, _)| n == name)
                    .map(|(_, a)| *a)
                    .collect();
                let hint = if other_arities.is_empty() {
                    String::new()
                } else {
                    format!(" (declared with arity {other_arities:?})")
                };
                diags.push(Diagnostic::error(
                    "XPST0017",
                    format!("undefined function {name}#{}{hint}", args.len()),
                ));
            }
            for a in args {
                check_expr(a, scope, globals, cx, diags);
            }
        }
        Core::For {
            var,
            position,
            source,
            body,
        } => {
            check_expr(source, scope, globals, cx, diags);
            scope.push(var.clone());
            if let Some(p) = position {
                scope.push(p.clone());
            }
            check_expr(body, scope, globals, cx, diags);
            if position.is_some() {
                scope.pop();
            }
            scope.pop();
        }
        Core::Let { var, value, body } => {
            check_expr(value, scope, globals, cx, diags);
            scope.push(var.clone());
            check_expr(body, scope, globals, cx, diags);
            scope.pop();
        }
        Core::Quantified {
            var,
            source,
            satisfies,
            ..
        } => {
            check_expr(source, scope, globals, cx, diags);
            if cx.analysis.effect(satisfies) == Effect::Effectful {
                diags.push(Diagnostic::warning(
                    "XQB0101",
                    "quantifier condition applies effects; short-circuiting makes the \
                     number of applications data-dependent"
                        .to_string(),
                ));
            }
            scope.push(var.clone());
            check_expr(satisfies, scope, globals, cx, diags);
            scope.pop();
        }
        Core::SortedFor {
            var,
            source,
            keys,
            body,
        } => {
            check_expr(source, scope, globals, cx, diags);
            scope.push(var.clone());
            for k in keys {
                check_expr(&k.key, scope, globals, cx, diags);
            }
            check_expr(body, scope, globals, cx, diags);
            scope.pop();
        }
        Core::MapStep {
            base, predicates, ..
        } => {
            check_expr(base, scope, globals, cx, diags);
            for p in predicates {
                if cx.analysis.effect(p) == Effect::Effectful {
                    diags.push(Diagnostic::warning(
                        "XQB0102",
                        "path predicate applies effects (snap); it runs once per \
                         candidate node in document order"
                            .to_string(),
                    ));
                }
                check_expr(p, scope, globals, cx, diags);
            }
        }
        Core::Predicate { base, pred } => {
            check_expr(base, scope, globals, cx, diags);
            check_expr(pred, scope, globals, cx, diags);
        }
        other => other.for_each_child(|c| check_expr(c, scope, globals, cx, diags)),
    }
}

/// Only the errors from [`check_program`].
pub fn check_errors(program: &CoreProgram, host_vars: &[&str]) -> Vec<Diagnostic> {
    check_program(program, host_vars)
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqsyn::compile;

    fn check(q: &str, hosts: &[&str]) -> Vec<Diagnostic> {
        check_program(&compile(q).expect("compile"), hosts)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_has_no_diagnostics() {
        let d = check(
            "declare function f($x) { $x + 1 }; for $i in 1 to 3 return f($i)",
            &[],
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn undefined_variable_detected() {
        let d = check("$nope + 1", &[]);
        assert_eq!(codes(&d), vec!["XPST0008"]);
        // Host-promised variables are fine.
        assert!(check("$doc//x", &["doc"]).is_empty());
    }

    #[test]
    fn scoping_respected() {
        assert!(check("for $x in (1, 2) return $x", &[]).is_empty());
        // $x out of scope after the loop.
        let d = check("(for $x in (1, 2) return $x, $x)", &[]);
        assert_eq!(codes(&d), vec!["XPST0008"]);
        // Positional variable in scope.
        assert!(check("for $x at $i in (1, 2) return $i", &[]).is_empty());
    }

    #[test]
    fn undefined_function_with_arity_hint() {
        let d = check("declare function f($a) { $a }; f(1, 2)", &[]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "XPST0017");
        assert!(d[0].message.contains("arity [1]"), "{}", d[0].message);
    }

    #[test]
    fn duplicate_declarations() {
        let d = check(
            "declare function f() { 1 }; declare function f() { 2 }; f()",
            &[],
        );
        assert!(codes(&d).contains(&"XQST0034"));
        let d = check(
            "declare variable $v := 1; declare variable $v := 2; $v",
            &[],
        );
        assert!(codes(&d).contains(&"XQST0049"));
    }

    #[test]
    fn builtin_shadowing_warns() {
        let d = check("declare function count($x) { 0 }; count(())", &[]);
        assert!(codes(&d).contains(&"XQB0103"));
    }

    #[test]
    fn updating_functions_flagged() {
        let d = check(
            "declare function log_it() { snap insert { <l/> } into { $t } }; log_it()",
            &["t"],
        );
        assert!(codes(&d).contains(&"XQB0100"));
        // Pending-only functions are not "updating" in the §5 sense.
        let d = check(
            "declare function req() { insert { <l/> } into { $t } }; snap { req() }",
            &["t"],
        );
        assert!(!codes(&d).contains(&"XQB0100"), "{d:?}");
    }

    #[test]
    fn effectful_predicate_warns() {
        let d = check("$doc//x[snap delete { . }]", &["doc"]);
        assert!(codes(&d).contains(&"XQB0102"));
        // Pending updates in predicates do not warn (they are effect-free).
        let d = check("$doc//x[(delete { . }, true())]", &["doc"]);
        assert!(!codes(&d).contains(&"XQB0102"));
    }

    #[test]
    fn effectful_quantifier_condition_warns() {
        let d = check(
            "some $x in $doc//e satisfies (snap delete { $x }, true())",
            &["doc"],
        );
        assert!(codes(&d).contains(&"XQB0101"));
    }

    #[test]
    fn function_bodies_see_all_globals() {
        // f references $later, declared after it: legal (resolved at call
        // time), so no diagnostic.
        let d = check(
            "declare function f() { $later };
             declare variable $later := 1;
             f()",
            &[],
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn check_errors_filters_warnings() {
        let e = check_errors(
            &compile("declare function count($x) { $nope }; 1").unwrap(),
            &[],
        );
        assert_eq!(codes(&e), vec!["XPST0008"]);
    }
}
