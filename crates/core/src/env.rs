//! The dynamic context (`dynEnv` in the paper's judgment).
//!
//! Holds variable bindings and the evaluation focus (context item, position,
//! size). Bindings use a scoped stack: `push`/`pop` around the evaluation of
//! a binder's body, with lookup walking backwards so inner bindings shadow
//! outer ones — the standard environment discipline for a big-step
//! evaluator.

use xqdm::{Item, Sequence, XdmError, XdmResult};

/// The evaluation focus: context item, 1-based position, and size.
#[derive(Debug, Clone, PartialEq)]
pub struct Focus {
    /// The context item (`.`).
    pub item: Item,
    /// `fn:position()` — 1-based.
    pub position: usize,
    /// `fn:last()`.
    pub size: usize,
}

/// The dynamic environment.
#[derive(Debug, Clone, Default)]
pub struct DynEnv {
    vars: Vec<(String, Sequence)>,
    focus: Vec<Focus>,
}

impl DynEnv {
    /// An empty environment.
    pub fn new() -> Self {
        DynEnv::default()
    }

    /// Bind `name` (shadowing any outer binding). Returns a token the
    /// caller passes to [`DynEnv::pop_var`]; pushes/pops must nest.
    pub fn push_var(&mut self, name: impl Into<String>, value: Sequence) {
        self.vars.push((name.into(), value));
    }

    /// Remove the most recent binding.
    pub fn pop_var(&mut self) {
        self.vars.pop().expect("unbalanced pop_var");
    }

    /// Look up a variable.
    pub fn var(&self, name: &str) -> XdmResult<&Sequence> {
        self.vars
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
            .ok_or_else(|| XdmError::new("XPST0008", format!("undefined variable ${name}")))
    }

    /// Is a variable bound?
    pub fn has_var(&self, name: &str) -> bool {
        self.vars.iter().any(|(n, _)| n == name)
    }

    /// Number of bindings (for balance assertions in tests).
    pub fn depth(&self) -> usize {
        self.vars.len()
    }

    /// Enter a new focus (context item / position / size).
    pub fn push_focus(&mut self, focus: Focus) {
        self.focus.push(focus);
    }

    /// Leave the current focus.
    pub fn pop_focus(&mut self) {
        self.focus.pop().expect("unbalanced pop_focus");
    }

    /// The current focus, if any (XPDY0002 when absent).
    pub fn focus(&self) -> XdmResult<&Focus> {
        self.focus
            .last()
            .ok_or_else(|| XdmError::new("XPDY0002", "context item is undefined here"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadowing_and_restore() {
        let mut env = DynEnv::new();
        env.push_var("x", xqdm::seq![Item::integer(1)]);
        env.push_var("x", xqdm::seq![Item::integer(2)]);
        assert_eq!(env.var("x").unwrap(), &vec![Item::integer(2)]);
        env.pop_var();
        assert_eq!(env.var("x").unwrap(), &vec![Item::integer(1)]);
    }

    #[test]
    fn undefined_variable_errors() {
        let env = DynEnv::new();
        assert_eq!(env.var("nope").unwrap_err().code, "XPST0008");
    }

    #[test]
    fn focus_stack() {
        let mut env = DynEnv::new();
        assert_eq!(env.focus().unwrap_err().code, "XPDY0002");
        env.push_focus(Focus {
            item: Item::integer(1),
            position: 1,
            size: 3,
        });
        env.push_focus(Focus {
            item: Item::integer(2),
            position: 2,
            size: 3,
        });
        assert_eq!(env.focus().unwrap().position, 2);
        env.pop_focus();
        assert_eq!(env.focus().unwrap().position, 1);
    }
}
