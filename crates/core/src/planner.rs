//! The planner seam between the engine and the algebraic compiler.
//!
//! The optimizer lives in `xqalg`, which depends on this crate — so the
//! engine cannot name the compiler's types directly. Instead the engine
//! consumes the optimizer through the object-safe traits below, and the
//! facade crate installs `xqalg`'s implementation into the process-wide
//! registry at startup. When nothing is installed (e.g. `xqcore` used on
//! its own), the engine transparently falls back to pure interpretation.
//!
//! The contract every implementation must honor is the paper's: a compiled
//! program produces **the same value sequence, the same final store, and
//! the same Δ ordering per snap mode** as the interpreted program. The
//! compiler only changes complexity, never semantics — the differential
//! suite (`tests/differential.rs`) enforces this.

use crate::eval::Evaluator;
use std::sync::{Arc, OnceLock};
use xqdm::item::Sequence;
use xqdm::{Store, XdmResult};
use xqsyn::CoreProgram;

/// A program compiled to an executable plan. Execution drives the given
/// evaluator (its Δ-stack, snap-seed counter, globals, and statistics), so
/// compiled and interpreted subtrees share one store/Δ discipline.
pub trait CompiledProgram: Send + Sync {
    /// Run the plan: prolog variables first, then the body, inside the
    /// implicit top-level snap — the compiled counterpart of
    /// [`Evaluator::eval_program`].
    fn execute(&self, evaluator: &mut Evaluator, store: &mut Store) -> XdmResult<Sequence>;

    /// The paper-style plan printout with effect annotations.
    fn explain(&self) -> String;

    /// Did any rewrite fire anywhere in the program (body, prolog
    /// variable, or declared function)?
    fn is_optimized(&self) -> bool;

    /// The plan printout annotated with live per-node counters from an
    /// analyzed run (`Engine::explain_analyze`). The default — for
    /// implementations predating observability — falls back to the plain
    /// printout.
    fn explain_analyzed(&self, profile: &crate::obs::Profile) -> String {
        let _ = profile;
        self.explain()
    }

    /// Cross-check a captured profile against this plan's shape (node-id
    /// assignment, parent/child call and cardinality relations). Used by
    /// the obs-invariants suite; the default accepts anything.
    fn verify_profile(&self, profile: &crate::obs::Profile) -> Result<(), String> {
        let _ = profile;
        Ok(())
    }
}

/// A plan compiler: turns a core program into an executable plan.
pub trait Planner: Send + Sync {
    /// Compile `program` (including its declared functions) to a plan.
    fn plan(&self, program: &CoreProgram) -> Arc<dyn CompiledProgram>;

    /// Compile `program` to a *structural* plan: the operator tree mirrors
    /// the interpreter's evaluation shape one-for-one (no join recognition,
    /// no rewrites), so an analyzed interpreted run reports per-node
    /// counters for exactly the operators interpretation would execute.
    /// The default — for planners predating observability — returns the
    /// optimized plan.
    fn plan_structural(&self, program: &CoreProgram) -> Arc<dyn CompiledProgram> {
        self.plan(program)
    }
}

/// Executes calls to user-declared functions whose bodies compiled to an
/// optimized plan. The evaluator consults this hook after built-in
/// dispatch and before falling back to interpreting the declaration.
pub trait FunctionExecutor: Send + Sync {
    /// Try to run `name(args)` as a compiled plan. Returns `Err(args)` —
    /// handing the (already evaluated) arguments back — when this executor
    /// has no plan for that function, so the caller can interpret it.
    fn try_call(
        &self,
        evaluator: &mut Evaluator,
        store: &mut Store,
        name: &str,
        args: Vec<Sequence>,
    ) -> Result<XdmResult<Sequence>, Vec<Sequence>>;
}

static DEFAULT_PLANNER: OnceLock<Arc<dyn Planner>> = OnceLock::new();

/// Install the process-wide default planner. The first installation wins;
/// later calls are no-ops (installation is idempotent by design — every
/// facade `Engine::new()` calls this).
pub fn install(planner: Arc<dyn Planner>) {
    let _ = DEFAULT_PLANNER.set(planner);
}

/// The installed default planner, if any.
pub fn default_planner() -> Option<Arc<dyn Planner>> {
    DEFAULT_PLANNER.get().cloned()
}

/// The fallback "plan" rendering used when no planner is installed: the
/// whole program is one `Iterate` under the implicit snap.
pub fn render_unoptimized(program: &CoreProgram) -> String {
    format!("Snap {{\n  Iterate {{ {} }}\n}}", program.body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_unoptimized_shows_iterate_under_snap() {
        let program = xqsyn::compile("1 + 2").unwrap();
        let s = render_unoptimized(&program);
        assert!(s.starts_with("Snap {"));
        assert!(s.contains("Iterate"));
    }
}
