//! The planner seam between the engine and the algebraic compiler.
//!
//! The optimizer lives in `xqalg`, which depends on this crate — so the
//! engine cannot name the compiler's types directly. Instead the engine
//! consumes the optimizer through the object-safe traits below, and the
//! facade crate installs `xqalg`'s implementation into the process-wide
//! registry at startup. When nothing is installed (e.g. `xqcore` used on
//! its own), the engine transparently falls back to pure interpretation.
//!
//! The contract every implementation must honor is the paper's: a compiled
//! program produces **the same value sequence, the same final store, and
//! the same Δ ordering per snap mode** as the interpreted program. The
//! compiler only changes complexity, never semantics — the differential
//! suite (`tests/differential.rs`) enforces this.

use crate::eval::Evaluator;
use std::sync::{Arc, OnceLock};
use xqdm::item::Sequence;
use xqdm::{Store, XdmResult};
use xqsyn::CoreProgram;

/// A program compiled to an executable plan. Execution drives the given
/// evaluator (its Δ-stack, snap-seed counter, globals, and statistics), so
/// compiled and interpreted subtrees share one store/Δ discipline.
pub trait CompiledProgram: Send + Sync {
    /// Run the plan: prolog variables first, then the body, inside the
    /// implicit top-level snap — the compiled counterpart of
    /// [`Evaluator::eval_program`].
    fn execute(&self, evaluator: &mut Evaluator, store: &mut Store) -> XdmResult<Sequence>;

    /// The paper-style plan printout with effect annotations.
    fn explain(&self) -> String;

    /// Did any rewrite fire anywhere in the program (body, prolog
    /// variable, or declared function)?
    fn is_optimized(&self) -> bool;

    /// The plan printout annotated with live per-node counters from an
    /// analyzed run (`Engine::explain_analyze`). The default — for
    /// implementations predating observability — falls back to the plain
    /// printout.
    fn explain_analyzed(&self, profile: &crate::obs::Profile) -> String {
        let _ = profile;
        self.explain()
    }

    /// Cross-check a captured profile against this plan's shape (node-id
    /// assignment, parent/child call and cardinality relations). Used by
    /// the obs-invariants suite; the default accepts anything.
    fn verify_profile(&self, profile: &crate::obs::Profile) -> Result<(), String> {
        let _ = profile;
        Ok(())
    }
}

/// Store facts the planner may exploit (but must degrade without): the
/// engine snapshots these from the target store at plan time, and folds
/// them into the plan-cache key so a plan is only ever reused against a
/// store state it was compiled for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanOptions {
    /// Is the store's secondary-index plane available? When true the
    /// compiler may emit `,idx` scan hints (ISSUE 10); when false every
    /// path chain lowers to the plain batch kernels.
    pub index_available: bool,
}

/// A plan compiler: turns a core program into an executable plan.
pub trait Planner: Send + Sync {
    /// Compile `program` (including its declared functions) to a plan.
    fn plan(&self, program: &CoreProgram) -> Arc<dyn CompiledProgram>;

    /// Compile `program` under explicit [`PlanOptions`]. The default —
    /// for planners predating the index plane — ignores the options.
    fn plan_opts(&self, program: &CoreProgram, opts: &PlanOptions) -> Arc<dyn CompiledProgram> {
        let _ = opts;
        self.plan(program)
    }

    /// Compile `program` to a *structural* plan: the operator tree mirrors
    /// the interpreter's evaluation shape one-for-one (no join recognition,
    /// no rewrites), so an analyzed interpreted run reports per-node
    /// counters for exactly the operators interpretation would execute.
    /// The default — for planners predating observability — returns the
    /// optimized plan.
    fn plan_structural(&self, program: &CoreProgram) -> Arc<dyn CompiledProgram> {
        self.plan(program)
    }
}

/// Executes calls to user-declared functions whose bodies compiled to an
/// optimized plan. The evaluator consults this hook after built-in
/// dispatch and before falling back to interpreting the declaration.
pub trait FunctionExecutor: Send + Sync {
    /// Try to run `name(args)` as a compiled plan. Returns `Err(args)` —
    /// handing the (already evaluated) arguments back — when this executor
    /// has no plan for that function, so the caller can interpret it.
    fn try_call(
        &self,
        evaluator: &mut Evaluator,
        store: &mut Store,
        name: &str,
        args: Vec<Sequence>,
    ) -> Result<XdmResult<Sequence>, Vec<Sequence>>;
}

/// Fingerprint a program for the plan caches by streaming its debug
/// representation through two independently-seeded hashers — no
/// allocation of the full repr, and 128 bits make accidental collisions
/// (which would silently run the wrong plan) implausible. `Core` holds
/// `f64` literals, so it cannot derive `Hash` directly.
pub fn program_fingerprint(program: &CoreProgram) -> (u64, u64) {
    use std::collections::hash_map::DefaultHasher;
    use std::fmt::Write as _;
    use std::hash::Hasher as _;

    struct HashWriter<'a>(&'a mut DefaultHasher);
    impl std::fmt::Write for HashWriter<'_> {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            self.0.write(s.as_bytes());
            Ok(())
        }
    }

    let mut h1 = DefaultHasher::new();
    let mut h2 = DefaultHasher::new();
    h2.write_u64(0x9e37_79b9_7f4a_7c15);
    let _ = write!(HashWriter(&mut h1), "{program:?}");
    let _ = write!(HashWriter(&mut h2), "{program:?}");
    (h1.finish(), h2.finish())
}

/// The most plans a [`SharedPlanCache`] keeps before it is wholesale
/// cleared. A server's query workload repeats a bounded set of programs;
/// an unbounded cache would leak under ad-hoc query streams. Larger than
/// the per-engine cap because many sessions share this one.
pub const SHARED_PLAN_CACHE_CAP: usize = 256;

/// A thread-safe, fingerprint-keyed plan cache shared across sessions
/// (ISSUE 8): every session — the serialized write path and each
/// concurrent snapshot reader — consults the same map, so a query planned
/// by one session is a cache hit for every other. Plans are immutable
/// (`Arc<dyn CompiledProgram>`, `Send + Sync`), so sharing them across
/// threads is free of locking beyond the map probe itself.
#[derive(Default)]
pub struct SharedPlanCache {
    plans: std::sync::Mutex<std::collections::HashMap<(u64, u64), Arc<dyn CompiledProgram>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl SharedPlanCache {
    /// A fresh, empty shared cache.
    pub fn new() -> Arc<SharedPlanCache> {
        Arc::new(SharedPlanCache::default())
    }

    /// The plan for `key`, counting a hit or a miss.
    pub fn get(&self, key: (u64, u64)) -> Option<Arc<dyn CompiledProgram>> {
        use std::sync::atomic::Ordering;
        let plans = self.plans.lock().unwrap_or_else(|e| e.into_inner());
        match plans.get(&key) {
            Some(plan) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(plan.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Install the plan for `key` (idempotent: concurrent planners of the
    /// same program insert identical plans; first wins).
    pub fn insert(&self, key: (u64, u64), plan: Arc<dyn CompiledProgram>) {
        let mut plans = self.plans.lock().unwrap_or_else(|e| e.into_inner());
        if plans.len() >= SHARED_PLAN_CACHE_CAP {
            plans.clear();
        }
        plans.entry(key).or_insert(plan);
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering;
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

static DEFAULT_PLANNER: OnceLock<Arc<dyn Planner>> = OnceLock::new();

/// Install the process-wide default planner. The first installation wins;
/// later calls are no-ops (installation is idempotent by design — every
/// facade `Engine::new()` calls this).
pub fn install(planner: Arc<dyn Planner>) {
    let _ = DEFAULT_PLANNER.set(planner);
}

/// The installed default planner, if any.
pub fn default_planner() -> Option<Arc<dyn Planner>> {
    DEFAULT_PLANNER.get().cloned()
}

/// The fallback "plan" rendering used when no planner is installed: the
/// whole program is one `Iterate` under the implicit snap.
pub fn render_unoptimized(program: &CoreProgram) -> String {
    format!("Snap {{\n  Iterate {{ {} }}\n}}", program.body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_unoptimized_shows_iterate_under_snap() {
        let program = xqsyn::compile("1 + 2").unwrap();
        let s = render_unoptimized(&program);
        assert!(s.starts_with("Snap {"));
        assert!(s.contains("Iterate"));
    }
}
