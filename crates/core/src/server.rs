//! The multi-session server core (DESIGN.md §15, §16): one durable
//! engine, many concurrent sessions, snapshot-isolated reads, optimistic
//! concurrent writers.
//!
//! The concurrency contract:
//!
//! * **Writes validate, then serialize only their commit.** A writer
//!   evaluates against a private fork of its pinned base epoch while
//!   recording its Δ — redo ops plus read/write footprints
//!   ([`xqdm::CapturedDelta`], the paper's conflict-detection snap
//!   semantics lifted across transactions, DESIGN.md §16). At commit the
//!   detector checks the Δ's *read* footprint against the *write*
//!   footprint of every Δ committed since the base epoch: non-conflicting
//!   Δs rebase onto the live engine and commit through the WAL (log order
//!   still equals epoch order); conflicting Δs retry from a fresh
//!   snapshot, bounded by [`ServerConfig::max_retries`], then abort with
//!   the retryable `XQB0052` — or are waived by the
//!   [`ConflictPolicy::LastWriterWins`] reducer when only name/value
//!   aspects collide. Only the validate+rebase step holds the engine
//!   mutex, so write *evaluation* scales with sessions. Programs the
//!   footprint machinery cannot vouch for (nondeterministic or
//!   conflict-detection snaps, par-opaque builtins) fall back to the
//!   fully serialized pessimistic path, as does the whole server when
//!   [`ServerConfig::occ_writers`] is off.
//! * **Reads run concurrently.** A query proven effect-free by the PR-3
//!   purity judgment ([`Engine::is_read_only`]) pins the latest epoch and
//!   executes against a private fork of that snapshot — it never takes
//!   the engine lock, and commits landing meanwhile cannot move the data
//!   under it. The pin is released when the request finishes; superseded
//!   epochs retire as soon as their last pin drops.
//! * **Admission is bounded.** Opening a session past `max_sessions` is
//!   rejected with `XQB0050`; a request past `max_inflight` concurrent
//!   requests is rejected with `XQB0051` (backpressure — the client
//!   retries, the server never queues unboundedly).
//!
//! Sessions share one fingerprint-keyed [`SharedPlanCache`], so a query
//! planned by any session is a plan-cache hit for every other. Request
//! accounting lands in the global metrics registry under `server.*`
//! (counters, gauges, latency histograms); [`Server::stats`] reads them
//! back as one struct.

use crate::engine::{Engine, EngineSnapshot, Error};
use crate::limits::Limits;
use crate::obs;
use crate::planner::SharedPlanCache;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use xqdm::footprint::aspect;
use xqdm::{Footprint, VersionSet, XdmError};

/// Session-limit rejection: `open_session` past `max_sessions`.
pub const ERR_SESSIONS: &str = "XQB0050";
/// Backpressure rejection: a request past `max_inflight`.
pub const ERR_BACKPRESSURE: &str = "XQB0051";
/// Commit-conflict rejection (retryable): the Δ's footprint intersected
/// a commit since its base epoch and bounded retry was exhausted.
pub const ERR_CONFLICT: &str = "XQB0052";

/// What to do when a Δ's read footprint intersects a committed write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConflictPolicy {
    /// Retry from a fresh snapshot; abort with `XQB0052` once
    /// [`ServerConfig::max_retries`] is exhausted.
    #[default]
    Abort,
    /// Waive conflicts confined to name/value aspects (rename, text and
    /// attribute-value sets): the later committer's values win, exactly
    /// as if its transaction had run second serially. Structural
    /// conflicts (children/attribute lists, parent links) still retry —
    /// blind last-writer-wins on tree shape would lose subtrees.
    LastWriterWins,
}

impl ConflictPolicy {
    /// Parse a wire/flag token (`abort` / `lww` / `last-writer-wins`).
    pub fn parse(s: &str) -> Option<ConflictPolicy> {
        match s {
            "abort" => Some(ConflictPolicy::Abort),
            "lww" | "last-writer-wins" => Some(ConflictPolicy::LastWriterWins),
            _ => None,
        }
    }

    /// Wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            ConflictPolicy::Abort => "abort",
            ConflictPolicy::LastWriterWins => "lww",
        }
    }
}

/// Server admission and resource policy.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Most sessions open at once (`XQB0050` beyond).
    pub max_sessions: usize,
    /// Most requests in flight at once across all sessions (`XQB0051`
    /// beyond).
    pub max_inflight: usize,
    /// Per-request resource limits (fuel, deadline, depth, memory) —
    /// installed into the writer engine and every reader fork.
    pub limits: Limits,
    /// Worker-thread budget each request may use for effect-free regions.
    pub threads: usize,
    /// Optimistic concurrent writers (DESIGN.md §16). Off: every write
    /// serializes its whole evaluation under the engine mutex (PR-8
    /// behavior).
    pub occ_writers: bool,
    /// Conflict resolution for optimistic commits.
    pub conflict_policy: ConflictPolicy,
    /// Conflicting commits retry from a fresh snapshot this many times
    /// before aborting with `XQB0052`.
    pub max_retries: usize,
    /// Committed write footprints retained for validation. A base epoch
    /// older than the ring's coverage forces a retry (indistinguishable
    /// from a conflict), so this bounds validator memory, not
    /// correctness.
    pub footprint_ring: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 64,
            max_inflight: 32,
            limits: Limits::from_env(),
            threads: crate::par::threads_from_env(),
            occ_writers: true,
            conflict_policy: ConflictPolicy::default(),
            max_retries: 8,
            footprint_ring: 1024,
        }
    }
}

/// How a request was routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Proven pure: ran against a pinned snapshot, engine lock untouched.
    Read,
    /// Possibly effectful: serialized through the engine mutex + WAL.
    Write,
}

impl RequestKind {
    /// Wire token (`read` / `write`).
    pub fn as_str(self) -> &'static str {
        match self {
            RequestKind::Read => "read",
            RequestKind::Write => "write",
        }
    }
}

/// A successful request's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Read or write routing.
    pub kind: RequestKind,
    /// For reads: the pinned epoch the query saw. For writes: the epoch
    /// this commit published.
    pub epoch: u64,
    /// The serialized result sequence.
    pub body: String,
}

/// One committed write, in commit order — the replay script for the
/// differential concurrency suite: running every record's `query` against
/// a fresh copy of the initial store must reproduce each `body` and each
/// epoch's fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitRecord {
    /// The epoch this commit published.
    pub epoch: u64,
    /// The session that issued it.
    pub session: u64,
    /// The query text.
    pub query: String,
    /// Serialized result (`Ok`) or error code (`Err`). Errored runs are
    /// commits too: snaps closed before the error are kept (§2.3), so
    /// replay must include them.
    pub body: Result<String, String>,
    /// Store fingerprint right after this commit.
    pub fingerprint: u64,
}

/// Pre-resolved `server.*` metric handles (one registry probe at
/// construction, relaxed atomics per request).
struct ServerMetrics {
    requests_read: Arc<obs::Counter>,
    requests_write: Arc<obs::Counter>,
    errors: Arc<obs::Counter>,
    rejected_sessions: Arc<obs::Counter>,
    rejected_backpressure: Arc<obs::Counter>,
    conflicts: Arc<obs::Counter>,
    retries: Arc<obs::Counter>,
    read_ns: Arc<obs::Histogram>,
    write_ns: Arc<obs::Histogram>,
    sessions: Arc<obs::Gauge>,
    inflight: Arc<obs::Gauge>,
    snapshot_pins: Arc<obs::Gauge>,
}

impl ServerMetrics {
    fn from_global() -> Self {
        let g = obs::global();
        ServerMetrics {
            requests_read: g.counter("server.requests.read"),
            requests_write: g.counter("server.requests.write"),
            errors: g.counter("server.errors"),
            rejected_sessions: g.counter("server.rejected.sessions"),
            rejected_backpressure: g.counter("server.rejected.backpressure"),
            conflicts: g.counter("server.commit.conflicts"),
            retries: g.counter("server.commit.retries"),
            read_ns: g.histogram("server.read_ns"),
            write_ns: g.histogram("server.write_ns"),
            sessions: g.gauge("server.sessions"),
            inflight: g.gauge("server.inflight"),
            snapshot_pins: g.gauge("server.snapshot_pins"),
        }
    }
}

/// The committed-write-footprint ring: one `(epoch, write footprint)`
/// entry per published epoch, contiguous, trimmed to
/// [`ServerConfig::footprint_ring`] entries. Pushed under the engine
/// mutex, so entry order is epoch order.
struct FootprintRing {
    entries: Vec<(u64, Footprint)>,
    cap: usize,
}

impl FootprintRing {
    fn new(cap: usize) -> FootprintRing {
        FootprintRing {
            entries: Vec::new(),
            cap: cap.max(1),
        }
    }

    fn push(&mut self, epoch: u64, writes: Footprint) {
        self.entries.push((epoch, writes));
        if self.entries.len() > self.cap {
            let excess = self.entries.len() - self.cap;
            self.entries.drain(..excess);
        }
    }

    /// Validate a Δ built against `base_epoch`: `Ok(())` when it may
    /// rebase, `Err(aspects)` with the first colliding aspect mask when
    /// it conflicts. A base older than the ring's coverage is
    /// indistinguishable from a conflict (the missing footprints might
    /// have collided), so it conflicts on every aspect.
    fn validate(&self, base_epoch: u64, delta: &xqdm::CapturedDelta) -> Result<(), u8> {
        let since: Vec<&(u64, Footprint)> = self
            .entries
            .iter()
            .filter(|(e, _)| *e > base_epoch)
            .collect();
        if since.is_empty() {
            return Ok(());
        }
        // Every epoch in (base, latest] must be present: entries are
        // contiguous, so it suffices that the oldest retained entry is
        // no newer than base+1.
        if self.entries.first().map(|(e, _)| *e) > Some(base_epoch + 1) {
            return Err(aspect::ALL);
        }
        // A Δ with a whole-store write effect (explicit gc) cannot prove
        // it commutes with anything committed meanwhile.
        if delta.writes().is_global() {
            return Err(aspect::ALL);
        }
        for (_, writes) in since {
            let bits = delta.reads().conflict_aspects(writes);
            if bits != 0 {
                return Err(bits);
            }
        }
        Ok(())
    }
}

struct Inner {
    /// The writer path: validation + rebase (or, for pessimistic runs,
    /// the whole evaluation) serializes here.
    engine: Mutex<Engine>,
    /// Published snapshots; readers pin, writers publish.
    versions: VersionSet<EngineSnapshot>,
    /// Committed write footprints, for OCC validation. Locked only while
    /// the engine mutex is held (commit) or for a read-only scan
    /// (validation), never the other way around.
    ring: Mutex<FootprintRing>,
    /// The cross-session plan cache (also installed into `engine`).
    cache: Arc<SharedPlanCache>,
    config: ServerConfig,
    sessions: AtomicUsize,
    next_session: AtomicU64,
    inflight: AtomicUsize,
    commits: Mutex<Vec<CommitRecord>>,
    metrics: ServerMetrics,
}

/// The server handle. Cheap to clone (an `Arc`); clones share the
/// engine, the version chain, the plan cache, and the admission state.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// Host `engine` (documents loaded, modules registered, store opened)
    /// behind the default [`ServerConfig`].
    pub fn new(engine: Engine) -> Server {
        Server::with_config(engine, ServerConfig::default())
    }

    /// Host `engine` behind `config`. The engine's limits, thread budget,
    /// and plan cache are taken over by the server so that the writer
    /// path and every reader fork run under one policy.
    pub fn with_config(mut engine: Engine, config: ServerConfig) -> Server {
        let cache = SharedPlanCache::new();
        engine.set_shared_plan_cache(cache.clone());
        engine.set_limits(config.limits);
        engine.set_threads(config.threads);
        // The live engine captures the write footprint of every commit
        // (no read tracing — only forks validate reads), feeding the
        // validation ring for both commit paths.
        engine.begin_capture(false);
        let versions = VersionSet::new(engine.snapshot_state());
        Server {
            inner: Arc::new(Inner {
                engine: Mutex::new(engine),
                versions,
                ring: Mutex::new(FootprintRing::new(config.footprint_ring)),
                cache,
                config,
                sessions: AtomicUsize::new(0),
                next_session: AtomicU64::new(1),
                inflight: AtomicUsize::new(0),
                commits: Mutex::new(Vec::new()),
                metrics: ServerMetrics::from_global(),
            }),
        }
    }

    /// Open a session, or reject with `XQB0050` when `max_sessions` are
    /// already open. The slot frees when the returned [`Session`] drops.
    pub fn open_session(&self) -> Result<Session, Error> {
        let inner = &self.inner;
        let prev = inner.sessions.fetch_add(1, Ordering::SeqCst);
        if prev >= inner.config.max_sessions {
            inner.sessions.fetch_sub(1, Ordering::SeqCst);
            inner.metrics.rejected_sessions.add(1);
            return Err(Error::Eval(XdmError::new(
                ERR_SESSIONS,
                format!(
                    "session limit reached ({} open); retry after a session closes",
                    inner.config.max_sessions
                ),
            )));
        }
        inner.metrics.sessions.set(prev as i64 + 1);
        Ok(Session {
            inner: inner.clone(),
            id: inner.next_session.fetch_add(1, Ordering::Relaxed),
        })
    }

    /// The latest published epoch (0 until the first commit).
    pub fn epoch(&self) -> u64 {
        self.inner.versions.latest_epoch()
    }

    /// Store fingerprint of the latest published snapshot.
    pub fn fingerprint(&self) -> u64 {
        self.inner.versions.pin_latest().store().fingerprint()
    }

    /// Every commit so far, in commit (= epoch) order.
    pub fn commit_log(&self) -> Vec<CommitRecord> {
        self.inner
            .commits
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The cross-session plan cache.
    pub fn plan_cache(&self) -> &Arc<SharedPlanCache> {
        &self.inner.cache
    }

    /// The admission policy in force.
    pub fn config(&self) -> &ServerConfig {
        &self.inner.config
    }

    /// Run `f` under the writer lock — host-side setup (loading extra
    /// documents, registering modules) after the server exists. Publishes
    /// a new epoch afterwards, since `f` may have changed the store.
    pub fn with_engine<R>(&self, f: impl FnOnce(&mut Engine) -> R) -> R {
        let mut engine = self.inner.engine.lock().unwrap_or_else(|e| e.into_inner());
        let r = f(&mut engine);
        // Host-side setup can change anything — bindings and module
        // functions included, which footprints don't cover — so its ring
        // entry is globally conflicting: every Δ in flight across it
        // revalidates from a fresh snapshot.
        let mut writes = engine
            .take_capture()
            .map(|d| d.writes().clone())
            .unwrap_or_default();
        writes.set_global();
        let epoch = self.inner.versions.publish(engine.snapshot_state());
        self.inner
            .ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(epoch, writes);
        r
    }

    /// A point-in-time view of the server's `server.*` metrics plus the
    /// shared-cache and version-chain state.
    pub fn stats(&self) -> ServerStats {
        let inner = &self.inner;
        let m = &inner.metrics;
        let (cache_hits, cache_misses) = inner.cache.stats();
        ServerStats {
            epoch: inner.versions.latest_epoch(),
            sessions: inner.sessions.load(Ordering::SeqCst),
            inflight: inner.inflight.load(Ordering::SeqCst),
            snapshot_pins: inner.versions.pinned(),
            versions_retained: inner.versions.retained(),
            versions_retired: inner.versions.retired(),
            reads: m.requests_read.get(),
            writes: m.requests_write.get(),
            errors: m.errors.get(),
            rejected_sessions: m.rejected_sessions.get(),
            rejected_backpressure: m.rejected_backpressure.get(),
            conflicts: m.conflicts.get(),
            retries: m.retries.get(),
            cache_hits,
            cache_misses,
            read_p50_ns: m.read_ns.quantile(0.50),
            read_p99_ns: m.read_ns.quantile(0.99),
            write_p50_ns: m.write_ns.quantile(0.50),
            write_p99_ns: m.write_ns.quantile(0.99),
        }
    }
}

/// A point-in-time server status report ([`Server::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Latest published epoch.
    pub epoch: u64,
    /// Sessions currently open.
    pub sessions: usize,
    /// Requests currently in flight.
    pub inflight: usize,
    /// Snapshot pins currently held by in-flight reads.
    pub snapshot_pins: usize,
    /// Versions currently retained (latest + pinned ancestors).
    pub versions_retained: usize,
    /// Versions retired since startup.
    pub versions_retired: u64,
    /// Read requests served.
    pub reads: u64,
    /// Write requests served.
    pub writes: u64,
    /// Requests that returned an evaluation error.
    pub errors: u64,
    /// `XQB0050` session-limit rejections.
    pub rejected_sessions: u64,
    /// `XQB0051` backpressure rejections.
    pub rejected_backpressure: u64,
    /// Optimistic commits that failed validation (each is retried or
    /// aborted with `XQB0052`).
    pub conflicts: u64,
    /// Automatic conflict retries performed.
    pub retries: u64,
    /// Shared plan-cache hits across all sessions.
    pub cache_hits: u64,
    /// Shared plan-cache misses across all sessions.
    pub cache_misses: u64,
    /// Read-latency p50 (log₂-bucket estimate, nanoseconds).
    pub read_p50_ns: u64,
    /// Read-latency p99.
    pub read_p99_ns: u64,
    /// Write-latency p50.
    pub write_p50_ns: u64,
    /// Write-latency p99.
    pub write_p99_ns: u64,
}

impl ServerStats {
    /// One JSON object, for the wire protocol's `STATS` reply.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"epoch\":{},\"sessions\":{},\"inflight\":{},\"snapshot_pins\":{},\
             \"versions_retained\":{},\"versions_retired\":{},\
             \"reads\":{},\"writes\":{},\"errors\":{},\
             \"rejected_sessions\":{},\"rejected_backpressure\":{},\
             \"conflicts\":{},\"retries\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\
             \"read_p50_ns\":{},\"read_p99_ns\":{},\
             \"write_p50_ns\":{},\"write_p99_ns\":{}}}",
            self.epoch,
            self.sessions,
            self.inflight,
            self.snapshot_pins,
            self.versions_retained,
            self.versions_retired,
            self.reads,
            self.writes,
            self.errors,
            self.rejected_sessions,
            self.rejected_backpressure,
            self.conflicts,
            self.retries,
            self.cache_hits,
            self.cache_misses,
            self.read_p50_ns,
            self.read_p99_ns,
            self.write_p50_ns,
            self.write_p99_ns,
        )
    }
}

/// One client session. `Send` — a connection handler owns it on its own
/// thread. Dropping it frees the admission slot.
pub struct Session {
    inner: Arc<Inner>,
    id: u64,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").field("id", &self.id).finish()
    }
}

impl Session {
    /// This session's id (1-based, unique per server).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Parse, route, and run one query.
    ///
    /// Routing: a query whose body and prolog initializers are provably
    /// pure executes as a [`RequestKind::Read`] against the pinned latest
    /// snapshot, concurrently with other reads and with the writer.
    /// Anything else executes as a [`RequestKind::Write`] under the
    /// engine mutex and publishes a new epoch — even when it returns an
    /// error, since snaps closed before an error are commitment (§2.3).
    pub fn execute(&self, query: &str) -> Result<Response, Error> {
        let _slot = InflightSlot::admit(&self.inner)?;
        let program = {
            // Parse outside any lock; the parse-depth limit applies.
            let limits = self.inner.config.limits;
            xqsyn::compile_with_limit(query, limits.max_parse_depth).map_err(Error::Parse)?
        };
        // Classify against the latest snapshot's module functions — no
        // engine lock. A commit between classification and execution is
        // harmless: purity depends only on the function bodies, and
        // module registration goes through `with_engine` (the writer).
        let pin = self.inner.versions.pin_latest();
        self.inner
            .metrics
            .snapshot_pins
            .set(self.inner.versions.pinned() as i64);
        if pin.is_read_only(&program) {
            let r = self.execute_read(&pin, &program);
            drop(pin);
            self.inner
                .metrics
                .snapshot_pins
                .set(self.inner.versions.pinned() as i64);
            r
        } else {
            drop(pin);
            self.inner
                .metrics
                .snapshot_pins
                .set(self.inner.versions.pinned() as i64);
            self.execute_write(query, &program)
        }
    }

    fn execute_read(
        &self,
        pin: &xqdm::Pinned<EngineSnapshot>,
        program: &xqsyn::CoreProgram,
    ) -> Result<Response, Error> {
        let inner = &self.inner;
        let mut reader = pin.reader();
        reader.set_shared_plan_cache(inner.cache.clone());
        let started = Instant::now();
        let result = reader.run_program(program);
        let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        inner.metrics.read_ns.record(ns);
        inner.metrics.requests_read.add(1);
        match result {
            Ok(value) => {
                let body = reader.serialize(&value).map_err(Error::Eval)?;
                Ok(Response {
                    kind: RequestKind::Read,
                    epoch: pin.epoch(),
                    body,
                })
            }
            Err(e) => {
                inner.metrics.errors.add(1);
                Err(Error::Eval(e))
            }
        }
    }

    /// The writer path. With OCC on and an OCC-safe program: evaluate on
    /// a forked snapshot, validate the Δ's footprint, rebase under the
    /// engine lock; retry on conflict up to `max_retries`, then abort
    /// with `XQB0052`. Everything else serializes its whole evaluation.
    fn execute_write(&self, query: &str, program: &xqsyn::CoreProgram) -> Result<Response, Error> {
        let inner = &self.inner;
        let started = Instant::now();
        inner.metrics.requests_write.add(1);
        let mut retries = 0usize;
        let outcome = loop {
            if !inner.config.occ_writers {
                break self.commit_pessimistic(query, program);
            }
            let pin = inner.versions.pin_latest();
            if !pin.occ_safe(program) {
                drop(pin);
                break self.commit_pessimistic(query, program);
            }
            match self.try_commit_optimistic(query, program, &pin) {
                Ok(done) => break done,
                Err(_conflict_aspects) => {
                    inner.metrics.conflicts.add(1);
                    if retries >= inner.config.max_retries {
                        break Err(Error::Eval(XdmError::new(
                            ERR_CONFLICT,
                            format!(
                                "commit conflict: Δ footprint intersects a commit since \
                                 epoch {} ({} retries exhausted); retry the query",
                                pin.epoch(),
                                retries
                            ),
                        )));
                    }
                    retries += 1;
                    inner.metrics.retries.add(1);
                    // Exponential backoff before re-evaluating: under hot
                    // contention every loser retries at once, and the next
                    // commit re-conflicts them all (thundering herd); the
                    // spread lets one writer land per window.
                    let exp = u32::try_from(retries.min(6)).unwrap_or(6);
                    std::thread::sleep(std::time::Duration::from_micros(100 << exp));
                }
            }
        };
        let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        inner.metrics.write_ns.record(ns);
        if outcome.is_err() {
            inner.metrics.errors.add(1);
        }
        outcome
    }

    /// One optimistic attempt. `Ok` carries the request's final outcome
    /// (including evaluation errors — those commit their closed snaps and
    /// do not retry); `Err` carries the conflicting aspect mask and means
    /// "evaluate again from a fresh snapshot".
    fn try_commit_optimistic(
        &self,
        query: &str,
        program: &xqsyn::CoreProgram,
        pin: &xqdm::Pinned<EngineSnapshot>,
    ) -> Result<Result<Response, Error>, u8> {
        let inner = &self.inner;
        let base_epoch = pin.epoch();
        let mut fork = pin.reader();
        fork.set_shared_plan_cache(inner.cache.clone());
        fork.begin_capture(true);
        let result = fork.run_program(program);
        // Serialize on the fork, *before* draining the capture: the
        // response body is evaluator-visible output, so the reads that
        // shaped it belong in the validated footprint.
        let outcome = match result {
            Ok(value) => fork.serialize(&value).map_err(Error::Eval),
            Err(e) => Err(Error::Eval(e)),
        };
        let delta = fork.take_capture().expect("fork capture attached");
        let fork_snaps = fork.snap_counter().saturating_sub(pin.snap_counter());
        drop(fork);

        // Validate + rebase + publish, all under the engine mutex; the
        // ring lock nests inside it.
        let mut engine = inner.engine.lock().unwrap_or_else(|e| e.into_inner());
        {
            let ring = inner.ring.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(bits) = ring.validate(base_epoch, &delta) {
                // Last-writer-wins may waive pure value collisions: the
                // rebase re-applies this Δ's renames/sets on top, which
                // is exactly the serial order "them first, us second".
                let structural = bits & !(aspect::NAME | aspect::VALUE);
                if !(inner.config.conflict_policy == ConflictPolicy::LastWriterWins
                    && structural == 0)
                {
                    return Err(bits);
                }
            }
        }
        engine.note_committer(self.id, base_epoch);
        if let Err(e) = engine.apply_captured(&delta) {
            // A precondition failed on the live store: some commit since
            // the base invalidated an op in a way footprints admit
            // (LWW waivers, untraced mutator-internal reads). Treat as a
            // conflict and retry — unless nothing can have interleaved,
            // in which case the Δ itself is unreplayable and retrying
            // would loop forever.
            if inner.versions.latest_epoch() == base_epoch {
                drop(engine);
                return Ok(Err(Error::Eval(e)));
            }
            return Err(aspect::ALL);
        }
        engine.advance_snap_counter(fork_snaps);
        let live_writes = engine
            .take_capture()
            .map(|d| d.writes().clone())
            .unwrap_or_default();
        Ok(self.publish_commit(inner, &mut engine, query, outcome, live_writes))
    }

    /// The PR-8 fully serialized writer: evaluate on the live engine
    /// under the mutex. Taken when OCC is off or the program is not
    /// OCC-safe; never conflicts.
    fn commit_pessimistic(
        &self,
        query: &str,
        program: &xqsyn::CoreProgram,
    ) -> Result<Response, Error> {
        let inner = &self.inner;
        let mut engine = inner.engine.lock().unwrap_or_else(|e| e.into_inner());
        let result = engine.run_program(program);
        let outcome = match result {
            Ok(value) => engine.serialize(&value).map_err(Error::Eval),
            Err(e) => Err(Error::Eval(e)),
        };
        let live_writes = engine
            .take_capture()
            .map(|d| d.writes().clone())
            .unwrap_or_default();
        self.publish_commit(inner, &mut engine, query, outcome, live_writes)
    }

    /// Publish the post-run state whatever the outcome: an errored run
    /// keeps its closed snaps, so readers must see them. Publishing,
    /// the ring push, and logging happen under the engine lock, so the
    /// commit log's order is the epoch order.
    fn publish_commit(
        &self,
        inner: &Inner,
        engine: &mut Engine,
        query: &str,
        outcome: Result<String, Error>,
        writes: Footprint,
    ) -> Result<Response, Error> {
        let logged = match &outcome {
            Ok(body) => Ok(body.clone()),
            Err(Error::Eval(e)) => Err(e.code.to_string()),
            Err(Error::Parse(_)) => unreachable!("program already parsed"),
        };
        let snapshot = engine.snapshot_state();
        let fingerprint = snapshot.store().fingerprint();
        let epoch = inner.versions.publish(snapshot);
        inner
            .ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(epoch, writes);
        inner
            .commits
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(CommitRecord {
                epoch,
                session: self.id,
                query: query.to_string(),
                body: logged,
                fingerprint,
            });
        outcome.map(|body| Response {
            kind: RequestKind::Write,
            epoch,
            body,
        })
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        let prev = self.inner.sessions.fetch_sub(1, Ordering::SeqCst);
        self.inner
            .metrics
            .sessions
            .set(prev.saturating_sub(1) as i64);
    }
}

/// RAII admission slot: counts a request in flight, rejecting with
/// `XQB0051` past `max_inflight`.
struct InflightSlot<'a> {
    inner: &'a Inner,
}

impl<'a> InflightSlot<'a> {
    fn admit(inner: &'a Inner) -> Result<InflightSlot<'a>, Error> {
        let prev = inner.inflight.fetch_add(1, Ordering::SeqCst);
        if prev >= inner.config.max_inflight {
            inner.inflight.fetch_sub(1, Ordering::SeqCst);
            inner.metrics.rejected_backpressure.add(1);
            return Err(Error::Eval(XdmError::new(
                ERR_BACKPRESSURE,
                format!(
                    "server at capacity ({} requests in flight); retry",
                    inner.config.max_inflight
                ),
            )));
        }
        inner.metrics.inflight.set(prev as i64 + 1);
        Ok(InflightSlot { inner })
    }
}

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        let prev = self.inner.inflight.fetch_sub(1, Ordering::SeqCst);
        self.inner
            .metrics
            .inflight
            .set(prev.saturating_sub(1) as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server_with_doc() -> Server {
        let mut e = Engine::new();
        e.load_document("doc", "<log/>").unwrap();
        Server::new(e)
    }

    #[test]
    fn reads_and_writes_route_by_purity() {
        let server = server_with_doc();
        let s = server.open_session().unwrap();
        let r = s.execute("count($doc/log/*)").unwrap();
        assert_eq!(r.kind, RequestKind::Read);
        assert_eq!(r.body, "0");
        let w = s.execute("insert { <e/> } into { $doc/log }").unwrap();
        assert_eq!(w.kind, RequestKind::Write);
        assert_eq!(w.epoch, server.epoch());
        let r = s.execute("count($doc/log/*)").unwrap();
        assert_eq!(r.kind, RequestKind::Read);
        assert_eq!(r.body, "1");
        assert_eq!(r.epoch, w.epoch, "read pinned the committed epoch");
    }

    #[test]
    fn session_limit_rejects_with_xqb0050() {
        let config = ServerConfig {
            max_sessions: 2,
            ..ServerConfig::default()
        };
        let server = Server::with_config(Engine::new(), config);
        let _a = server.open_session().unwrap();
        let _b = server.open_session().unwrap();
        match server.open_session() {
            Err(Error::Eval(e)) => assert_eq!(e.code, ERR_SESSIONS),
            other => panic!("expected XQB0050, got {other:?}"),
        }
        drop(_a);
        // A freed slot admits again.
        assert!(server.open_session().is_ok());
    }

    #[test]
    fn errored_writes_keep_closed_snaps_and_publish() {
        let server = server_with_doc();
        let s = server.open_session().unwrap();
        // The snap commits, then the error fires: commitment per §2.3.
        let err = s
            .execute("(snap insert { <kept/> } into { $doc/log }, 1 div 0)")
            .unwrap_err();
        assert!(matches!(err, Error::Eval(_)));
        let r = s.execute("count($doc/log/kept)").unwrap();
        assert_eq!(r.body, "1");
        // The errored run is in the commit log for replay.
        let log = server.commit_log();
        assert_eq!(log.len(), 1);
        assert!(log[0].body.is_err());
    }

    #[test]
    fn commit_log_orders_by_epoch_and_fingerprints_match() {
        let server = server_with_doc();
        let s = server.open_session().unwrap();
        for i in 0..3 {
            s.execute(&format!("insert {{ <e n=\"{i}\"/> }} into {{ $doc/log }}"))
                .unwrap();
        }
        let log = server.commit_log();
        let epochs: Vec<u64> = log.iter().map(|c| c.epoch).collect();
        assert_eq!(epochs, vec![1, 2, 3]);
        assert_eq!(log[2].fingerprint, server.fingerprint());
    }

    #[test]
    fn shared_cache_hits_across_sessions() {
        // Bare xqcore has no planner installed, so plans (and hence cache
        // traffic) only exist under the facade; the cross-session hit
        // assertion lives in tests/server_isolation.rs. Here: two
        // sessions answering the same query stays correct either way.
        let server = server_with_doc();
        let a = server.open_session().unwrap();
        let b = server.open_session().unwrap();
        a.execute("count($doc/log/*)").unwrap();
        let (hits_before, misses_before) = server.plan_cache().stats();
        b.execute("count($doc/log/*)").unwrap();
        let (hits_after, misses_after) = server.plan_cache().stats();
        if crate::planner::default_planner().is_some() {
            assert!(hits_after > hits_before);
        } else {
            assert_eq!((hits_after, misses_after), (hits_before, misses_before));
        }
    }

    #[test]
    fn stats_reflect_traffic() {
        let server = server_with_doc();
        let before = server.stats();
        let s = server.open_session().unwrap();
        s.execute("1 + 1").unwrap();
        s.execute("insert { <e/> } into { $doc/log }").unwrap();
        let after = server.stats();
        assert_eq!(after.reads, before.reads + 1);
        assert_eq!(after.writes, before.writes + 1);
        assert_eq!(after.inflight, 0);
        assert_eq!(after.snapshot_pins, 0);
        assert!(after.epoch > before.epoch);
        let json = after.to_json();
        assert!(json.starts_with("{\"epoch\":"));
        assert!(json.contains("\"read_p50_ns\":"));
        assert!(json.contains("\"conflicts\":"));
        assert!(json.contains("\"retries\":"));
    }

    // -----------------------------------------------------------------
    // Optimistic concurrent writers (DESIGN.md §16)
    // -----------------------------------------------------------------

    /// Run `q` on a scratch engine under capture and hand back its Δ.
    fn capture_of(e: &mut Engine, q: &str) -> xqdm::CapturedDelta {
        e.begin_capture(true);
        let _ = e.run(q);
        e.take_capture().expect("capture attached")
    }

    #[test]
    fn footprint_ring_validates_and_evicts() {
        let mut e = Engine::new();
        e.load_document("doc", "<c>0</c>").unwrap();
        // A value-set on the counter text: reads the counter, writes its
        // value aspect.
        let incr = capture_of(
            &mut e,
            "replace value of { $doc/c/text() } with { $doc/c + 1 }",
        );
        // A pure read of the counter (empty write footprint).
        let reader = capture_of(&mut e, "string($doc/c)");
        assert!(reader.writes().is_empty());
        // A query that never touched the document.
        let blind = capture_of(&mut e, "1 + 1");

        let mut ring = FootprintRing::new(2);
        ring.push(1, incr.writes().clone());
        // The reader saw the counter at base 0; epoch 1 rewrote it.
        let bits = ring.validate(0, &reader).unwrap_err();
        assert_eq!(bits & !(aspect::NAME | aspect::VALUE), 0, "value-only");
        // From base 1 nothing newer exists to conflict with.
        assert!(ring.validate(1, &reader).is_ok());
        // A Δ that read nothing commutes with anything covered.
        assert!(ring.validate(0, &blind).is_ok());
        // Eviction: once the base predates ring coverage, validation
        // must conservatively conflict — even for an empty read set.
        ring.push(2, Footprint::default());
        ring.push(3, Footprint::default());
        assert_eq!(ring.entries.len(), 2);
        assert_eq!(ring.validate(0, &blind).unwrap_err(), aspect::ALL);
        assert!(ring.validate(2, &reader).is_ok());
    }

    fn counter_server(config: ServerConfig) -> Server {
        let mut e = Engine::new();
        e.load_document("doc", "<c>0</c>").unwrap();
        Server::with_config(e, config)
    }

    const INCR: &str = "replace value of { $doc/c/text() } with { $doc/c + 1 }";
    /// An increment that evaluates slowly, widening the window in which
    /// another committer can land between its pin and its validation.
    const SLOW_INCR: &str =
        "(sum(1 to 300000)[. < 0], replace value of { $doc/c/text() } with { $doc/c + 1 })";

    #[test]
    fn concurrent_increments_never_lose_updates() {
        // The classic lost-update litmus: N sessions × K read-modify-write
        // increments. Backward validation forces every stale increment to
        // retry, so the final value is exactly N*K.
        let server = counter_server(ServerConfig::default());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let server = server.clone();
                std::thread::spawn(move || {
                    let s = server.open_session().unwrap();
                    for _ in 0..8 {
                        // XQB0052 is the documented retryable abort: a
                        // client that still wants the write re-submits.
                        loop {
                            match s.execute(INCR) {
                                Ok(_) => break,
                                Err(Error::Eval(e)) if e.code == ERR_CONFLICT => {}
                                Err(other) => panic!("unexpected error {other}"),
                            }
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = server.open_session().unwrap();
        assert_eq!(s.execute("string($doc/c)").unwrap().body, "32");
        // Log order = epoch order, and the last commit's fingerprint is
        // the live store's.
        let log = server.commit_log();
        assert!(log.windows(2).all(|w| w[0].epoch < w[1].epoch));
        assert_eq!(log.last().unwrap().fingerprint, server.fingerprint());
    }

    #[test]
    fn exhausted_retries_abort_with_xqb0052() {
        // max_retries = 0: the first conflict aborts. A slow writer pins,
        // evaluates while the main thread commits a colliding increment,
        // then fails validation.
        let server = counter_server(ServerConfig {
            max_retries: 0,
            ..ServerConfig::default()
        });
        let main = server.open_session().unwrap();
        let before = server.stats();
        let mut committed = 0u64;
        let mut aborted = 0;
        for _ in 0..30 {
            let slow = {
                let server = server.clone();
                std::thread::spawn(move || {
                    let s = server.open_session().unwrap();
                    s.execute(SLOW_INCR)
                })
            };
            std::thread::sleep(std::time::Duration::from_millis(2));
            main.execute(INCR).unwrap();
            committed += 1;
            match slow.join().unwrap() {
                Err(Error::Eval(e)) => {
                    assert_eq!(e.code, ERR_CONFLICT);
                    aborted += 1;
                }
                Ok(_) => committed += 1,
                other => panic!("unexpected outcome {other:?}"),
            }
            if aborted > 0 {
                break;
            }
        }
        assert!(aborted > 0, "no conflict in 30 rounds of forced collision");
        // Metrics are process-global (one obs registry), so compare
        // against the snapshot taken before this test's traffic.
        assert!(server.stats().conflicts > before.conflicts);
        // XQB0052 aborts left no partial effects: the counter equals the
        // number of successful commits.
        let got: u64 = main
            .execute("string($doc/c)")
            .unwrap()
            .body
            .parse()
            .unwrap();
        assert_eq!(got, committed);
    }

    #[test]
    fn bounded_retry_recovers_from_conflicts() {
        // Default max_retries: the slow loser re-evaluates from a fresh
        // snapshot and lands; nothing surfaces to the client.
        let server = counter_server(ServerConfig::default());
        let main = server.open_session().unwrap();
        let before = server.stats();
        let mut rounds = 0u64;
        for _ in 0..10 {
            let slow = {
                let server = server.clone();
                std::thread::spawn(move || {
                    let s = server.open_session().unwrap();
                    s.execute(SLOW_INCR)
                })
            };
            std::thread::sleep(std::time::Duration::from_millis(2));
            main.execute(INCR).unwrap();
            slow.join().unwrap().unwrap();
            rounds += 1;
            if server.stats().retries > before.retries {
                break;
            }
        }
        // Every round ran both increments to completion, conflicts or not.
        let got: u64 = main
            .execute("string($doc/c)")
            .unwrap()
            .body
            .parse()
            .unwrap();
        assert_eq!(got, rounds * 2);
    }

    #[test]
    fn last_writer_wins_waives_value_conflicts() {
        // Under lww a stale value-set commits anyway — the increment that
        // validated against an outdated counter overwrites the newer one,
        // exactly as if it had run second serially. The counter then
        // *undercounts*: that lost update is the policy's documented
        // trade, and the abort policy's raison d'être.
        let server = counter_server(ServerConfig {
            conflict_policy: ConflictPolicy::LastWriterWins,
            max_retries: 0,
            ..ServerConfig::default()
        });
        let main = server.open_session().unwrap();
        let mut lost = 0u64;
        let mut rounds = 0u64;
        for _ in 0..30 {
            let slow = {
                let server = server.clone();
                std::thread::spawn(move || {
                    let s = server.open_session().unwrap();
                    s.execute(SLOW_INCR)
                })
            };
            std::thread::sleep(std::time::Duration::from_millis(2));
            main.execute(INCR).unwrap();
            // Never XQB0052: value-only collisions are waived.
            slow.join().unwrap().unwrap();
            rounds += 1;
            let got: u64 = main
                .execute("string($doc/c)")
                .unwrap()
                .body
                .parse()
                .unwrap();
            lost = rounds * 2 - got;
            if lost > 0 {
                break;
            }
        }
        assert!(
            lost > 0,
            "no waived lost update in {rounds} rounds of forced collision"
        );
    }

    #[test]
    fn occ_unsafe_programs_take_the_pessimistic_path() {
        // A nondeterministic snap cannot be footprint-validated (its
        // replay could legitimately differ), so the write serializes
        // under the engine lock and never conflicts.
        let server = counter_server(ServerConfig::default());
        let s = server.open_session().unwrap();
        let before = server.stats();
        s.execute("snap nondeterministic { insert { <e/> } into { $doc/c } }")
            .unwrap();
        assert_eq!(s.execute("count($doc/c/e)").unwrap().body, "1");
        assert_eq!(server.stats().conflicts, before.conflicts);
        // Same for par-opaque builtins observed mid-query.
        s.execute("(insert { <f/> } into { $doc/c }, xqb:stats())")
            .unwrap();
        assert_eq!(server.stats().conflicts, before.conflicts);
    }

    #[test]
    fn occ_off_serializes_every_write() {
        let server = counter_server(ServerConfig {
            occ_writers: false,
            ..ServerConfig::default()
        });
        let before = server.stats();
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let server = server.clone();
                std::thread::spawn(move || {
                    let s = server.open_session().unwrap();
                    for _ in 0..4 {
                        s.execute(INCR).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = server.open_session().unwrap();
        assert_eq!(s.execute("string($doc/c)").unwrap().body, "8");
        let stats = server.stats();
        assert_eq!(
            (stats.conflicts, stats.retries),
            (before.conflicts, before.retries)
        );
    }
}
