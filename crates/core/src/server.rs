//! The multi-session server core (DESIGN.md §15): one durable engine,
//! many concurrent sessions, snapshot-isolated reads.
//!
//! The concurrency contract:
//!
//! * **Writes serialize.** Every query that might touch the store runs
//!   under the single engine mutex, through the unchanged PR-1/PR-6
//!   pipeline — undo frames, Δ application, WAL commit — so durability
//!   and crash recovery hold exactly as for an embedded engine. After
//!   each write the engine's state is COW-snapshotted and published as a
//!   new epoch ([`xqdm::VersionSet`]).
//! * **Reads run concurrently.** A query proven effect-free by the PR-3
//!   purity judgment ([`Engine::is_read_only`]) pins the latest epoch and
//!   executes against a private fork of that snapshot — it never takes
//!   the engine lock, and commits landing meanwhile cannot move the data
//!   under it. The pin is released when the request finishes; superseded
//!   epochs retire as soon as their last pin drops.
//! * **Admission is bounded.** Opening a session past `max_sessions` is
//!   rejected with `XQB0050`; a request past `max_inflight` concurrent
//!   requests is rejected with `XQB0051` (backpressure — the client
//!   retries, the server never queues unboundedly).
//!
//! Sessions share one fingerprint-keyed [`SharedPlanCache`], so a query
//! planned by any session is a plan-cache hit for every other. Request
//! accounting lands in the global metrics registry under `server.*`
//! (counters, gauges, latency histograms); [`Server::stats`] reads them
//! back as one struct.

use crate::engine::{Engine, EngineSnapshot, Error};
use crate::limits::Limits;
use crate::obs;
use crate::planner::SharedPlanCache;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use xqdm::{VersionSet, XdmError};

/// Session-limit rejection: `open_session` past `max_sessions`.
pub const ERR_SESSIONS: &str = "XQB0050";
/// Backpressure rejection: a request past `max_inflight`.
pub const ERR_BACKPRESSURE: &str = "XQB0051";

/// Server admission and resource policy.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Most sessions open at once (`XQB0050` beyond).
    pub max_sessions: usize,
    /// Most requests in flight at once across all sessions (`XQB0051`
    /// beyond).
    pub max_inflight: usize,
    /// Per-request resource limits (fuel, deadline, depth, memory) —
    /// installed into the writer engine and every reader fork.
    pub limits: Limits,
    /// Worker-thread budget each request may use for effect-free regions.
    pub threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 64,
            max_inflight: 32,
            limits: Limits::from_env(),
            threads: crate::par::threads_from_env(),
        }
    }
}

/// How a request was routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Proven pure: ran against a pinned snapshot, engine lock untouched.
    Read,
    /// Possibly effectful: serialized through the engine mutex + WAL.
    Write,
}

impl RequestKind {
    /// Wire token (`read` / `write`).
    pub fn as_str(self) -> &'static str {
        match self {
            RequestKind::Read => "read",
            RequestKind::Write => "write",
        }
    }
}

/// A successful request's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Read or write routing.
    pub kind: RequestKind,
    /// For reads: the pinned epoch the query saw. For writes: the epoch
    /// this commit published.
    pub epoch: u64,
    /// The serialized result sequence.
    pub body: String,
}

/// One committed write, in commit order — the replay script for the
/// differential concurrency suite: running every record's `query` against
/// a fresh copy of the initial store must reproduce each `body` and each
/// epoch's fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitRecord {
    /// The epoch this commit published.
    pub epoch: u64,
    /// The session that issued it.
    pub session: u64,
    /// The query text.
    pub query: String,
    /// Serialized result (`Ok`) or error code (`Err`). Errored runs are
    /// commits too: snaps closed before the error are kept (§2.3), so
    /// replay must include them.
    pub body: Result<String, String>,
    /// Store fingerprint right after this commit.
    pub fingerprint: u64,
}

/// Pre-resolved `server.*` metric handles (one registry probe at
/// construction, relaxed atomics per request).
struct ServerMetrics {
    requests_read: Arc<obs::Counter>,
    requests_write: Arc<obs::Counter>,
    errors: Arc<obs::Counter>,
    rejected_sessions: Arc<obs::Counter>,
    rejected_backpressure: Arc<obs::Counter>,
    read_ns: Arc<obs::Histogram>,
    write_ns: Arc<obs::Histogram>,
    sessions: Arc<obs::Gauge>,
    inflight: Arc<obs::Gauge>,
    snapshot_pins: Arc<obs::Gauge>,
}

impl ServerMetrics {
    fn from_global() -> Self {
        let g = obs::global();
        ServerMetrics {
            requests_read: g.counter("server.requests.read"),
            requests_write: g.counter("server.requests.write"),
            errors: g.counter("server.errors"),
            rejected_sessions: g.counter("server.rejected.sessions"),
            rejected_backpressure: g.counter("server.rejected.backpressure"),
            read_ns: g.histogram("server.read_ns"),
            write_ns: g.histogram("server.write_ns"),
            sessions: g.gauge("server.sessions"),
            inflight: g.gauge("server.inflight"),
            snapshot_pins: g.gauge("server.snapshot_pins"),
        }
    }
}

struct Inner {
    /// The writer path: every possibly-effectful query serializes here.
    engine: Mutex<Engine>,
    /// Published snapshots; readers pin, writers publish.
    versions: VersionSet<EngineSnapshot>,
    /// The cross-session plan cache (also installed into `engine`).
    cache: Arc<SharedPlanCache>,
    config: ServerConfig,
    sessions: AtomicUsize,
    next_session: AtomicU64,
    inflight: AtomicUsize,
    commits: Mutex<Vec<CommitRecord>>,
    metrics: ServerMetrics,
}

/// The server handle. Cheap to clone (an `Arc`); clones share the
/// engine, the version chain, the plan cache, and the admission state.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// Host `engine` (documents loaded, modules registered, store opened)
    /// behind the default [`ServerConfig`].
    pub fn new(engine: Engine) -> Server {
        Server::with_config(engine, ServerConfig::default())
    }

    /// Host `engine` behind `config`. The engine's limits, thread budget,
    /// and plan cache are taken over by the server so that the writer
    /// path and every reader fork run under one policy.
    pub fn with_config(mut engine: Engine, config: ServerConfig) -> Server {
        let cache = SharedPlanCache::new();
        engine.set_shared_plan_cache(cache.clone());
        engine.set_limits(config.limits);
        engine.set_threads(config.threads);
        let versions = VersionSet::new(engine.snapshot_state());
        Server {
            inner: Arc::new(Inner {
                engine: Mutex::new(engine),
                versions,
                cache,
                config,
                sessions: AtomicUsize::new(0),
                next_session: AtomicU64::new(1),
                inflight: AtomicUsize::new(0),
                commits: Mutex::new(Vec::new()),
                metrics: ServerMetrics::from_global(),
            }),
        }
    }

    /// Open a session, or reject with `XQB0050` when `max_sessions` are
    /// already open. The slot frees when the returned [`Session`] drops.
    pub fn open_session(&self) -> Result<Session, Error> {
        let inner = &self.inner;
        let prev = inner.sessions.fetch_add(1, Ordering::SeqCst);
        if prev >= inner.config.max_sessions {
            inner.sessions.fetch_sub(1, Ordering::SeqCst);
            inner.metrics.rejected_sessions.add(1);
            return Err(Error::Eval(XdmError::new(
                ERR_SESSIONS,
                format!(
                    "session limit reached ({} open); retry after a session closes",
                    inner.config.max_sessions
                ),
            )));
        }
        inner.metrics.sessions.set(prev as i64 + 1);
        Ok(Session {
            inner: inner.clone(),
            id: inner.next_session.fetch_add(1, Ordering::Relaxed),
        })
    }

    /// The latest published epoch (0 until the first commit).
    pub fn epoch(&self) -> u64 {
        self.inner.versions.latest_epoch()
    }

    /// Store fingerprint of the latest published snapshot.
    pub fn fingerprint(&self) -> u64 {
        self.inner.versions.pin_latest().store().fingerprint()
    }

    /// Every commit so far, in commit (= epoch) order.
    pub fn commit_log(&self) -> Vec<CommitRecord> {
        self.inner
            .commits
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The cross-session plan cache.
    pub fn plan_cache(&self) -> &Arc<SharedPlanCache> {
        &self.inner.cache
    }

    /// The admission policy in force.
    pub fn config(&self) -> &ServerConfig {
        &self.inner.config
    }

    /// Run `f` under the writer lock — host-side setup (loading extra
    /// documents, registering modules) after the server exists. Publishes
    /// a new epoch afterwards, since `f` may have changed the store.
    pub fn with_engine<R>(&self, f: impl FnOnce(&mut Engine) -> R) -> R {
        let mut engine = self.inner.engine.lock().unwrap_or_else(|e| e.into_inner());
        let r = f(&mut engine);
        self.inner.versions.publish(engine.snapshot_state());
        r
    }

    /// A point-in-time view of the server's `server.*` metrics plus the
    /// shared-cache and version-chain state.
    pub fn stats(&self) -> ServerStats {
        let inner = &self.inner;
        let m = &inner.metrics;
        let (cache_hits, cache_misses) = inner.cache.stats();
        ServerStats {
            epoch: inner.versions.latest_epoch(),
            sessions: inner.sessions.load(Ordering::SeqCst),
            inflight: inner.inflight.load(Ordering::SeqCst),
            snapshot_pins: inner.versions.pinned(),
            versions_retained: inner.versions.retained(),
            versions_retired: inner.versions.retired(),
            reads: m.requests_read.get(),
            writes: m.requests_write.get(),
            errors: m.errors.get(),
            rejected_sessions: m.rejected_sessions.get(),
            rejected_backpressure: m.rejected_backpressure.get(),
            cache_hits,
            cache_misses,
            read_p50_ns: m.read_ns.quantile(0.50),
            read_p99_ns: m.read_ns.quantile(0.99),
            write_p50_ns: m.write_ns.quantile(0.50),
            write_p99_ns: m.write_ns.quantile(0.99),
        }
    }
}

/// A point-in-time server status report ([`Server::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Latest published epoch.
    pub epoch: u64,
    /// Sessions currently open.
    pub sessions: usize,
    /// Requests currently in flight.
    pub inflight: usize,
    /// Snapshot pins currently held by in-flight reads.
    pub snapshot_pins: usize,
    /// Versions currently retained (latest + pinned ancestors).
    pub versions_retained: usize,
    /// Versions retired since startup.
    pub versions_retired: u64,
    /// Read requests served.
    pub reads: u64,
    /// Write requests served.
    pub writes: u64,
    /// Requests that returned an evaluation error.
    pub errors: u64,
    /// `XQB0050` session-limit rejections.
    pub rejected_sessions: u64,
    /// `XQB0051` backpressure rejections.
    pub rejected_backpressure: u64,
    /// Shared plan-cache hits across all sessions.
    pub cache_hits: u64,
    /// Shared plan-cache misses across all sessions.
    pub cache_misses: u64,
    /// Read-latency p50 (log₂-bucket estimate, nanoseconds).
    pub read_p50_ns: u64,
    /// Read-latency p99.
    pub read_p99_ns: u64,
    /// Write-latency p50.
    pub write_p50_ns: u64,
    /// Write-latency p99.
    pub write_p99_ns: u64,
}

impl ServerStats {
    /// One JSON object, for the wire protocol's `STATS` reply.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"epoch\":{},\"sessions\":{},\"inflight\":{},\"snapshot_pins\":{},\
             \"versions_retained\":{},\"versions_retired\":{},\
             \"reads\":{},\"writes\":{},\"errors\":{},\
             \"rejected_sessions\":{},\"rejected_backpressure\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\
             \"read_p50_ns\":{},\"read_p99_ns\":{},\
             \"write_p50_ns\":{},\"write_p99_ns\":{}}}",
            self.epoch,
            self.sessions,
            self.inflight,
            self.snapshot_pins,
            self.versions_retained,
            self.versions_retired,
            self.reads,
            self.writes,
            self.errors,
            self.rejected_sessions,
            self.rejected_backpressure,
            self.cache_hits,
            self.cache_misses,
            self.read_p50_ns,
            self.read_p99_ns,
            self.write_p50_ns,
            self.write_p99_ns,
        )
    }
}

/// One client session. `Send` — a connection handler owns it on its own
/// thread. Dropping it frees the admission slot.
pub struct Session {
    inner: Arc<Inner>,
    id: u64,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").field("id", &self.id).finish()
    }
}

impl Session {
    /// This session's id (1-based, unique per server).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Parse, route, and run one query.
    ///
    /// Routing: a query whose body and prolog initializers are provably
    /// pure executes as a [`RequestKind::Read`] against the pinned latest
    /// snapshot, concurrently with other reads and with the writer.
    /// Anything else executes as a [`RequestKind::Write`] under the
    /// engine mutex and publishes a new epoch — even when it returns an
    /// error, since snaps closed before an error are commitment (§2.3).
    pub fn execute(&self, query: &str) -> Result<Response, Error> {
        let _slot = InflightSlot::admit(&self.inner)?;
        let program = {
            // Parse outside any lock; the parse-depth limit applies.
            let limits = self.inner.config.limits;
            xqsyn::compile_with_limit(query, limits.max_parse_depth).map_err(Error::Parse)?
        };
        // Classify against the latest snapshot's module functions — no
        // engine lock. A commit between classification and execution is
        // harmless: purity depends only on the function bodies, and
        // module registration goes through `with_engine` (the writer).
        let pin = self.inner.versions.pin_latest();
        self.inner
            .metrics
            .snapshot_pins
            .set(self.inner.versions.pinned() as i64);
        if pin.is_read_only(&program) {
            let r = self.execute_read(&pin, &program);
            drop(pin);
            self.inner
                .metrics
                .snapshot_pins
                .set(self.inner.versions.pinned() as i64);
            r
        } else {
            drop(pin);
            self.inner
                .metrics
                .snapshot_pins
                .set(self.inner.versions.pinned() as i64);
            self.execute_write(query, &program)
        }
    }

    fn execute_read(
        &self,
        pin: &xqdm::Pinned<EngineSnapshot>,
        program: &xqsyn::CoreProgram,
    ) -> Result<Response, Error> {
        let inner = &self.inner;
        let mut reader = pin.reader();
        reader.set_shared_plan_cache(inner.cache.clone());
        let started = Instant::now();
        let result = reader.run_program(program);
        let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        inner.metrics.read_ns.record(ns);
        inner.metrics.requests_read.add(1);
        match result {
            Ok(value) => {
                let body = reader.serialize(&value).map_err(Error::Eval)?;
                Ok(Response {
                    kind: RequestKind::Read,
                    epoch: pin.epoch(),
                    body,
                })
            }
            Err(e) => {
                inner.metrics.errors.add(1);
                Err(Error::Eval(e))
            }
        }
    }

    fn execute_write(&self, query: &str, program: &xqsyn::CoreProgram) -> Result<Response, Error> {
        let inner = &self.inner;
        let mut engine = inner.engine.lock().unwrap_or_else(|e| e.into_inner());
        let started = Instant::now();
        let result = engine.run_program(program);
        let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        inner.metrics.write_ns.record(ns);
        inner.metrics.requests_write.add(1);
        // Publish the post-run state whatever the outcome: an errored run
        // keeps its closed snaps, so readers must see them. Publishing
        // and logging happen under the engine lock, so the commit log's
        // order is the epoch order.
        let outcome = match result {
            Ok(value) => engine.serialize(&value).map_err(Error::Eval),
            Err(e) => Err(Error::Eval(e)),
        };
        if outcome.is_err() {
            inner.metrics.errors.add(1);
        }
        let logged = match &outcome {
            Ok(body) => Ok(body.clone()),
            Err(Error::Eval(e)) => Err(e.code.to_string()),
            Err(Error::Parse(_)) => unreachable!("program already parsed"),
        };
        let snapshot = engine.snapshot_state();
        let fingerprint = snapshot.store().fingerprint();
        let epoch = inner.versions.publish(snapshot);
        inner
            .commits
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(CommitRecord {
                epoch,
                session: self.id,
                query: query.to_string(),
                body: logged,
                fingerprint,
            });
        drop(engine);
        outcome.map(|body| Response {
            kind: RequestKind::Write,
            epoch,
            body,
        })
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        let prev = self.inner.sessions.fetch_sub(1, Ordering::SeqCst);
        self.inner
            .metrics
            .sessions
            .set(prev.saturating_sub(1) as i64);
    }
}

/// RAII admission slot: counts a request in flight, rejecting with
/// `XQB0051` past `max_inflight`.
struct InflightSlot<'a> {
    inner: &'a Inner,
}

impl<'a> InflightSlot<'a> {
    fn admit(inner: &'a Inner) -> Result<InflightSlot<'a>, Error> {
        let prev = inner.inflight.fetch_add(1, Ordering::SeqCst);
        if prev >= inner.config.max_inflight {
            inner.inflight.fetch_sub(1, Ordering::SeqCst);
            inner.metrics.rejected_backpressure.add(1);
            return Err(Error::Eval(XdmError::new(
                ERR_BACKPRESSURE,
                format!(
                    "server at capacity ({} requests in flight); retry",
                    inner.config.max_inflight
                ),
            )));
        }
        inner.metrics.inflight.set(prev as i64 + 1);
        Ok(InflightSlot { inner })
    }
}

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        let prev = self.inner.inflight.fetch_sub(1, Ordering::SeqCst);
        self.inner
            .metrics
            .inflight
            .set(prev.saturating_sub(1) as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server_with_doc() -> Server {
        let mut e = Engine::new();
        e.load_document("doc", "<log/>").unwrap();
        Server::new(e)
    }

    #[test]
    fn reads_and_writes_route_by_purity() {
        let server = server_with_doc();
        let s = server.open_session().unwrap();
        let r = s.execute("count($doc/log/*)").unwrap();
        assert_eq!(r.kind, RequestKind::Read);
        assert_eq!(r.body, "0");
        let w = s.execute("insert { <e/> } into { $doc/log }").unwrap();
        assert_eq!(w.kind, RequestKind::Write);
        assert_eq!(w.epoch, server.epoch());
        let r = s.execute("count($doc/log/*)").unwrap();
        assert_eq!(r.kind, RequestKind::Read);
        assert_eq!(r.body, "1");
        assert_eq!(r.epoch, w.epoch, "read pinned the committed epoch");
    }

    #[test]
    fn session_limit_rejects_with_xqb0050() {
        let config = ServerConfig {
            max_sessions: 2,
            ..ServerConfig::default()
        };
        let server = Server::with_config(Engine::new(), config);
        let _a = server.open_session().unwrap();
        let _b = server.open_session().unwrap();
        match server.open_session() {
            Err(Error::Eval(e)) => assert_eq!(e.code, ERR_SESSIONS),
            other => panic!("expected XQB0050, got {other:?}"),
        }
        drop(_a);
        // A freed slot admits again.
        assert!(server.open_session().is_ok());
    }

    #[test]
    fn errored_writes_keep_closed_snaps_and_publish() {
        let server = server_with_doc();
        let s = server.open_session().unwrap();
        // The snap commits, then the error fires: commitment per §2.3.
        let err = s
            .execute("(snap insert { <kept/> } into { $doc/log }, 1 div 0)")
            .unwrap_err();
        assert!(matches!(err, Error::Eval(_)));
        let r = s.execute("count($doc/log/kept)").unwrap();
        assert_eq!(r.body, "1");
        // The errored run is in the commit log for replay.
        let log = server.commit_log();
        assert_eq!(log.len(), 1);
        assert!(log[0].body.is_err());
    }

    #[test]
    fn commit_log_orders_by_epoch_and_fingerprints_match() {
        let server = server_with_doc();
        let s = server.open_session().unwrap();
        for i in 0..3 {
            s.execute(&format!("insert {{ <e n=\"{i}\"/> }} into {{ $doc/log }}"))
                .unwrap();
        }
        let log = server.commit_log();
        let epochs: Vec<u64> = log.iter().map(|c| c.epoch).collect();
        assert_eq!(epochs, vec![1, 2, 3]);
        assert_eq!(log[2].fingerprint, server.fingerprint());
    }

    #[test]
    fn shared_cache_hits_across_sessions() {
        // Bare xqcore has no planner installed, so plans (and hence cache
        // traffic) only exist under the facade; the cross-session hit
        // assertion lives in tests/server_isolation.rs. Here: two
        // sessions answering the same query stays correct either way.
        let server = server_with_doc();
        let a = server.open_session().unwrap();
        let b = server.open_session().unwrap();
        a.execute("count($doc/log/*)").unwrap();
        let (hits_before, misses_before) = server.plan_cache().stats();
        b.execute("count($doc/log/*)").unwrap();
        let (hits_after, misses_after) = server.plan_cache().stats();
        if crate::planner::default_planner().is_some() {
            assert!(hits_after > hits_before);
        } else {
            assert_eq!((hits_after, misses_after), (hits_before, misses_before));
        }
    }

    #[test]
    fn stats_reflect_traffic() {
        let server = server_with_doc();
        let before = server.stats();
        let s = server.open_session().unwrap();
        s.execute("1 + 1").unwrap();
        s.execute("insert { <e/> } into { $doc/log }").unwrap();
        let after = server.stats();
        assert_eq!(after.reads, before.reads + 1);
        assert_eq!(after.writes, before.writes + 1);
        assert_eq!(after.inflight, 0);
        assert_eq!(after.snapshot_pins, 0);
        assert!(after.epoch > before.epoch);
        let json = after.to_json();
        assert!(json.starts_with("{\"epoch\":"));
        assert!(json.contains("\"read_p50_ns\":"));
    }
}
