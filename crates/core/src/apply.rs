//! Applying an update list to the store — the three semantics of §3.2.
//!
//! * **Ordered**: requests apply in Δ order. Simple and deterministic, but
//!   most constraining for an optimizer.
//! * **Nondeterministic**: requests apply in an arbitrary permutation. We
//!   draw the permutation from a seeded RNG so runs are reproducible when a
//!   seed is fixed, while still exercising genuinely arbitrary orders.
//! * **Conflict-detection**: two-phase — linear-time verification
//!   ([`crate::conflict::verify_conflict_free`]), then order-independent
//!   application (we use Δ order, which by verification is equivalent to
//!   any other).
//!
//! Application is **atomic** in every mode: each call runs inside a store
//! undo frame ([`Store::begin_frame`]), and when any request fails its
//! precondition the frame is rolled back before the error propagates, so
//! the paper's `apply Δ to store0` judgment either produces the updated
//! store or leaves `store0` untouched — never a prefix of Δ.

use crate::conflict::verify_conflict_free;
use crate::update::Delta;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use xqdm::{Store, XdmResult};

pub use xqsyn::ast::SnapMode;

/// Apply `delta` to `store` under the given snap mode, atomically: on
/// error the store is rolled back to its state at the call. `seed` drives
/// the nondeterministic permutation (callers thread a per-engine counter
/// through so successive snaps use different permutations).
pub fn apply_delta(store: &mut Store, delta: Delta, mode: SnapMode, seed: u64) -> XdmResult<()> {
    // Conflict verification reads only the Δ, never the store, so it runs
    // before the frame opens; a rejected Δ costs no journal traffic.
    if mode == SnapMode::ConflictDetection {
        verify_conflict_free(&delta)?;
    }
    let requests = match mode {
        SnapMode::Nondeterministic => {
            let mut requests = delta.into_requests();
            let mut rng = StdRng::seed_from_u64(seed);
            requests.shuffle(&mut rng);
            requests
        }
        SnapMode::Ordered | SnapMode::ConflictDetection => delta.into_requests(),
    };
    store.begin_frame();
    store.journal_reserve(requests.len());
    for req in &requests {
        if let Err(e) = req.apply(store) {
            store.rollback_frame();
            return Err(e);
        }
    }
    store.commit_frame();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::UpdateRequest;
    use xqdm::store::InsertAnchor;
    use xqdm::QName;

    /// Build a parent and k fresh children plus a Δ appending each child via
    /// a distinct anchor (conflict-free).
    fn conflict_free_delta(k: usize) -> (Store, xqdm::NodeId, Delta) {
        let mut s = Store::new();
        let p = s.new_element(QName::local("p"));
        let first = s.new_element(QName::local("c0"));
        s.append_child(p, first).unwrap();
        let mut d = Delta::new();
        let mut anchor = first;
        for i in 1..=k {
            let c = s.new_element(QName::local(format!("c{i}")));
            d.push(UpdateRequest::Insert {
                nodes: vec![c],
                parent: p,
                anchor: InsertAnchor::After(anchor),
            });
            anchor = c;
        }
        (s, p, d)
    }

    #[test]
    fn ordered_applies_in_delta_order() {
        let (mut s, p, d) = conflict_free_delta(4);
        apply_delta(&mut s, d, SnapMode::Ordered, 0).unwrap();
        let names: Vec<String> = s
            .children(p)
            .unwrap()
            .iter()
            .map(|&c| s.name(c).unwrap().unwrap().local.clone())
            .collect();
        assert_eq!(names, vec!["c0", "c1", "c2", "c3", "c4"]);
    }

    #[test]
    fn conflict_detection_accepts_conflict_free() {
        let (mut s, p, d) = conflict_free_delta(4);
        apply_delta(&mut s, d, SnapMode::ConflictDetection, 0).unwrap();
        assert_eq!(s.children(p).unwrap().len(), 5);
    }

    #[test]
    fn conflict_detection_rejects_conflicting() {
        let mut s = Store::new();
        let p = s.new_element(QName::local("p"));
        let a = s.new_element(QName::local("a"));
        let b = s.new_element(QName::local("b"));
        let mut d = Delta::new();
        d.push(UpdateRequest::Insert {
            nodes: vec![a],
            parent: p,
            anchor: InsertAnchor::Last,
        });
        d.push(UpdateRequest::Insert {
            nodes: vec![b],
            parent: p,
            anchor: InsertAnchor::Last,
        });
        let err = apply_delta(&mut s, d, SnapMode::ConflictDetection, 0).unwrap_err();
        assert_eq!(err.code, "XQB0010");
        // Verification failed => nothing was applied.
        assert!(s.children(p).unwrap().is_empty());
    }

    #[test]
    fn nondeterministic_order_varies_with_seed_but_both_succeed() {
        // Independent renames commute: every permutation gives the same
        // result, so nondeterministic mode must succeed for any seed.
        for seed in 0..8 {
            let mut s = Store::new();
            let nodes: Vec<_> = (0..6)
                .map(|i| s.new_element(QName::local(format!("n{i}"))))
                .collect();
            let d: Delta = nodes
                .iter()
                .enumerate()
                .map(|(i, &n)| UpdateRequest::Rename {
                    node: n,
                    name: QName::local(format!("r{i}")),
                })
                .collect();
            apply_delta(&mut s, d, SnapMode::Nondeterministic, seed).unwrap();
            for (i, &n) in nodes.iter().enumerate() {
                assert_eq!(s.name(n).unwrap().unwrap().local, format!("r{i}"));
            }
        }
    }

    #[test]
    fn nondeterministic_exposes_order_dependence() {
        // Two appends to the same parent land in seed-dependent order:
        // collect the child orders over several seeds and check both
        // outcomes occur — that's what "arbitrary order" means.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..32 {
            let mut s = Store::new();
            let p = s.new_element(QName::local("p"));
            let a = s.new_element(QName::local("a"));
            let b = s.new_element(QName::local("b"));
            let mut d = Delta::new();
            d.push(UpdateRequest::Insert {
                nodes: vec![a],
                parent: p,
                anchor: InsertAnchor::Last,
            });
            d.push(UpdateRequest::Insert {
                nodes: vec![b],
                parent: p,
                anchor: InsertAnchor::Last,
            });
            apply_delta(&mut s, d, SnapMode::Nondeterministic, seed).unwrap();
            let order: Vec<String> = s
                .children(p)
                .unwrap()
                .iter()
                .map(|&c| s.name(c).unwrap().unwrap().local.clone())
                .collect();
            seen.insert(order.join(","));
        }
        assert_eq!(
            seen.len(),
            2,
            "expected both application orders, saw {seen:?}"
        );
    }
}
