//! The dynamic semantics of XQuery! (paper §3.4 and Appendix B).
//!
//! The paper's judgment is
//!
//! ```text
//! store0; dynEnv ⊢ Expr ⇒ value; Δ; store1
//! ```
//!
//! Here the store is threaded as `&mut Store`, the environment as
//! `&mut DynEnv` (with balanced push/pop around binders), and Δ is kept on
//! the **stack of update lists** that §4.1 describes as the actual
//! implementation strategy: every update operator appends to the top list;
//! `snap` pushes a fresh list, evaluates its body, pops, and applies. The
//! recursion of `eval` *is* the paper's "stack-like behavior ... built into
//! the recursive machinery of the deduction process".
//!
//! Evaluation order is the **strict left-to-right order** the paper
//! specifies for a language with side effects (§2.4): every rule with two
//! sub-expressions evaluates the first before the second.

use crate::apply::apply_delta;
use crate::env::{DynEnv, Focus};
use crate::functions;
use crate::limits::{self, LimitGuard, Limits, TripKind};
use crate::obs;
use crate::planner::FunctionExecutor;
use crate::update::{Delta, UpdateRequest};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use xqdm::atomic::{arithmetic, negate, value_compare, Atomic, CompareOp};
use xqdm::item::{self, Item, Sequence};
use xqdm::seq;
use xqdm::store::InsertAnchor;
use xqdm::{KernelTest, NodeId, NodeKind, QName, Scratch, Store, XdmError, XdmResult};
use xqsyn::ast::{Axis, NodeCompOp, NodeTest, Quantifier, SnapMode};
use xqsyn::core::{Core, CoreFunction, CoreInsertLoc, CoreName, CoreProgram};

/// Stack size for the evaluation thread. User functions may recurse, and
/// a runaway recursion should surface as an error (`XQB0040`), not a stack
/// overflow: the configurable depth limit ([`Limits::max_depth`], default
/// [`limits::DEFAULT_MAX_DEPTH`]) counts `eval` nesting, and
/// [`Evaluator::eval_program`] / [`Evaluator::eval_query`] run on a
/// dedicated thread whose stack comfortably fits the default depth even
/// with debug-build frame sizes. Raising the limit far beyond the default
/// needs a correspondingly larger stack.
const EVAL_STACK_BYTES: usize = 64 << 20;

/// Run `f` on a scoped thread with a large stack, so deep (but bounded)
/// query recursion cannot overflow a small caller stack — the 2 MiB default
/// of test threads in particular.
fn with_eval_stack<R: Send>(f: impl FnOnce() -> R + Send) -> R {
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name("xquery-eval".into())
            .stack_size(EVAL_STACK_BYTES)
            .spawn_scoped(scope, f)
            .expect("spawn evaluation thread")
            .join()
            .unwrap_or_else(|p| std::panic::resume_unwind(p))
    })
}

/// Execution statistics for one evaluation (experiment instrumentation
/// and host diagnostics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Snap scopes closed (including the implicit top-level one).
    pub snaps_closed: u64,
    /// Update requests *emitted* (appended to some Δ). A semantic counter:
    /// identical across interpreted/compiled/parallel execution. On a
    /// successful run it equals [`EvalStats::requests_applied`] — every
    /// pending request is applied exactly once when its snap closes; the
    /// two diverge only on error paths, where open scopes discard their Δ.
    pub requests_emitted: u64,
    /// Update requests applied to the store.
    pub requests_applied: u64,
    /// Deepest simultaneous Δ-stack nesting observed.
    pub max_snap_depth: usize,
    /// Compiled plan nodes executed (0 under pure interpretation).
    pub plan_nodes_executed: u64,
    /// Hash-join / outer-join-group-by operators executed.
    pub joins_executed: u64,
    /// Effect-free regions that actually fanned out over worker threads.
    /// A *strategy* counter (like `plan_nodes_executed`): it varies with
    /// the thread setting and is excluded from determinism comparisons.
    pub par_regions: u64,
    /// Items evaluated inside those regions (strategy counter).
    pub par_items: u64,
    /// Batch path-step kernel invocations (strategy counter: 0 under
    /// pure interpretation).
    pub batch_steps: u64,
    /// Nodes produced by those kernel invocations, pre-dedup (strategy
    /// counter).
    pub batch_nodes: u64,
    /// Secondary-index scans the executor chose over a batch kernel
    /// (strategy counter; DESIGN.md §17).
    pub idx_scans: u64,
    /// Nodes those index scans emitted, post-containment-filter but
    /// pre-dedup (strategy counter).
    pub idx_hits: u64,
}

/// The evaluator: function table, globals, and the Δ stack.
pub struct Evaluator {
    functions: HashMap<(String, usize), CoreFunction>,
    globals: HashMap<String, Sequence>,
    delta_stack: Vec<Delta>,
    /// Per-snap seed counter for the nondeterministic application order.
    snap_counter: u64,
    base_seed: u64,
    depth: usize,
    stats: EvalStats,
    /// Hook running calls to functions whose bodies compiled to a plan
    /// (installed by a `CompiledProgram` for the duration of its run).
    function_executor: Option<Arc<dyn FunctionExecutor>>,
    /// Worker-thread budget for effect-free regions; 1 = sequential.
    threads: usize,
    /// Lazily computed effect analysis over the registered functions,
    /// backing the parallel gate. Invalidated when functions change.
    effects: Option<crate::effects::EffectAnalysis>,
    /// Observability state (trace spans, per-node profiling). `None` — the
    /// default — is the zero-cost-when-off fast path: every hook below is
    /// a single `Option` discriminant check.
    obs: Option<Box<EvalObs>>,
    /// Resource limits in force (DESIGN.md §12). `guard` is the armed
    /// runtime check, re-armed at each program-scope entry so fuel and
    /// deadline measure one run.
    limits: Limits,
    guard: LimitGuard,
    /// Reusable buffers for document-order sorting and the batch step
    /// kernels (DESIGN.md §14): one arena per evaluation, threaded into
    /// every `sort_and_dedup_with` call so steady-state path evaluation
    /// stops allocating.
    scratch: Scratch,
}

/// One open profiled plan node: enough to compute inclusive wall time and
/// the self-vs-children split of Δ emissions on exit.
struct NodeFrame {
    start: Instant,
    /// `stats.requests_emitted` at entry.
    emitted0: u64,
    /// Sum of the *inclusive* emissions of direct profiled children.
    child_emitted: u64,
    /// `stats.par_regions` / `stats.par_items` at entry.
    par_regions0: u64,
    par_items0: u64,
    /// `stats.batch_steps` / `stats.batch_nodes` at entry.
    batch_steps0: u64,
    batch_nodes0: u64,
    /// `stats.idx_scans` / `stats.idx_hits` at entry.
    idx_scans0: u64,
    idx_hits0: u64,
    /// Input cardinality reported via [`Evaluator::note_input`].
    input_rows: u64,
}

/// Trace + profiling state, boxed behind `Evaluator::obs` so the common
/// (observability off) case pays one pointer of space and one branch of
/// time.
struct EvalObs {
    /// Span sink plus the engine-level parent span id, when tracing.
    trace: Option<(Arc<obs::TraceSink>, Option<u64>)>,
    /// Open span ids, innermost last.
    span_stack: Vec<u64>,
    /// Per-node counters, when profiling (`explain_analyze`).
    profile: Option<obs::Profile>,
    /// Open profiled-node frames, innermost last.
    frames: Vec<NodeFrame>,
}

impl EvalObs {
    fn new() -> Box<EvalObs> {
        Box::new(EvalObs {
            trace: None,
            span_stack: Vec::new(),
            profile: None,
            frames: Vec::new(),
        })
    }
}

impl Evaluator {
    /// Build an evaluator for a program's function declarations.
    pub fn new(program: &CoreProgram) -> Self {
        let mut functions = HashMap::new();
        for f in &program.functions {
            functions.insert((f.name.clone(), f.params.len()), f.clone());
        }
        let limits = Limits::from_env();
        Evaluator {
            functions,
            globals: HashMap::new(),
            delta_stack: Vec::new(),
            snap_counter: 0,
            base_seed: 0x5eed,
            depth: 0,
            stats: EvalStats::default(),
            function_executor: None,
            threads: crate::par::threads_from_env(),
            effects: None,
            obs: None,
            limits,
            guard: LimitGuard::new(&limits),
            scratch: Scratch::new(),
        }
    }

    /// An evaluator with no user functions (for direct expression
    /// evaluation in tests and tools).
    pub fn bare() -> Self {
        let limits = Limits::from_env();
        Evaluator {
            functions: HashMap::new(),
            globals: HashMap::new(),
            delta_stack: Vec::new(),
            snap_counter: 0,
            base_seed: 0x5eed,
            depth: 0,
            stats: EvalStats::default(),
            function_executor: None,
            threads: crate::par::threads_from_env(),
            effects: None,
            obs: None,
            limits,
            guard: LimitGuard::new(&limits),
            scratch: Scratch::new(),
        }
    }

    /// Statistics accumulated since construction (snaps closed, requests
    /// applied, deepest snap nesting).
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// Fix the seed driving nondeterministic-mode permutations.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Set the worker-thread budget for effect-free regions (1 =
    /// sequential; clamped to [`crate::par::MAX_THREADS`]). The default
    /// comes from `XQB_THREADS` ([`crate::par::threads_from_env`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.clamp(1, crate::par::MAX_THREADS);
        self
    }

    /// The configured worker-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Install resource limits (DESIGN.md §12) and arm a fresh guard. The
    /// default comes from `XQB_MAX_DEPTH` / `XQB_FUEL` / `XQB_DEADLINE_MS`
    /// / `XQB_MEMORY_ITEMS` ([`Limits::from_env`]).
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self.guard = LimitGuard::new(&limits);
        self
    }

    /// The resource limits in force.
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// The armed cooperative limit guard (shared with parallel workers).
    pub fn guard(&self) -> &LimitGuard {
        &self.guard
    }

    /// One cooperative limit check: a unit of fuel, a periodic deadline
    /// poll, and trip observation. Plan executors call this once per plan
    /// node; the interpreter once per `eval` step. A single branch when no
    /// fuel/deadline/memory limit is armed.
    #[inline]
    pub fn limit_tick(&self) -> XdmResult<()> {
        self.guard.tick()
    }

    /// The read-only context parallel workers evaluate under.
    pub fn pure_ctx(&self) -> crate::par::PureCtx<'_> {
        crate::par::PureCtx {
            functions: &self.functions,
            globals: &self.globals,
            guard: &self.guard,
            max_depth: self.limits.max_depth,
        }
    }

    /// The current `eval` nesting depth — parallel workers start their
    /// recursion counter here so the XQB0040 limit fires at the same
    /// nesting a sequential evaluation would report.
    pub fn nesting_depth(&self) -> usize {
        self.depth
    }

    /// Record one fanned-out region of `items` iterations.
    pub fn note_par_region(&mut self, items: usize) {
        self.stats.par_regions += 1;
        self.stats.par_items += items as u64;
    }

    /// The parallel gate: is fan-out enabled (threads ≥ 2) *and* is `body`
    /// provably safe to evaluate on workers sharing `&Store`? Consults the
    /// lazily-cached effect analysis over the registered functions; see
    /// [`crate::par::par_safe`] for the judgment itself.
    pub fn par_candidate(&mut self, body: &Core) -> bool {
        if self.threads < 2 {
            return false;
        }
        if self.effects.is_none() {
            self.effects = Some(crate::effects::EffectAnalysis::for_functions(
                self.functions.values(),
            ));
        }
        let analysis = self.effects.as_ref().expect("just computed");
        crate::par::par_safe(body, analysis, &self.functions)
    }

    /// Resume the per-snap seed counter from a previous evaluation. The
    /// engine persists the counter across runs so that two snaps — in the
    /// same run or in different runs of one engine — never reuse a
    /// nondeterministic application seed.
    pub fn with_snap_counter(mut self, counter: u64) -> Self {
        self.snap_counter = counter;
        self
    }

    /// The per-snap seed counter after the snaps closed so far (see
    /// [`Evaluator::with_snap_counter`]).
    pub fn snap_counter(&self) -> u64 {
        self.snap_counter
    }

    /// Define a global variable (module prolog or host binding).
    pub fn bind_global(&mut self, name: impl Into<String>, value: Sequence) {
        self.globals.insert(name.into(), value);
    }

    /// Read a global (used by tests and the engine facade).
    pub fn global(&self, name: &str) -> Option<&Sequence> {
        self.globals.get(name)
    }

    /// Register an additional function (e.g. from a host-loaded module).
    /// Does not override a same-name/arity function already present —
    /// program-local declarations take precedence over module ones.
    pub fn register_function(&mut self, func: CoreFunction) {
        // The function table feeds the parallel gate's effect analysis.
        self.effects = None;
        self.functions
            .entry((func.name.clone(), func.params.len()))
            .or_insert(func);
    }

    /// Evaluate a whole program: globals in order, then the body inside the
    /// **implicit top-level snap** (§2.3: "a snap is always implicitly
    /// present around the top-level query").
    pub fn eval_program(
        &mut self,
        store: &mut Store,
        program: &CoreProgram,
    ) -> XdmResult<Sequence> {
        self.run_in_program_scope(store, move |ev, store, env| {
            for (name, init) in &program.variables {
                let v = ev.eval(store, env, init)?;
                ev.globals.insert(name.clone(), v);
            }
            ev.eval(store, env, &program.body)
        })
    }

    /// Run `f` the way a whole program runs: on the dedicated big-stack
    /// thread, inside the implicit top-level snap (§2.3), whose Δ is
    /// applied in ordered mode with the next snap seed on success and
    /// discarded on error. This is the shared program-scope harness for
    /// both the interpreter ([`Evaluator::eval_program`]) and compiled
    /// plans (`xqalg`'s `CompiledProgram::execute`) — sharing it is what
    /// guarantees the two paths agree on stats, seeds, and Δ discipline.
    pub fn run_in_program_scope<F>(&mut self, store: &mut Store, f: F) -> XdmResult<Sequence>
    where
        F: FnOnce(&mut Evaluator, &mut Store, &mut DynEnv) -> XdmResult<Sequence> + Send,
    {
        // Re-arm the guard so fuel, memory, and the wall-clock deadline
        // measure this run alone (and a trip from a previous run on the
        // same evaluator does not leak into this one).
        self.guard = LimitGuard::new(&self.limits);
        with_eval_stack(move || {
            // The implicit snap also covers prolog variable initializers, so
            // side-effecting initializers behave like the body. It is not
            // counted toward max_snap_depth (only explicit snaps are).
            self.delta_stack.push(Delta::new());
            self.obs_span_begin("snap:implicit");
            let mut env = DynEnv::new();
            match f(&mut *self, store, &mut env) {
                Ok(value) => {
                    self.apply_snap_scope(store, SnapMode::Ordered)?;
                    Ok(value)
                }
                Err(e) => {
                    self.end_snap_scope();
                    Err(e)
                }
            }
        })
    }

    /// Evaluate one expression inside an implicit snap (convenience for
    /// query fragments).
    pub fn eval_query(
        &mut self,
        store: &mut Store,
        env: &mut DynEnv,
        expr: &Core,
    ) -> XdmResult<Sequence> {
        self.guard = LimitGuard::new(&self.limits);
        with_eval_stack(move || {
            self.delta_stack.push(Delta::new());
            self.obs_span_begin("snap:implicit");
            match self.eval(store, env, expr) {
                Ok(value) => {
                    self.apply_snap_scope(store, SnapMode::Ordered)?;
                    Ok(value)
                }
                Err(e) => {
                    self.end_snap_scope();
                    Err(e)
                }
            }
        })
    }

    /// Open a Δ scope (as `snap` does) without evaluating anything. For
    /// plan executors (`xqalg`) that drive `eval` directly and need a
    /// surrounding snapshot scope; pair with [`Evaluator::end_snap_scope`]
    /// or [`Evaluator::apply_snap_scope`]. Counts toward the max-snap-depth
    /// statistic exactly as an explicit `snap` does.
    pub fn begin_snap_scope(&mut self) {
        self.delta_stack.push(Delta::new());
        self.obs_span_begin("snap");
        self.stats.max_snap_depth = self.stats.max_snap_depth.max(self.delta_stack.len());
    }

    /// Close the scope opened by [`Evaluator::begin_snap_scope`], returning
    /// the collected Δ (not yet applied). Use on error paths, where the Δ
    /// is discarded without counting as a closed snap.
    pub fn end_snap_scope(&mut self) -> Delta {
        self.obs_span_end();
        self.delta_stack.pop().expect("unbalanced end_snap_scope")
    }

    /// Close the current Δ scope **and apply it** under `mode` with the
    /// next snap seed, updating the snap statistics — the exact tail of
    /// the `Core::Snap` evaluation rule. Compiled `Snap` plan nodes go
    /// through here so their seed draw and stats match interpretation.
    pub fn apply_snap_scope(&mut self, store: &mut Store, mode: SnapMode) -> XdmResult<()> {
        let delta = self.delta_stack.pop().expect("unbalanced apply_snap_scope");
        self.stats.snaps_closed += 1;
        self.stats.requests_applied += delta.len() as u64;
        let seed = self.next_seed();
        self.obs_span_begin("apply");
        let r = apply_delta(store, delta, mode, seed);
        self.obs_span_end(); // apply
        self.obs_span_end(); // the enclosing snap span
        r
    }

    /// Install (or clear) the hook that executes compiled function bodies.
    pub fn set_function_executor(&mut self, executor: Option<Arc<dyn FunctionExecutor>>) {
        self.function_executor = executor;
    }

    /// Enter a nested evaluation frame from outside `eval` (plan executors
    /// calling back into compiled function bodies), enforcing the same
    /// recursion limit. Pair with [`Evaluator::exit_nested`] on success.
    pub fn enter_nested(&mut self) -> XdmResult<()> {
        self.depth += 1;
        if self.depth > self.limits.max_depth {
            self.depth -= 1;
            self.guard.note_trip(TripKind::Depth);
            return Err(limits::depth_error(self.limits.max_depth));
        }
        Ok(())
    }

    /// Leave the frame entered by [`Evaluator::enter_nested`].
    pub fn exit_nested(&mut self) {
        self.depth -= 1;
    }

    /// Record the execution of one compiled plan node.
    pub fn note_plan_node(&mut self) {
        self.stats.plan_nodes_executed += 1;
    }

    /// Record the execution of one join operator.
    pub fn note_join(&mut self) {
        self.stats.joins_executed += 1;
    }

    /// Record one batch step-kernel invocation that produced `nodes`
    /// nodes (pre-dedup). Feeds both the run statistics and, when
    /// profiling, the innermost plan node's `batch=` counters.
    pub fn note_batch(&mut self, nodes: u64) {
        self.stats.batch_steps += 1;
        self.stats.batch_nodes += nodes;
    }

    /// Record one index-driven path step that emitted `hits` nodes
    /// (post-containment-filter, pre-dedup). Feeds both the run
    /// statistics and, when profiling, the innermost plan node's `idx=`
    /// counters.
    pub fn note_idx(&mut self, hits: u64) {
        self.stats.idx_scans += 1;
        self.stats.idx_hits += hits;
    }

    /// The evaluation's scratch arena (document-order sort workspace and
    /// batch-kernel buffers), for plan executors that call the store
    /// kernels directly.
    pub fn scratch_mut(&mut self) -> &mut Scratch {
        &mut self.scratch
    }

    // ------------------------------------------------------------------
    // observability hooks (DESIGN.md §10)
    // ------------------------------------------------------------------

    /// Attach a trace sink: snap scopes evaluated from here on emit
    /// begin/end span events, parented under `parent` (typically the
    /// engine's per-run span).
    pub fn set_trace(&mut self, sink: Arc<obs::TraceSink>, parent: Option<u64>) {
        self.obs.get_or_insert_with(EvalObs::new).trace = Some((sink, parent));
    }

    /// Turn on per-plan-node profiling: [`Evaluator::node_enter`] /
    /// [`Evaluator::node_exit`] record into a fresh [`obs::Profile`],
    /// retrievable with [`Evaluator::take_profile`].
    pub fn enable_profiling(&mut self) {
        self.obs.get_or_insert_with(EvalObs::new).profile = Some(obs::Profile::default());
    }

    /// Is per-node profiling on? Plan executors check this once per node
    /// and skip the enter/exit bookkeeping entirely when it is off.
    pub fn profiling(&self) -> bool {
        self.obs.as_ref().is_some_and(|o| o.profile.is_some())
    }

    /// The profile recorded since [`Evaluator::enable_profiling`], if any.
    pub fn take_profile(&mut self) -> Option<obs::Profile> {
        self.obs.as_mut().and_then(|o| o.profile.take())
    }

    /// Open a profiled-node frame. Pair with [`Evaluator::node_exit`] on
    /// *every* path out of the node, success or error, or the self/child
    /// attribution of enclosing frames skews.
    pub fn node_enter(&mut self) {
        let emitted0 = self.stats.requests_emitted;
        let par_regions0 = self.stats.par_regions;
        let par_items0 = self.stats.par_items;
        let batch_steps0 = self.stats.batch_steps;
        let batch_nodes0 = self.stats.batch_nodes;
        let idx_scans0 = self.stats.idx_scans;
        let idx_hits0 = self.stats.idx_hits;
        if let Some(o) = self.obs.as_mut() {
            if o.profile.is_some() {
                o.frames.push(NodeFrame {
                    start: Instant::now(),
                    emitted0,
                    child_emitted: 0,
                    par_regions0,
                    par_items0,
                    batch_steps0,
                    batch_nodes0,
                    idx_scans0,
                    idx_hits0,
                    input_rows: 0,
                });
            }
        }
    }

    /// Report the input cardinality of the innermost open profiled node
    /// (loop source length, join outer length, condition rows).
    pub fn note_input(&mut self, rows: u64) {
        if let Some(o) = self.obs.as_mut() {
            if let Some(frame) = o.frames.last_mut() {
                frame.input_rows += rows;
            }
        }
    }

    /// Close the innermost profiled-node frame and record it under plan
    /// node `id`: one call, inclusive wall time, input/output cardinality,
    /// inclusive and self Δ emissions, and par attribution.
    pub fn node_exit(&mut self, id: usize, output_rows: u64) {
        let emitted_now = self.stats.requests_emitted;
        let par_regions_now = self.stats.par_regions;
        let par_items_now = self.stats.par_items;
        let batch_steps_now = self.stats.batch_steps;
        let batch_nodes_now = self.stats.batch_nodes;
        let idx_scans_now = self.stats.idx_scans;
        let idx_hits_now = self.stats.idx_hits;
        let Some(o) = self.obs.as_mut() else { return };
        let Some(frame) = o.frames.pop() else { return };
        let wall_ns = u64::try_from(frame.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let delta_incl = emitted_now - frame.emitted0;
        let delta_self = delta_incl - frame.child_emitted;
        if let Some(parent) = o.frames.last_mut() {
            parent.child_emitted += delta_incl;
        }
        if let Some(profile) = o.profile.as_mut() {
            let n = profile.node_mut(id);
            n.calls += 1;
            n.wall_ns += wall_ns;
            n.input_rows += frame.input_rows;
            n.output_rows += output_rows;
            n.delta_incl += delta_incl;
            n.delta_self += delta_self;
            n.par_regions += par_regions_now - frame.par_regions0;
            n.par_items += par_items_now - frame.par_items0;
            n.batch_steps += batch_steps_now - frame.batch_steps0;
            n.batch_nodes += batch_nodes_now - frame.batch_nodes0;
            n.idx_scans += idx_scans_now - frame.idx_scans0;
            n.idx_hits += idx_hits_now - frame.idx_hits0;
        }
    }

    /// Begin a trace span (no-op without a sink). Balanced by
    /// [`Evaluator::obs_span_end`]; the snap-scope helpers below call these
    /// symmetrically, so the span stack mirrors the Δ stack.
    fn obs_span_begin(&mut self, name: &str) {
        if let Some(o) = self.obs.as_mut() {
            if let Some((sink, root)) = &o.trace {
                let parent = o.span_stack.last().copied().or(*root);
                let id = sink.begin(name, parent);
                o.span_stack.push(id);
            }
        }
    }

    /// End the innermost open trace span (no-op without a sink).
    fn obs_span_end(&mut self) {
        if let Some(o) = self.obs.as_mut() {
            if let Some((sink, _)) = &o.trace {
                if let Some(id) = o.span_stack.pop() {
                    sink.end(id);
                }
            }
        }
    }

    /// Draw the next per-snap seed (public so plan executors apply deltas
    /// with the same seed discipline as the evaluator itself).
    pub fn next_apply_seed(&mut self) -> u64 {
        self.next_seed()
    }

    fn next_seed(&mut self) -> u64 {
        self.snap_counter += 1;
        self.base_seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(self.snap_counter)
    }

    /// Append an update request to the innermost Δ — the single chokepoint
    /// for every update operator, so `requests_emitted` counts every
    /// request exactly once regardless of execution strategy.
    fn push_request(&mut self, req: UpdateRequest) -> XdmResult<()> {
        // Pending-update lists are the other unbounded buffer a runaway
        // query can grow; each entry costs one unit of memory budget.
        self.guard.charge(1)?;
        self.stats.requests_emitted += 1;
        self.delta_stack
            .last_mut()
            .expect("update evaluated outside any snap scope")
            .push(req);
        Ok(())
    }

    /// The core judgment. Left-to-right, store-threading, Δ-appending.
    pub fn eval(
        &mut self,
        store: &mut Store,
        env: &mut DynEnv,
        expr: &Core,
    ) -> XdmResult<Sequence> {
        self.depth += 1;
        if self.depth > self.limits.max_depth {
            self.depth -= 1;
            self.guard.note_trip(TripKind::Depth);
            return Err(limits::depth_error(self.limits.max_depth));
        }
        if let Err(e) = self.guard.tick() {
            self.depth -= 1;
            return Err(e);
        }
        let r = self.eval_inner(store, env, expr);
        self.depth -= 1;
        r
    }

    fn eval_inner(
        &mut self,
        store: &mut Store,
        env: &mut DynEnv,
        expr: &Core,
    ) -> XdmResult<Sequence> {
        match expr {
            Core::Const(a) => Ok(seq![Item::Atomic(a.clone())]),
            Core::Var(name) => match env.var(name) {
                Ok(v) => Ok(v.clone()),
                Err(e) => self.globals.get(name).cloned().ok_or(e),
            },
            Core::ContextItem => Ok(seq![env.focus()?.item.clone()]),
            // The paper's sequence rule: e1 fully evaluated before e2,
            // values and Δs concatenated in order.
            Core::Seq(items) => {
                let mut out = Sequence::new();
                for e in items {
                    let v = self.eval(store, env, e)?;
                    self.guard.charge(v.len() as u64)?;
                    out.extend(v);
                }
                Ok(out)
            }
            Core::For {
                var,
                position,
                source,
                body,
            } => {
                let src = self.eval(store, env, source)?;
                // Parallel fan-out for effect-free bodies (DESIGN.md §9):
                // the source was evaluated sequentially above (it may have
                // effects); the body runs on workers sharing `&Store` only
                // when the purity gate proves that indistinguishable.
                if src.len() >= crate::par::PAR_MIN_ITEMS && self.par_candidate(body) {
                    return self.par_for(store, env, var, position.as_deref(), &src, body);
                }
                let mut out = Sequence::new();
                for (i, it) in src.into_iter().enumerate() {
                    env.push_var(var.clone(), seq![it]);
                    if let Some(p) = position {
                        env.push_var(p.clone(), seq![Item::integer((i + 1) as i64)]);
                    }
                    let r = self.eval(store, env, body);
                    if position.is_some() {
                        env.pop_var();
                    }
                    env.pop_var();
                    let v = r?;
                    self.guard.charge(v.len() as u64)?;
                    out.extend(v);
                }
                Ok(out)
            }
            Core::Let { var, value, body } => {
                let v = self.eval(store, env, value)?;
                env.push_var(var.clone(), v);
                let r = self.eval(store, env, body);
                env.pop_var();
                r
            }
            Core::If(cond, then, els) => {
                let c = self.eval(store, env, cond)?;
                if item::effective_boolean(&c, store)? {
                    self.eval(store, env, then)
                } else {
                    self.eval(store, env, els)
                }
            }
            Core::Quantified {
                quantifier,
                var,
                source,
                satisfies,
            } => {
                let src = self.eval(store, env, source)?;
                let mut result = matches!(quantifier, Quantifier::Every);
                for it in src {
                    env.push_var(var.clone(), seq![it]);
                    let s = self.eval(store, env, satisfies);
                    env.pop_var();
                    let holds = item::effective_boolean(&s?, store)?;
                    match quantifier {
                        Quantifier::Some if holds => {
                            result = true;
                            break;
                        }
                        Quantifier::Every if !holds => {
                            result = false;
                            break;
                        }
                        _ => {}
                    }
                }
                Ok(seq![Item::boolean(result)])
            }
            Core::SortedFor {
                var,
                source,
                keys,
                body,
            } => {
                let src = self.eval(store, env, source)?;
                // Compute sort keys per binding (left-to-right, so key
                // expressions may have effects like any other expression).
                let mut keyed: Vec<(Vec<Option<Atomic>>, Item)> = Vec::with_capacity(src.len());
                for it in src {
                    env.push_var(var.clone(), seq![it.clone()]);
                    let mut ks = Vec::with_capacity(keys.len());
                    for k in keys {
                        let kv = self.eval(store, env, &k.key);
                        match kv {
                            Ok(kv) => {
                                let a = match item::zero_or_one(kv) {
                                    Ok(a) => a,
                                    Err(e) => {
                                        env.pop_var();
                                        return Err(e);
                                    }
                                };
                                let a = match a.map(|x| x.atomize(store)).transpose() {
                                    Ok(a) => a,
                                    Err(e) => {
                                        env.pop_var();
                                        return Err(e);
                                    }
                                };
                                ks.push(a);
                            }
                            Err(e) => {
                                env.pop_var();
                                return Err(e);
                            }
                        }
                    }
                    env.pop_var();
                    keyed.push((ks, it));
                }
                keyed.sort_by(|(ka, _), (kb, _)| {
                    for (i, (a, b)) in ka.iter().zip(kb).enumerate() {
                        let ord = cmp_keys(a, b);
                        let ord = if keys[i].ascending {
                            ord
                        } else {
                            ord.reverse()
                        };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                let mut out = Sequence::new();
                for (_, it) in keyed {
                    env.push_var(var.clone(), seq![it]);
                    let r = self.eval(store, env, body);
                    env.pop_var();
                    out.extend(r?);
                }
                Ok(out)
            }
            Core::Arith(op, l, r) => {
                let lv = self.eval(store, env, l)?;
                let rv = self.eval(store, env, r)?;
                let la = item::zero_or_one(lv)?
                    .map(|x| x.atomize(store))
                    .transpose()?;
                let ra = item::zero_or_one(rv)?
                    .map(|x| x.atomize(store))
                    .transpose()?;
                match (la, ra) {
                    (Some(a), Some(b)) => Ok(seq![Item::Atomic(arithmetic(*op, &a, &b)?)]),
                    _ => Ok(seq![]),
                }
            }
            Core::Neg(e) => {
                let v = self.eval(store, env, e)?;
                match item::zero_or_one(v)?
                    .map(|x| x.atomize(store))
                    .transpose()?
                {
                    Some(a) => Ok(seq![Item::Atomic(negate(&a)?)]),
                    None => Ok(seq![]),
                }
            }
            Core::GeneralComp(op, l, r) => {
                let lv = self.eval(store, env, l)?;
                let rv = self.eval(store, env, r)?;
                Ok(seq![Item::boolean(item::general_compare_seqs(
                    *op, &lv, &rv, store,
                )?)])
            }
            Core::ValueComp(op, l, r) => {
                let lv = self.eval(store, env, l)?;
                let rv = self.eval(store, env, r)?;
                let la = item::zero_or_one(lv)?
                    .map(|x| x.atomize(store))
                    .transpose()?;
                let ra = item::zero_or_one(rv)?
                    .map(|x| x.atomize(store))
                    .transpose()?;
                match (la, ra) {
                    (Some(a), Some(b)) => Ok(seq![Item::boolean(value_compare(*op, &a, &b)?)]),
                    _ => Ok(seq![]),
                }
            }
            Core::NodeComp(op, l, r) => {
                let lv = self.eval(store, env, l)?;
                let rv = self.eval(store, env, r)?;
                let ln = item::zero_or_one(lv)?;
                let rn = item::zero_or_one(rv)?;
                match (ln, rn) {
                    (Some(a), Some(b)) => {
                        let (a, b) = (require_node(a)?, require_node(b)?);
                        let res = match op {
                            NodeCompOp::Is => a == b,
                            NodeCompOp::Precedes => {
                                store.cmp_doc_order(a, b)? == std::cmp::Ordering::Less
                            }
                            NodeCompOp::Follows => {
                                store.cmp_doc_order(a, b)? == std::cmp::Ordering::Greater
                            }
                        };
                        Ok(seq![Item::boolean(res)])
                    }
                    _ => Ok(seq![]),
                }
            }
            Core::And(l, r) => {
                let lv = self.eval(store, env, l)?;
                if !item::effective_boolean(&lv, store)? {
                    return Ok(seq![Item::boolean(false)]);
                }
                let rv = self.eval(store, env, r)?;
                Ok(seq![Item::boolean(item::effective_boolean(&rv, store)?)])
            }
            Core::Or(l, r) => {
                let lv = self.eval(store, env, l)?;
                if item::effective_boolean(&lv, store)? {
                    return Ok(seq![Item::boolean(true)]);
                }
                let rv = self.eval(store, env, r)?;
                Ok(seq![Item::boolean(item::effective_boolean(&rv, store)?)])
            }
            Core::Union(l, r) => {
                let mut lv = self.eval(store, env, l)?;
                let rv = self.eval(store, env, r)?;
                lv.extend(rv);
                let mut nodes = item::all_nodes(&lv)?;
                store.sort_and_dedup_with(&mut nodes, &mut self.scratch)?;
                Ok(nodes.into_iter().map(Item::Node).collect())
            }
            Core::Range(l, r) => {
                let lv = self.eval(store, env, l)?;
                let rv = self.eval(store, env, r)?;
                let la = item::zero_or_one(lv)?
                    .map(|x| x.atomize(store))
                    .transpose()?;
                let ra = item::zero_or_one(rv)?
                    .map(|x| x.atomize(store))
                    .transpose()?;
                match (la, ra) {
                    (Some(a), Some(b)) => {
                        let (a, b) = (a.to_integer()?, b.to_integer()?);
                        // Pre-charge the span before materializing: `1 to
                        // 10000000000` must trip XQB0043, not exhaust RAM.
                        let span = b
                            .checked_sub(a)
                            .and_then(|d| d.checked_add(1))
                            .unwrap_or(i64::MAX)
                            .max(0) as u64;
                        self.guard.charge(span)?;
                        Ok((a..=b).map(Item::integer).collect())
                    }
                    _ => Ok(seq![]),
                }
            }
            Core::MapStep {
                base,
                axis,
                test,
                predicates,
            } => {
                let origins = self.eval(store, env, base)?;
                let mut out = Sequence::new();
                for origin in &origins {
                    let n = require_node(origin.clone())?;
                    let axis_nodes = gather_axis(store, n, *axis, test)?;
                    let mut items: Sequence = axis_nodes.into_iter().map(Item::Node).collect();
                    for pred in predicates {
                        items = self.filter_positional(store, env, items, pred)?;
                    }
                    out.extend(items);
                }
                let mut nodes = item::all_nodes(&out)?;
                store.sort_and_dedup_with(&mut nodes, &mut self.scratch)?;
                Ok(nodes.into_iter().map(Item::Node).collect())
            }
            Core::DocOrder(e) => {
                let v = self.eval(store, env, e)?;
                let mut nodes = item::all_nodes(&v)?;
                store.sort_and_dedup_with(&mut nodes, &mut self.scratch)?;
                Ok(nodes.into_iter().map(Item::Node).collect())
            }
            Core::Predicate { base, pred } => {
                let v = self.eval(store, env, base)?;
                self.filter_positional(store, env, v, pred)
            }
            Core::Call(name, args) => self.eval_call(store, env, name, args),
            Core::ElemCtor { name, content } => {
                let qname = self.eval_ctor_name(store, env, name)?;
                let content = self.eval(store, env, content)?;
                let node = construct_element(store, qname, &content)?;
                Ok(seq![Item::Node(node)])
            }
            Core::AttrCtor { name, content } => {
                let qname = self.eval_ctor_name(store, env, name)?;
                let v = self.eval(store, env, content)?;
                let parts: Vec<String> = item::atomize(&v, store)?
                    .into_iter()
                    .map(|a| a.string_value())
                    .collect();
                let attr = store.new_attribute(qname, parts.join(" "));
                Ok(seq![Item::Node(attr)])
            }
            Core::TextCtor(content) => {
                let v = self.eval(store, env, content)?;
                if v.is_empty() {
                    return Ok(seq![]);
                }
                let parts: Vec<String> = item::atomize(&v, store)?
                    .into_iter()
                    .map(|a| a.string_value())
                    .collect();
                let t = store.new_text(parts.join(" "));
                Ok(seq![Item::Node(t)])
            }
            Core::DocCtor(content) => {
                let v = self.eval(store, env, content)?;
                let doc = store.new_document();
                append_content(store, doc, &v, /*allow_attrs=*/ false)?;
                Ok(seq![Item::Node(doc)])
            }
            // ---------------- update operators (Appendix B) ----------------
            Core::Insert { source, location } => {
                // Rule order: Expr1 (source), then Expr2 (target), then the
                // InsertLocation judgment resolves (nodepar, nodepos).
                let src = self.eval(store, env, source)?;
                let nodes = content_to_nodes(store, &src)?;
                let target = self.eval(store, env, location.target())?;
                let t = item::exactly_one_node(target)?;
                let (parent, anchor) = resolve_insert_anchor(store, location, t)?;
                self.push_request(UpdateRequest::Insert {
                    nodes,
                    parent,
                    anchor,
                })?;
                Ok(seq![])
            }
            Core::Delete(target) => {
                let v = self.eval(store, env, target)?;
                // The paper's rule shows a single node; its own §2.3 example
                // deletes a whole sequence ($log/logentry), so we accept a
                // node sequence and emit one request per node, in order.
                for n in item::all_nodes(&v)? {
                    self.push_request(UpdateRequest::Delete { node: n })?;
                }
                Ok(seq![])
            }
            Core::Replace(target, with) => {
                // Appendix B: Δ3 = (Δ1, Δ2, insert(nodeseq, nodepar, node),
                //                   delete(node))
                let tv = self.eval(store, env, target)?;
                let node = item::exactly_one_node(tv)?;
                let wv = self.eval(store, env, with)?;
                let nodeseq = content_to_nodes(store, &wv)?;
                let parent = store
                    .parent(node)?
                    .ok_or_else(|| XdmError::precondition("replace target has no parent"))?;
                if matches!(store.kind(node)?, NodeKind::Attribute { .. }) {
                    // Attribute targets: the replacement must be attribute
                    // nodes, attached to the owner element (attribute order
                    // is insignificant, so no anchor is involved). The
                    // delete precedes the attach so a same-named
                    // replacement does not trip the duplicate check.
                    for &n in &nodeseq {
                        if !matches!(store.kind(n)?, NodeKind::Attribute { .. }) {
                            return Err(XdmError::type_error(
                                "replacing an attribute requires attribute content",
                            ));
                        }
                    }
                    self.push_request(UpdateRequest::Delete { node })?;
                    self.push_request(UpdateRequest::InsertAttributes {
                        nodes: nodeseq,
                        element: parent,
                    })?;
                } else {
                    self.push_request(UpdateRequest::Insert {
                        nodes: nodeseq,
                        parent,
                        anchor: InsertAnchor::After(node),
                    })?;
                    self.push_request(UpdateRequest::Delete { node })?;
                }
                Ok(seq![])
            }
            Core::ReplaceValue(target, with) => {
                // One setValue request: the target node keeps its
                // identity, only its string value changes. The source is
                // atomized and space-joined like attribute content.
                let tv = self.eval(store, env, target)?;
                let node = item::exactly_one_node(tv)?;
                match store.kind(node)? {
                    NodeKind::Text { .. } | NodeKind::Attribute { .. } => {}
                    // An update-family error (XQB0010 block), not a type
                    // error: the expression is well-typed, the target's
                    // node kind just has no settable value.
                    k => {
                        let k = k.kind_name();
                        return Err(XdmError::new(
                            "XQB0011",
                            format!(
                                "replace value of requires a text or attribute target, got a {k} node"
                            ),
                        ));
                    }
                }
                let wv = self.eval(store, env, with)?;
                let parts: Vec<String> = item::atomize(&wv, store)?
                    .into_iter()
                    .map(|a| a.string_value())
                    .collect();
                self.push_request(UpdateRequest::SetValue {
                    node,
                    value: parts.join(" "),
                })?;
                Ok(seq![])
            }
            Core::Rename(target, name) => {
                let tv = self.eval(store, env, target)?;
                let node = item::exactly_one_node(tv)?;
                let nv = self.eval(store, env, name)?;
                let name_str = item::exactly_one(nv)?.string_value(store)?;
                let qname = QName::parse(&name_str).ok_or_else(|| {
                    XdmError::value("XQDY0074", format!("\"{name_str}\" is not a valid QName"))
                })?;
                self.push_request(UpdateRequest::Rename { node, name: qname })?;
                Ok(seq![])
            }
            Core::Copy(e) => {
                let v = self.eval(store, env, e)?;
                let mut out = Sequence::with_capacity(v.len());
                for it in v {
                    out.push(match it {
                        Item::Node(n) => Item::Node(store.deep_copy(n)?),
                        atomic => atomic,
                    });
                }
                Ok(out)
            }
            Core::Snap(mode, body) => {
                // The snap rule: evaluate the body with a fresh Δ on top of
                // the stack, pop it, apply it. Nested snaps close first —
                // the recursion gives the paper's stack behavior for free.
                self.begin_snap_scope();
                match self.eval(store, env, body) {
                    Ok(value) => {
                        self.apply_snap_scope(store, *mode)?;
                        Ok(value)
                    }
                    Err(e) => {
                        self.end_snap_scope();
                        Err(e)
                    }
                }
            }
        }
    }

    /// Fan a pure `for` body out over the worker pool. Caller guarantees
    /// [`Evaluator::par_candidate`] admitted `body`. Values come back in
    /// input order ([`crate::par::par_map`]) and the first failing
    /// iteration's error wins ([`crate::par::merge_in_order`]) — exactly
    /// the sequential loop's observable behavior, since a pure body can
    /// leave no other trace.
    fn par_for(
        &mut self,
        store: &Store,
        env: &DynEnv,
        var: &str,
        position: Option<&str>,
        src: &[Item],
        body: &Core,
    ) -> XdmResult<Sequence> {
        self.note_par_region(src.len());
        let depth = self.depth;
        let threads = self.threads;
        let ctx = crate::par::PureCtx {
            functions: &self.functions,
            globals: &self.globals,
            guard: &self.guard,
            max_depth: self.limits.max_depth,
        };
        let results = crate::par::par_map(threads, env, src, |wenv, i, it| {
            wenv.push_var(var.to_string(), seq![it.clone()]);
            if let Some(p) = position {
                wenv.push_var(p.to_string(), seq![Item::integer((i + 1) as i64)]);
            }
            let r = crate::par::eval_pure(&ctx, store, wenv, depth, body);
            if position.is_some() {
                wenv.pop_var();
            }
            wenv.pop_var();
            r
        });
        crate::par::merge_in_order(results)
    }

    fn eval_call(
        &mut self,
        store: &mut Store,
        env: &mut DynEnv,
        name: &str,
        args: &[Core],
    ) -> XdmResult<Sequence> {
        // Arguments evaluate left to right (Appendix B's function rule),
        // regardless of whether the target is built-in or user-declared.
        let mut values = Vec::with_capacity(args.len());
        for a in args {
            values.push(self.eval(store, env, a)?);
        }
        if let Some(result) = functions::dispatch(name, values.clone(), store, env) {
            return result;
        }
        // Compiled function bodies run through the installed executor; a
        // miss hands the evaluated arguments back for interpretation.
        if let Some(executor) = self.function_executor.clone() {
            match executor.try_call(self, store, name, values) {
                Ok(result) => return result,
                Err(returned) => values = returned,
            }
        }
        let key = (name.to_string(), args.len());
        let func = match self.functions.get(&key) {
            Some(f) => f.clone(),
            None => {
                return Err(XdmError::new(
                    "XPST0017",
                    format!("undefined function {name}#{}", args.len()),
                ))
            }
        };
        // Function bodies see only their parameters and globals — build a
        // fresh environment rather than exposing the caller's locals.
        let mut fenv = DynEnv::new();
        for (p, v) in func.params.iter().zip(values) {
            fenv.push_var(p.clone(), v);
        }
        self.eval(store, &mut fenv, &func.body)
    }

    fn eval_ctor_name(
        &mut self,
        store: &mut Store,
        env: &mut DynEnv,
        name: &CoreName,
    ) -> XdmResult<QName> {
        let s = match name {
            CoreName::Fixed(s) => s.clone(),
            CoreName::Computed(e) => {
                let v = self.eval(store, env, e)?;
                item::exactly_one(v)?.string_value(store)?
            }
        };
        QName::parse(&s)
            .ok_or_else(|| XdmError::value("XQDY0074", format!("invalid QName \"{s}\"")))
    }

    /// Positional predicate filtering (XPath semantics): a numeric
    /// predicate value tests the context position; anything else is an
    /// effective-boolean-value test.
    fn filter_positional(
        &mut self,
        store: &mut Store,
        env: &mut DynEnv,
        items: Sequence,
        pred: &Core,
    ) -> XdmResult<Sequence> {
        // Fast path: a constant numeric predicate ([1], [2]...) needs no
        // per-item evaluation.
        if let Core::Const(a) = pred {
            if a.is_numeric() {
                let wanted = a.to_double()?;
                let idx = wanted as usize;
                if wanted.fract() == 0.0 && idx >= 1 && idx <= items.len() {
                    return Ok(seq![items[idx - 1].clone()]);
                }
                return Ok(seq![]);
            }
        }
        let size = items.len();
        let mut out = Sequence::new();
        for (i, it) in items.into_iter().enumerate() {
            env.push_focus(Focus {
                item: it.clone(),
                position: i + 1,
                size,
            });
            let v = self.eval(store, env, pred);
            env.pop_focus();
            let v = v?;
            let keep = match v.as_slice() {
                [Item::Atomic(a)] if a.is_numeric() => a.to_double()? == (i + 1) as f64,
                other => item::effective_boolean(other, store)?,
            };
            if keep {
                out.push(it);
            }
        }
        Ok(out)
    }
}

/// Turn an insert/replace source sequence into parentless nodes: node items
/// pass through (they are fresh copies — normalization wrapped the source
/// in `copy`), and atomic items become text nodes with adjacent atomics
/// space-joined, mirroring element-construction content semantics. The
/// paper's §2.5 counter relies on this: `replace {$d/text()} with {$d + 1}`
/// replaces a text node with the *number* `$d + 1`.
fn content_to_nodes(store: &mut Store, seq: &[Item]) -> XdmResult<Vec<NodeId>> {
    let mut out = Vec::new();
    let mut acc: Vec<String> = Vec::new();
    for it in seq {
        match it {
            Item::Atomic(a) => acc.push(a.string_value()),
            Item::Node(n) => {
                if !acc.is_empty() {
                    out.push(store.new_text(acc.join(" ")));
                    acc.clear();
                }
                out.push(*n);
            }
        }
    }
    if !acc.is_empty() {
        out.push(store.new_text(acc.join(" ")));
    }
    Ok(out)
}

pub(crate) fn require_node(it: Item) -> XdmResult<NodeId> {
    it.as_node()
        .ok_or_else(|| XdmError::type_error("expected a node, got an atomic value"))
}

/// Compare order-by keys: the empty sequence sorts least ("empty least"
/// default); NaN sorts just above empty; otherwise value comparison.
pub(crate) fn cmp_keys(a: &Option<Atomic>, b: &Option<Atomic>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => {
            if matches!(value_compare(CompareOp::Lt, x, y), Ok(true)) {
                Ordering::Less
            } else if matches!(value_compare(CompareOp::Gt, x, y), Ok(true)) {
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        }
    }
}

/// Resolve an insert location to the paper's `(nodepar, nodepos)` pair —
/// the "Insert Location Judgments" of Appendix B.
fn resolve_insert_anchor(
    store: &Store,
    location: &CoreInsertLoc,
    target: NodeId,
) -> XdmResult<(NodeId, InsertAnchor)> {
    match location {
        CoreInsertLoc::First(_) => Ok((target, InsertAnchor::First)),
        CoreInsertLoc::Last(_) => Ok((target, InsertAnchor::Last)),
        CoreInsertLoc::After(_) => {
            let parent = store
                .parent(target)?
                .ok_or_else(|| XdmError::precondition("\"after\" target has no parent"))?;
            Ok((parent, InsertAnchor::After(target)))
        }
        CoreInsertLoc::Before(_) => {
            let parent = store
                .parent(target)?
                .ok_or_else(|| XdmError::precondition("\"before\" target has no parent"))?;
            let children = store.children(parent)?;
            match children.iter().position(|&c| c == target) {
                Some(0) => Ok((parent, InsertAnchor::First)),
                Some(i) => Ok((parent, InsertAnchor::After(children[i - 1]))),
                None => Err(XdmError::precondition(
                    "\"before\" target is not a child of its parent",
                )),
            }
        }
    }
}

/// Gather the nodes of `axis` from `origin` that satisfy `test`, in axis
/// order (reverse axes deliver nearest-first, which is what positional
/// predicates count along).
pub fn gather_axis(
    store: &Store,
    origin: NodeId,
    axis: Axis,
    test: &NodeTest,
) -> XdmResult<Vec<NodeId>> {
    let mut out = Vec::new();
    // Resolve the test against the interner once per gather, not once per
    // node: the hot per-node check is then integer-only (no name
    // materialization, no string compare).
    let ktest = resolve_test(store, test);
    let principal_attr = axis == Axis::Attribute;
    let push = |store: &Store, n: NodeId, out: &mut Vec<NodeId>| -> XdmResult<()> {
        if store.kernel_matches(n, principal_attr, ktest)? {
            out.push(n);
        }
        Ok(())
    };
    match axis {
        Axis::Child => {
            for &c in store.children(origin)? {
                push(store, c, &mut out)?;
            }
        }
        Axis::Descendant => {
            for c in store.descendants(origin)? {
                push(store, c, &mut out)?;
            }
        }
        Axis::DescendantOrSelf => {
            push(store, origin, &mut out)?;
            for c in store.descendants(origin)? {
                push(store, c, &mut out)?;
            }
        }
        Axis::Attribute => {
            for &a in store.attributes(origin)? {
                push(store, a, &mut out)?;
            }
        }
        Axis::SelfAxis => push(store, origin, &mut out)?,
        Axis::Parent => {
            if let Some(p) = store.parent(origin)? {
                push(store, p, &mut out)?;
            }
        }
        Axis::Ancestor | Axis::AncestorOrSelf => {
            if axis == Axis::AncestorOrSelf {
                push(store, origin, &mut out)?;
            }
            let mut cur = store.parent(origin)?;
            while let Some(p) = cur {
                push(store, p, &mut out)?;
                cur = store.parent(p)?;
            }
        }
        Axis::FollowingSibling | Axis::PrecedingSibling => {
            if let Some(p) = store.parent(origin)? {
                let children = store.children(p)?;
                if let Some(i) = children.iter().position(|&c| c == origin) {
                    if axis == Axis::FollowingSibling {
                        for &c in &children[i + 1..] {
                            push(store, c, &mut out)?;
                        }
                    } else {
                        for &c in children[..i].iter().rev() {
                            push(store, c, &mut out)?;
                        }
                    }
                }
            }
        }
        Axis::Following => {
            // Nodes strictly after origin in document order, excluding its
            // descendants: for each ancestor-or-self, the following
            // siblings with their subtrees, in document order.
            let mut cur = origin;
            while let Some(p) = store.parent(cur)? {
                let children = store.children(p)?.to_vec();
                if let Some(i) = children.iter().position(|&c| c == cur) {
                    for &sib in &children[i + 1..] {
                        push(store, sib, &mut out)?;
                        for d in store.descendants(sib)? {
                            push(store, d, &mut out)?;
                        }
                    }
                }
                cur = p;
            }
        }
        Axis::Preceding => {
            // Nodes strictly before origin in document order, excluding
            // ancestors: for each ancestor-or-self (nearest first), the
            // preceding siblings' subtrees in reverse document order.
            let mut cur = origin;
            while let Some(p) = store.parent(cur)? {
                let children = store.children(p)?.to_vec();
                if let Some(i) = children.iter().position(|&c| c == cur) {
                    for &sib in children[..i].iter().rev() {
                        // Reverse document order within the subtree: the
                        // subtree in document order is [sib, d1, ..., dn],
                        // so reversed it is [dn, ..., d1, sib].
                        let mut subtree = vec![sib];
                        subtree.extend(store.descendants(sib)?);
                        for &d in subtree.iter().rev() {
                            push(store, d, &mut out)?;
                        }
                    }
                }
                cur = p;
            }
        }
    }
    Ok(out)
}

/// Resolve a syntactic [`NodeTest`] to a [`KernelTest`] against `store`'s
/// interner. Valid only for that store; an interner miss on a name test
/// yields `Name(None)`, which matches nothing.
pub(crate) fn resolve_test(store: &Store, test: &NodeTest) -> KernelTest {
    match test {
        NodeTest::Name(wanted) => KernelTest::name(store.symbols(), wanted),
        NodeTest::Wildcard => KernelTest::Wildcard,
        NodeTest::Text => KernelTest::Text,
        NodeTest::AnyKind => KernelTest::AnyKind,
        NodeTest::Comment => KernelTest::Comment,
        NodeTest::Pi => KernelTest::Pi,
        NodeTest::Element => KernelTest::Element,
        NodeTest::AttributeTest => KernelTest::AttributeTest,
        NodeTest::Document => KernelTest::Document,
    }
}

/// XQuery 1.0 element-construction semantics for a content sequence:
/// attribute nodes (which must precede other content) are copied and
/// attached; nodes are deep-copied in; adjacent atomics become a single
/// space-separated text node.
fn construct_element(store: &mut Store, name: QName, content: &[Item]) -> XdmResult<NodeId> {
    let elem = store.new_element(name);
    append_content(store, elem, content, /*allow_attrs=*/ true)?;
    Ok(elem)
}

fn append_content(
    store: &mut Store,
    parent: NodeId,
    content: &[Item],
    allow_attrs: bool,
) -> XdmResult<()> {
    let mut text_acc: Vec<String> = Vec::new();
    let mut seen_content = false;
    let flush = |store: &mut Store, acc: &mut Vec<String>, seen: &mut bool| -> XdmResult<()> {
        if !acc.is_empty() {
            let t = store.new_text(acc.join(" "));
            store.append_child(parent, t)?;
            acc.clear();
            *seen = true;
        }
        Ok(())
    };
    for it in content {
        match it {
            Item::Atomic(a) => text_acc.push(a.string_value()),
            Item::Node(n) => {
                flush(store, &mut text_acc, &mut seen_content)?;
                match store.kind(*n)?.clone() {
                    NodeKind::Attribute { .. } => {
                        if !allow_attrs {
                            return Err(XdmError::type_error("attribute node in document content"));
                        }
                        if seen_content {
                            return Err(XdmError::new(
                                "XQTY0024",
                                "attribute constructor after non-attribute content",
                            ));
                        }
                        let copy = store.deep_copy(*n)?;
                        store.attach_attribute(parent, copy)?;
                    }
                    NodeKind::Document { children } => {
                        // A document node contributes its children.
                        for c in children {
                            let copy = store.deep_copy(c)?;
                            store.append_child(parent, copy)?;
                        }
                        seen_content = true;
                    }
                    _ => {
                        let copy = store.deep_copy(*n)?;
                        store.append_child(parent, copy)?;
                        seen_content = true;
                    }
                }
            }
        }
    }
    flush(store, &mut text_acc, &mut seen_content)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqsyn::ast::NodeTest;

    fn sample_tree() -> (Store, NodeId, Vec<NodeId>) {
        // <r><a/><b>t</b><c x="1"/></r>
        let mut s = Store::new();
        let r = s.new_element(QName::local("r"));
        let a = s.new_element(QName::local("a"));
        let b = s.new_element(QName::local("b"));
        let t = s.new_text("t");
        let c = s.new_element(QName::local("c"));
        let x = s.new_attribute(QName::local("x"), "1");
        s.append_child(b, t).unwrap();
        for n in [a, b, c] {
            s.append_child(r, n).unwrap();
        }
        s.attach_attribute(c, x).unwrap();
        (s, r, vec![a, b, t, c, x])
    }

    #[test]
    fn gather_axis_child_and_descendant() {
        let (s, r, ns) = sample_tree();
        let kids = gather_axis(&s, r, Axis::Child, &NodeTest::AnyKind).unwrap();
        assert_eq!(kids, vec![ns[0], ns[1], ns[3]]);
        let desc = gather_axis(&s, r, Axis::Descendant, &NodeTest::AnyKind).unwrap();
        assert_eq!(desc, vec![ns[0], ns[1], ns[2], ns[3]]);
        let texts = gather_axis(&s, r, Axis::Descendant, &NodeTest::Text).unwrap();
        assert_eq!(texts, vec![ns[2]]);
    }

    #[test]
    fn gather_axis_attribute_principal_kind() {
        let (s, _r, ns) = sample_tree();
        let c = ns[3];
        // Wildcard on the attribute axis matches attributes only.
        let attrs = gather_axis(&s, c, Axis::Attribute, &NodeTest::Wildcard).unwrap();
        assert_eq!(attrs, vec![ns[4]]);
        // Name test off the attribute axis does not match attributes.
        let none = gather_axis(&s, c, Axis::Child, &NodeTest::Name("x".into())).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn gather_axis_reverse_axes_nearest_first() {
        let (s, r, ns) = sample_tree();
        let t = ns[2];
        let anc = gather_axis(&s, t, Axis::Ancestor, &NodeTest::AnyKind).unwrap();
        assert_eq!(anc, vec![ns[1], r]);
        let prec = gather_axis(&s, ns[3], Axis::PrecedingSibling, &NodeTest::AnyKind).unwrap();
        assert_eq!(prec, vec![ns[1], ns[0]]);
        let foll = gather_axis(&s, ns[0], Axis::FollowingSibling, &NodeTest::AnyKind).unwrap();
        assert_eq!(foll, vec![ns[1], ns[3]]);
    }

    #[test]
    fn resolve_anchor_before_after() {
        let (s, r, ns) = sample_tree();
        let (a, b) = (ns[0], ns[1]);
        // before first child -> First.
        assert_eq!(
            resolve_insert_anchor(&s, &CoreInsertLoc::Before(Core::empty().boxed()), a).unwrap(),
            (r, InsertAnchor::First)
        );
        // before a later child -> After(previous sibling).
        assert_eq!(
            resolve_insert_anchor(&s, &CoreInsertLoc::Before(Core::empty().boxed()), b).unwrap(),
            (r, InsertAnchor::After(a))
        );
        assert_eq!(
            resolve_insert_anchor(&s, &CoreInsertLoc::After(Core::empty().boxed()), a).unwrap(),
            (r, InsertAnchor::After(a))
        );
        // before/after a parentless node fails.
        assert!(
            resolve_insert_anchor(&s, &CoreInsertLoc::Before(Core::empty().boxed()), r).is_err()
        );
    }

    #[test]
    fn content_to_nodes_joins_adjacent_atomics() {
        let mut s = Store::new();
        let e = s.new_element(QName::local("e"));
        let seq = vec![
            Item::integer(1),
            Item::string("two"),
            Item::Node(e),
            Item::integer(3),
        ];
        let nodes = content_to_nodes(&mut s, &seq).unwrap();
        assert_eq!(nodes.len(), 3);
        assert_eq!(s.string_value(nodes[0]).unwrap(), "1 two");
        assert_eq!(nodes[1], e);
        assert_eq!(s.string_value(nodes[2]).unwrap(), "3");
    }

    #[test]
    fn snap_scope_api_balance() {
        let mut ev = Evaluator::bare();
        ev.begin_snap_scope();
        ev.begin_snap_scope();
        assert!(ev.end_snap_scope().is_empty());
        assert!(ev.end_snap_scope().is_empty());
    }

    #[test]
    fn cmp_keys_empty_least_and_nan() {
        use std::cmp::Ordering;
        assert_eq!(cmp_keys(&None, &Some(Atomic::Integer(1))), Ordering::Less);
        assert_eq!(cmp_keys(&None, &None), Ordering::Equal);
        assert_eq!(
            cmp_keys(&Some(Atomic::Integer(1)), &Some(Atomic::Integer(2))),
            Ordering::Less
        );
        // NaN compares "equal" to everything under value_compare, so the
        // sort treats it as tied (stable order preserved).
        assert_eq!(
            cmp_keys(&Some(Atomic::Double(f64::NAN)), &Some(Atomic::Integer(1))),
            Ordering::Equal
        );
    }
}
