//! The high-level engine facade: the API a host application uses.
//!
//! Wraps store + parser + normalizer + evaluator into the workflow of the
//! paper's Web-service scenario: load documents, bind host variables, run
//! XQuery! programs (each with its implicit top-level snap), and inspect or
//! serialize the resulting store.

use crate::env::DynEnv;
use crate::eval::Evaluator;
use crate::limits::Limits;
use crate::obs;
use crate::planner::{self, CompiledProgram};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xqdm::item::{Item, Sequence};
use xqdm::seq;
use xqdm::{CapturedDelta, NodeId, RecoveryReport, Store, SyncMode, XdmResult};
use xqsyn::cursor::ParseError;
use xqsyn::CoreProgram;

/// Engine errors: parse-time or evaluation-time.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Syntax error.
    Parse(ParseError),
    /// Dynamic (evaluation/data-model) error.
    Eval(xqdm::XdmError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<xqdm::XdmError> for Error {
    fn from(e: xqdm::XdmError) -> Self {
        Error::Eval(e)
    }
}

pub use crate::eval::EvalStats;

/// The most plans the cache keeps before it is wholesale cleared — query
/// workloads repeat a handful of programs; an unbounded cache would leak
/// under ad-hoc query streams.
const PLAN_CACHE_CAP: usize = 32;

/// The XQuery! engine.
pub struct Engine {
    /// The node store. Public: hosts may construct data directly.
    pub store: Store,
    bindings: Vec<(String, Sequence)>,
    /// Functions registered by [`Engine::load_module`], visible to every
    /// subsequent query (the paper's §2.2 "service calls implemented as
    /// XQuery functions organized in a module").
    module_functions: Vec<xqsyn::CoreFunction>,
    seed: u64,
    /// Per-snap seed counter, persisted across runs so nondeterministic
    /// application orders are never replayed between successive queries.
    snap_counter: u64,
    last_stats: Option<EvalStats>,
    /// Compile programs through the installed planner (default). Off via
    /// [`Engine::set_compile`] or the `XQB_INTERPRET` env var.
    compile_enabled: bool,
    /// Compiled plans keyed by a fingerprint of the (module-augmented)
    /// program, so repeated `run` of the same text recompiles nothing.
    plan_cache: HashMap<(u64, u64), Arc<dyn CompiledProgram>>,
    /// A cross-session plan cache (ISSUE 8). When installed, it is
    /// consulted *instead of* the per-engine `plan_cache`, so every
    /// session sharing it sees every other session's plans.
    shared_cache: Option<Arc<planner::SharedPlanCache>>,
    cache_hits: u64,
    cache_misses: u64,
    /// Worker-thread budget for effect-free regions (1 = sequential).
    /// Defaults to `XQB_THREADS`; override with [`Engine::set_threads`].
    threads: usize,
    /// Resource limits applied to every run, parse, and document load
    /// (DESIGN.md §12). Defaults from the `XQB_MAX_DEPTH` / `XQB_FUEL` /
    /// `XQB_DEADLINE_MS` / `XQB_MEMORY_ITEMS` env vars; override with
    /// [`Engine::set_limits`].
    limits: Limits,
    /// Pre-resolved global-registry handles for the per-run metrics flush.
    metrics: obs::EngineMetrics,
    /// Trace-span sink (from `XQB_TRACE` or [`Engine::set_trace`]).
    trace: Option<Arc<obs::TraceSink>>,
    /// Slow-query threshold in milliseconds (from `XQB_SLOW_MS` or
    /// [`Engine::set_slow_query_threshold`]); `None` disables the log.
    slow_ms: Option<f64>,
    /// Per-node profile of the most recent `explain_analyze` run.
    last_profile: Option<obs::Profile>,
    /// The plan the most recent `explain_analyze` executed (for profile
    /// verification in tests).
    last_plan: Option<Arc<dyn CompiledProgram>>,
    /// Wall time of the most recent run, nanoseconds.
    last_run_ns: Option<u64>,
    /// fsync policy for the durable store (from `XQB_DURABILITY`; applied
    /// when a store is opened/saved, and live-switchable via
    /// [`Engine::set_durability`]).
    durability: SyncMode,
    /// (records, bytes) of the most recent durable commit — `(0, 0)`
    /// after a read-only run. `None` until a commit happens.
    last_wal: Option<(u64, u64)>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// A fresh engine with an empty store. With `XQB_STORE_PATH` set, the
    /// durable store at that directory is recovered and attached (a
    /// failure warns and falls back to in-memory — a bad store file must
    /// not brick the engine).
    pub fn new() -> Self {
        let mut engine = Engine {
            store: Store::new(),
            bindings: Vec::new(),
            module_functions: Vec::new(),
            seed: 0x5eed,
            snap_counter: 0,
            last_stats: None,
            compile_enabled: std::env::var_os("XQB_INTERPRET").is_none(),
            plan_cache: HashMap::new(),
            shared_cache: None,
            cache_hits: 0,
            cache_misses: 0,
            threads: crate::par::threads_from_env(),
            limits: Limits::from_env(),
            metrics: obs::EngineMetrics::from_global(),
            trace: obs::TraceSink::from_env(),
            slow_ms: std::env::var("XQB_SLOW_MS")
                .ok()
                .and_then(|v| v.parse().ok()),
            last_profile: None,
            last_plan: None,
            last_run_ns: None,
            durability: std::env::var("XQB_DURABILITY")
                .ok()
                .and_then(|v| SyncMode::parse(&v))
                .unwrap_or_default(),
            last_wal: None,
        };
        if let Ok(path) = std::env::var("XQB_STORE_PATH") {
            if !path.is_empty() {
                if let Err(e) = engine.open_store(&path) {
                    eprintln!(
                        "warning: cannot open durable store at {path}: {e}; \
                         continuing in-memory"
                    );
                }
            }
        }
        engine
    }

    /// Recover (or create) the durable store at `dir` and attach it: every
    /// subsequent run's committed snaps are flushed to its redo log. The
    /// recovered document roots are bound to `$doc`, `$doc2`, `$doc3`, …
    /// in slot order (bindings are per-session state and do not survive a
    /// restart). Replaces this engine's store and bindings.
    pub fn open_store(&mut self, dir: impl AsRef<Path>) -> XdmResult<RecoveryReport> {
        let (store, report) = Store::open_durable(dir, self.durability)?;
        self.store = store;
        self.bindings.clear();
        for (i, root) in self.store.document_roots().into_iter().enumerate() {
            let name = if i == 0 {
                "doc".to_string()
            } else {
                format!("doc{}", i + 1)
            };
            self.bindings.push((name, seq![Item::Node(root)]));
        }
        self.metrics.wal_replayed.add(report.replayed_commits);
        self.metrics.wal_tail_dropped.add(report.tail_dropped);
        for w in &report.warnings {
            eprintln!("warning: durable store recovery: {w}");
        }
        Ok(report)
    }

    /// Persist this engine's current store to `dir` and keep it attached
    /// (the REPL's `:save`): the store contents become the initial
    /// checkpoint and later commits append to the redo log there.
    pub fn save_store(&mut self, dir: impl AsRef<Path>) -> XdmResult<()> {
        self.store.save_durable(dir, self.durability)
    }

    /// Set the fsync-on-commit policy (`always` / `batch` / `off`; also
    /// settable via the `XQB_DURABILITY` env var at construction).
    /// Applies immediately to an attached store and to stores opened
    /// later.
    pub fn set_durability(&mut self, sync: SyncMode) {
        self.durability = sync;
        self.store.set_durability(sync);
    }

    /// The fsync-on-commit policy in force.
    pub fn durability(&self) -> SyncMode {
        self.durability
    }

    /// Flush redo ops recorded since the last durable point. Called at
    /// every engine commit point (end of a run — success *or* error,
    /// since closed snaps are commitment either way — and after document
    /// and module loads); a no-op without an attached store. Installs a
    /// compacted checkpoint when one is due.
    fn commit_wal(&mut self) -> XdmResult<()> {
        if !self.store.has_wal() || self.store.frame_depth() != 0 {
            return Ok(());
        }
        let span = self
            .trace
            .as_ref()
            .map(|sink| sink.begin("wal_commit", None));
        let started = Instant::now();
        let committed = self.store.wal_commit();
        if let (Some(sink), Some(id)) = (&self.trace, span) {
            sink.end(id);
        }
        match committed? {
            Some(receipt) => {
                let m = &self.metrics;
                m.wal_commits.add(1);
                m.wal_records.add(receipt.records);
                m.wal_bytes.add(receipt.bytes);
                if receipt.fsynced {
                    m.wal_fsyncs.add(1);
                }
                let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                m.wal_commit_ns.record(ns);
                self.last_wal = Some((receipt.records, receipt.bytes));
                if self.store.checkpoint_due() {
                    self.store.checkpoint()?;
                    self.metrics.wal_checkpoints.add(1);
                }
            }
            None => self.last_wal = Some((0, 0)),
        }
        Ok(())
    }

    /// Attach a trace-span sink (normally set from `XQB_TRACE` at
    /// construction; tests and hosts may install one directly).
    pub fn set_trace(&mut self, sink: Arc<obs::TraceSink>) {
        self.trace = Some(sink);
    }

    /// Set (or with `None` disable) the slow-query threshold in
    /// milliseconds. Runs at or above it are recorded in the global
    /// registry's slow-query ring and logged as JSON to stderr.
    pub fn set_slow_query_threshold(&mut self, millis: Option<f64>) {
        self.slow_ms = millis;
    }

    /// Set the worker-thread budget for effect-free regions (see
    /// DESIGN.md §9); 1 disables parallelism. Clamped to
    /// [`crate::par::MAX_THREADS`].
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.clamp(1, crate::par::MAX_THREADS);
    }

    /// The configured worker-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Install resource limits (depth, fuel, deadline, memory; DESIGN.md
    /// §12). They apply to every subsequent run, parse, and document load.
    pub fn set_limits(&mut self, limits: Limits) {
        self.limits = limits;
    }

    /// Builder form of [`Engine::set_limits`].
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// The resource limits in force.
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// Parse a query under this engine's expression-nesting limit.
    fn compile_source(&self, query: &str) -> Result<CoreProgram, Error> {
        match xqsyn::compile_with_limit(query, self.limits.max_parse_depth) {
            Ok(p) => Ok(p),
            Err(e) => {
                // A parser depth trip is a resource-governance event like
                // any other; the code is embedded in the message because
                // ParseError carries no code field.
                if e.message.contains("XQB0040") {
                    self.metrics.limit_depth.add(1);
                }
                Err(Error::Parse(e))
            }
        }
    }

    /// Register a module: its `declare function`s become available to
    /// every subsequent [`Engine::run`], and its `declare variable`s are
    /// evaluated *now* (inside their own implicit snap) and installed as
    /// persistent bindings — so module state like the paper's §2.5
    /// counter survives across service calls. A body, if present, is
    /// evaluated and its value discarded.
    ///
    /// Loading is all-or-nothing: if any initializer fails (or panics),
    /// the store is rolled back and the engine's function table and
    /// bindings are restored, so no half-loaded module is ever visible.
    pub fn load_module(&mut self, source: &str) -> Result<(), Error> {
        let program = self.compile_source(source)?;
        let saved_functions = self.module_functions.len();
        let saved_bindings = self.bindings.clone();
        // Functions first, so variable initializers may call them (and
        // functions from earlier modules).
        self.module_functions
            .extend(program.functions.iter().cloned());
        let mut evaluator = self.evaluator_for(&program);
        let depth = self.store.frame_depth();
        self.store.begin_frame();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for (name, init) in &program.variables {
                let mut env = DynEnv::new();
                let value = evaluator.eval_query(&mut self.store, &mut env, init)?;
                evaluator.bind_global(name.clone(), value.clone());
                self.bind(name, value);
            }
            Ok(())
        }));
        self.snap_counter = evaluator.snap_counter();
        match outcome {
            Ok(Ok(())) => {
                self.store.commit_frame();
                // Module loads are engine commit points too (their
                // variable initializers may have updated the store).
                self.commit_wal().map_err(Error::Eval)?;
                Ok(())
            }
            Ok(Err(e)) => {
                self.unwind_frames_to(depth);
                self.module_functions.truncate(saved_functions);
                self.bindings = saved_bindings;
                Err(e)
            }
            Err(_panic) => {
                self.unwind_frames_to(depth);
                self.module_functions.truncate(saved_functions);
                self.bindings = saved_bindings;
                Err(Error::Eval(xqdm::XdmError::new(
                    "XQB0030",
                    "evaluation panicked; store rolled back to the pre-load state",
                )))
            }
        }
    }

    /// Roll back every frame opened at or above `depth` (the innermost
    /// first), restoring the store to its state when frame `depth + 1`
    /// was opened. Used on the panic path, where inner `apply_delta`
    /// frames may still be open.
    fn unwind_frames_to(&mut self, depth: usize) {
        while self.store.frame_depth() > depth {
            self.store.rollback_frame();
        }
    }

    /// Node roots currently referenced by host bindings: the liveness root
    /// set for sweeping orphaned construction nodes after a failed run.
    fn binding_roots(&self) -> Vec<NodeId> {
        let mut roots = Vec::new();
        for (_, seq) in &self.bindings {
            for item in seq {
                if let Item::Node(n) = item {
                    roots.push(*n);
                }
            }
        }
        roots
    }

    /// Statistics from the most recent successful [`Engine::run`] /
    /// [`Engine::run_program`]: snaps closed (≥ 1, the implicit one),
    /// update requests applied, deepest snap nesting.
    pub fn last_stats(&self) -> Option<EvalStats> {
        self.last_stats
    }

    /// Fix the seed used for nondeterministic snap application.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Parse an XML document into the store and bind its document node to
    /// `$name`. Returns the document node.
    pub fn load_document(&mut self, name: &str, xml: &str) -> XdmResult<NodeId> {
        let parsed =
            xqdm::xml::parse_document_with_limit(&mut self.store, xml, self.limits.max_xml_depth)
                .inspect_err(|e| self.metrics.note_limit_trip(e.code));
        // Loading a document is an engine commit point: flush its nodes
        // to the redo log even when the parse failed partway, so a
        // recovered store always matches the in-memory one.
        let flushed = self.commit_wal();
        let doc = parsed?;
        flushed?;
        self.bind(name, seq![Item::Node(doc)]);
        Ok(doc)
    }

    /// Bind `$name` to a host-supplied value for subsequent queries.
    pub fn bind(&mut self, name: &str, value: Sequence) {
        self.bindings.retain(|(n, _)| n != name);
        self.bindings.push((name.to_string(), value));
    }

    /// Look up a host binding.
    pub fn binding(&self, name: &str) -> Option<&Sequence> {
        self.bindings
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// Parse, normalize and run an XQuery! program against the store.
    /// The query body (and prolog variable initializers) run inside the
    /// implicit top-level snap; all effects are applied when this returns.
    pub fn run(&mut self, query: &str) -> Result<Sequence, Error> {
        let program = self.compile_source(query)?;
        Ok(self.run_program(&program)?)
    }

    /// Run an already-compiled program.
    ///
    /// Failure isolation: a run that returns an error keeps every snap that
    /// closed before the error (closing a snap is commitment, §2.3) but
    /// leaves no other trace — bindings and module functions are untouched,
    /// and nodes constructed during the run that ended up reachable from no
    /// host binding are reclaimed, so a failed run cannot leak store slots.
    /// A *panic* during evaluation is caught and the store is rolled back
    /// to its exact pre-call state (committed snaps included) before an
    /// `XQB0030` error is returned: a store that a panicking evaluation was
    /// mutating is not trusted as commitment.
    pub fn run_program(&mut self, program: &CoreProgram) -> XdmResult<Sequence> {
        let hits_before = self.cache_hits;
        let compiled = self.plan_for(program);
        let cache = cache_outcome(&compiled, self.cache_hits > hits_before);
        self.execute_program(compiled, program, false, cache)
    }

    /// Run `program` inside the PR-1 panic/undo frame, flushing run
    /// metrics (and the slow-query log) whatever the outcome. With
    /// `profile` set, per-node counters are captured into
    /// [`Engine::last_profile`]. The shared body of [`Engine::run_program`]
    /// and [`Engine::explain_analyze`].
    fn execute_program(
        &mut self,
        compiled: Option<Arc<dyn CompiledProgram>>,
        program: &CoreProgram,
        profile: bool,
        cache: &'static str,
    ) -> XdmResult<Sequence> {
        let mut evaluator = self.evaluator_for(program);
        let run_span = self.trace.as_ref().map(|sink| sink.begin("run", None));
        if let Some(sink) = &self.trace {
            evaluator.set_trace(sink.clone(), run_span);
        }
        if profile {
            evaluator.enable_profiling();
        }
        let depth = self.store.frame_depth();
        self.store.begin_frame();
        let started = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Compiled and interpreted paths share the evaluator (and
            // hence the Δ-stack, seed counter, and statistics), and run
            // inside the same panic/undo frame.
            match &compiled {
                Some(plan) => plan.execute(&mut evaluator, &mut self.store),
                None => evaluator.eval_program(&mut self.store, program),
            }
        }));
        let elapsed = started.elapsed();
        if let (Some(sink), Some(id)) = (&self.trace, run_span) {
            sink.end(id);
            sink.flush();
        }
        self.snap_counter = evaluator.snap_counter();
        let mut run_stats = None;
        let mut result = match outcome {
            Ok(result) => {
                let stats = evaluator.stats();
                run_stats = Some(stats);
                self.last_stats = Some(stats);
                // `last_profile`/`last_plan` always describe the most
                // recent run — a plain run clears any stale analyze state.
                self.last_profile = if profile {
                    evaluator.take_profile()
                } else {
                    None
                };
                self.last_plan = if profile { compiled.clone() } else { None };
                match result {
                    Ok(value) => {
                        self.store.commit_frame();
                        Ok(value)
                    }
                    Err(e) => {
                        // Keep committed snaps, then sweep constructed
                        // nodes the failed run left unreachable.
                        let allocs = self.store.frame_allocations();
                        self.store.commit_frame();
                        drop(evaluator);
                        match self
                            .store
                            .reclaim_unreachable(&allocs, &self.binding_roots())
                        {
                            Ok(_) => Err(e),
                            Err(sweep) => Err(sweep),
                        }
                    }
                }
            }
            Err(_panic) => {
                self.unwind_frames_to(depth);
                Err(xqdm::XdmError::new(
                    "XQB0030",
                    "evaluation panicked; store rolled back to the pre-run state",
                ))
            }
        };
        // Durable point: whatever this run committed (on error, every snap
        // closed before the failure; on panic, nothing — the rollback
        // already discarded the pending redo ops) is flushed to the log
        // now. A flush failure becomes the run's error, but never masks
        // an evaluation error that is already being reported.
        if let Err(wal) = self.commit_wal() {
            if result.is_ok() {
                result = Err(wal);
            }
        }
        if let Err(e) = &result {
            // Resource-governance trips get their own counters on top of
            // the generic engine.errors bump in finish_run.
            self.metrics.note_limit_trip(e.code);
        }
        self.finish_run(program, run_stats, elapsed, result.is_err(), cache);
        result
    }

    /// Flush one run's statistics into the global registry and, when the
    /// run crossed the slow-query threshold, record a [`obs::SlowQuery`].
    /// Runs on every outcome — success, error, and panic (where `stats`
    /// is `None` because the evaluator's state is not trusted).
    fn finish_run(
        &mut self,
        program: &CoreProgram,
        stats: Option<EvalStats>,
        elapsed: Duration,
        errored: bool,
        cache: &'static str,
    ) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.last_run_ns = Some(ns);
        let m = &self.metrics;
        m.runs.add(1);
        if errored {
            m.errors.add(1);
        }
        m.run_ns.record(ns);
        if let Some(s) = stats {
            m.snaps_closed.add(s.snaps_closed);
            m.requests_emitted.add(s.requests_emitted);
            m.requests_applied.add(s.requests_applied);
            m.plan_nodes.add(s.plan_nodes_executed);
            m.joins.add(s.joins_executed);
            m.par_regions.add(s.par_regions);
            m.par_items.add(s.par_items);
            m.batch_steps.add(s.batch_steps);
            m.batch_nodes.add(s.batch_nodes);
            m.idx_scans.add(s.idx_scans);
            m.idx_hits.add(s.idx_hits);
        }
        let millis = elapsed.as_secs_f64() * 1e3;
        if let Some(threshold) = self.slow_ms {
            if millis >= threshold {
                // The fingerprint is only computed on this (rare) path.
                let (h1, h2) = fingerprint(&self.augment(program.clone()));
                obs::global().record_slow(obs::SlowQuery {
                    fingerprint: format!("{h1:016x}{h2:016x}"),
                    millis,
                    cache,
                    snap_mode: "ordered",
                    threads: self.threads,
                    snaps_closed: stats.map_or(0, |s| s.snaps_closed),
                    requests_applied: stats.map_or(0, |s| s.requests_applied),
                });
            }
        }
    }

    /// Run `query` with per-plan-node instrumentation and render the
    /// EXPLAIN tree annotated with live counters plus a totals line —
    /// `EXPLAIN ANALYZE` for XQuery!. The query *really runs* (effects
    /// apply exactly as under [`Engine::run`]).
    ///
    /// In compiled mode this analyzes the optimized plan; with compilation
    /// disabled it runs a structural (unoptimized) plan whose operators
    /// mirror interpretation one-for-one, so both modes report per-node
    /// counters. Without any planner installed the program runs
    /// uninstrumented and only the totals line is live.
    pub fn explain_analyze(&mut self, query: &str) -> Result<String, Error> {
        let program = self.compile_source(query)?;
        self.last_profile = None;
        self.last_plan = None;
        let (compiled, cache) = if self.compile_enabled {
            let hits_before = self.cache_hits;
            let plan = self.plan_for(&program);
            (
                plan.clone(),
                cache_outcome(&plan, self.cache_hits > hits_before),
            )
        } else {
            let plan = planner::default_planner()
                .map(|p| p.plan_structural(&self.augment(program.clone())));
            (plan, "uncompiled")
        };
        let mode = match (&compiled, self.compile_enabled) {
            (Some(_), true) => "compiled",
            (Some(_), false) => "interpreted",
            (None, _) => "uninstrumented",
        };
        let value = self.execute_program(compiled, &program, true, cache)?;
        let profile = self.last_profile.clone().unwrap_or_default();
        let tree = match &self.last_plan {
            Some(plan) => plan.explain_analyzed(&profile),
            None => planner::render_unoptimized(&self.augment(program.clone())),
        };
        let stats = self.last_stats.unwrap_or_default();
        let mut totals = format!(
            "totals: time={} rows={} snaps={} Δ={}/{} plan_nodes={} joins={} \
             par={}/{} cache={cache} threads={} mode={mode}",
            obs::fmt_ns(self.last_run_ns.unwrap_or(0)),
            value.len(),
            stats.snaps_closed,
            stats.requests_emitted,
            stats.requests_applied,
            stats.plan_nodes_executed,
            stats.joins_executed,
            stats.par_regions,
            stats.par_items,
            self.threads,
        );
        // Index scans only show when the executor actually chose one, so
        // index-free runs keep their historical totals line.
        if stats.idx_scans > 0 {
            totals.push_str(&format!(" idx={}/{}", stats.idx_scans, stats.idx_hits));
        }
        // Only durable sessions carry the WAL token, so the goldens for
        // in-memory runs are unchanged.
        if self.store.has_wal() {
            let (records, bytes) = self.last_wal.unwrap_or((0, 0));
            totals.push_str(&format!(" wal={records}r/{bytes}B"));
        }
        Ok(format!("{tree}\n{totals}"))
    }

    /// The per-node profile captured by the most recent
    /// [`Engine::explain_analyze`].
    pub fn last_profile(&self) -> Option<&obs::Profile> {
        self.last_profile.as_ref()
    }

    /// The plan the most recent [`Engine::explain_analyze`] executed
    /// (used by the obs-invariants suite to cross-check the profile
    /// against the plan shape).
    pub fn analyzed_plan(&self) -> Option<&Arc<dyn CompiledProgram>> {
        self.last_plan.as_ref()
    }

    /// Wall time of the most recent run, in nanoseconds.
    pub fn last_run_ns(&self) -> Option<u64> {
        self.last_run_ns
    }

    /// Plan `program` through the installed planner, consulting the plan
    /// cache first. `None` means "interpret": compilation disabled, or no
    /// planner installed (bare `xqcore` without the facade).
    fn plan_for(&mut self, program: &CoreProgram) -> Option<Arc<dyn CompiledProgram>> {
        if !self.compile_enabled {
            return None;
        }
        let planner = planner::default_planner()?;
        let augmented = self.augment(program.clone());
        let opts = planner::PlanOptions {
            index_available: self.store.index_enabled(),
        };
        let key = plan_key(fingerprint(&augmented), &opts, self.store.index_epoch());
        // The shared cross-session cache, when installed, replaces the
        // per-engine map entirely (one cache, one source of truth — the
        // hit/miss counters of both layers stay coherent).
        if let Some(shared) = &self.shared_cache {
            if let Some(plan) = shared.get(key) {
                self.cache_hits += 1;
                self.metrics.cache_hits.add(1);
                return Some(plan);
            }
        } else if let Some(plan) = self.plan_cache.get(&key) {
            self.cache_hits += 1;
            self.metrics.cache_hits.add(1);
            return Some(plan.clone());
        }
        self.cache_misses += 1;
        self.metrics.cache_misses.add(1);
        let span = self.trace.as_ref().map(|sink| sink.begin("plan", None));
        let plan = planner.plan_opts(&augmented, &opts);
        if let (Some(sink), Some(id)) = (&self.trace, span) {
            sink.end(id);
        }
        match &self.shared_cache {
            Some(shared) => shared.insert(key, plan.clone()),
            None => {
                if self.plan_cache.len() >= PLAN_CACHE_CAP {
                    self.plan_cache.clear();
                }
                self.plan_cache.insert(key, plan.clone());
            }
        }
        Some(plan)
    }

    /// Extend a program with this engine's module functions (minus those
    /// the program shadows), so planning and checking see the same world
    /// the evaluator does.
    fn augment(&self, mut program: CoreProgram) -> CoreProgram {
        for f in &self.module_functions {
            if !program
                .functions
                .iter()
                .any(|g| g.name == f.name && g.params.len() == f.params.len())
            {
                program.functions.push(f.clone());
            }
        }
        program
    }

    /// Enable or disable compiled execution (enabled by default unless the
    /// `XQB_INTERPRET` environment variable is set at engine construction).
    pub fn set_compile(&mut self, enabled: bool) {
        self.compile_enabled = enabled;
    }

    /// Is compiled execution currently enabled?
    pub fn compile_enabled(&self) -> bool {
        self.compile_enabled
    }

    /// Plan-cache hits and misses since construction.
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        (self.cache_hits, self.cache_misses)
    }

    /// Install a cross-session plan cache (see
    /// [`planner::SharedPlanCache`]): this engine plans into and hits
    /// from `cache` instead of its private map, so plans compiled here
    /// are visible to every other session holding the same cache.
    pub fn set_shared_plan_cache(&mut self, cache: Arc<planner::SharedPlanCache>) {
        self.shared_cache = Some(cache);
    }

    /// The installed cross-session plan cache, if any.
    pub fn shared_plan_cache(&self) -> Option<&Arc<planner::SharedPlanCache>> {
        self.shared_cache.as_ref()
    }

    /// The paper-style compiled plan for `query` (with effect
    /// annotations), without running it — `EXPLAIN` for XQuery!. Module
    /// functions participate as they would in [`Engine::run`]. With no
    /// planner installed the whole program is one `Iterate` node.
    pub fn explain(&self, query: &str) -> Result<String, Error> {
        let program = self.augment(self.compile_source(query)?);
        let opts = planner::PlanOptions {
            index_available: self.store.index_enabled(),
        };
        Ok(match planner::default_planner() {
            Some(planner) => planner.plan_opts(&program, &opts).explain(),
            None => planner::render_unoptimized(&program),
        })
    }

    /// Enable or disable the store's secondary-index plane for planning
    /// (DESIGN.md §17). Maintenance continues either way; toggling bumps
    /// the index epoch, which is folded into the plan-cache keys so
    /// cached `,idx` plans are never reused across a toggle.
    pub fn set_indexing(&mut self, enabled: bool) {
        self.store.set_indexing(enabled);
    }

    /// An evaluator seeded with this engine's modules and bindings.
    fn evaluator_for(&self, program: &CoreProgram) -> Evaluator {
        let mut evaluator = Evaluator::new(program)
            .with_seed(self.seed)
            .with_snap_counter(self.snap_counter)
            .with_threads(self.threads)
            .with_limits(self.limits);
        for f in &self.module_functions {
            evaluator.register_function(f.clone());
        }
        for (name, value) in &self.bindings {
            evaluator.bind_global(name.clone(), value.clone());
        }
        evaluator
    }

    /// Compile a query without running it (for repeated execution).
    pub fn compile(&self, query: &str) -> Result<CoreProgram, Error> {
        self.compile_source(query)
    }

    /// Statically check a query against this engine's bindings: undefined
    /// variables/functions, duplicate declarations, and the effect lints
    /// (see [`crate::check`]). Module functions count as declared.
    pub fn check(&self, query: &str) -> Result<Vec<crate::check::Diagnostic>, Error> {
        // Module functions participate exactly as program-level ones do
        // (minus shadowing, which register_function already resolves).
        let program = self.augment(self.compile_source(query)?);
        let host_vars: Vec<&str> = self.bindings.iter().map(|(n, _)| n.as_str()).collect();
        Ok(crate::check::check_program(&program, &host_vars))
    }

    /// Serialize an item the way a query shell would: nodes as XML, atomics
    /// via their string value.
    pub fn serialize_item(&self, item: &Item) -> XdmResult<String> {
        match item {
            Item::Node(n) => xqdm::xml::serialize(&self.store, *n),
            Item::Atomic(a) => Ok(a.string_value()),
        }
    }

    /// Serialize a whole sequence, space-separating atomics.
    pub fn serialize(&self, seq: &[Item]) -> XdmResult<String> {
        let mut parts = Vec::with_capacity(seq.len());
        for it in seq {
            parts.push(self.serialize_item(it)?);
        }
        Ok(parts.join(" "))
    }

    /// A point-in-time snapshot of this engine's queryable state: the
    /// COW-forked store plus the session-visible bindings and module
    /// functions (DESIGN.md §15). Taking one costs O(pages) `Arc` bumps,
    /// not a deep copy; the snapshot is immutable and `Send + Sync`, so a
    /// server can publish it to concurrent readers. Must be called
    /// between runs (no open undo frame).
    pub fn snapshot_state(&self) -> EngineSnapshot {
        EngineSnapshot {
            store: self.store.snapshot(),
            bindings: self.bindings.clone(),
            module_functions: self.module_functions.clone(),
            seed: self.seed,
            snap_counter: self.snap_counter,
            threads: self.threads,
            limits: self.limits,
            compile_enabled: self.compile_enabled,
        }
    }

    // ------------------------------------------------------------------
    // Δ capture & rebase (optimistic concurrent writers; DESIGN.md §16)
    // ------------------------------------------------------------------

    /// Attach a Δ capture to the store (see [`Store::begin_capture`]).
    pub fn begin_capture(&mut self, trace_reads: bool) {
        self.store.begin_capture(trace_reads);
    }

    /// Is a Δ capture attached?
    pub fn capturing(&self) -> bool {
        self.store.capturing()
    }

    /// Drain the attached capture's recording (see
    /// [`Store::take_capture`]).
    pub fn take_capture(&mut self) -> Option<CapturedDelta> {
        self.store.take_capture()
    }

    /// The snap counter (per-run deterministic seed stream position;
    /// advanced once per snap applied).
    pub fn snap_counter(&self) -> u64 {
        self.snap_counter
    }

    /// Advance the snap counter by `n` without running anything: after a
    /// forked transaction's Δ is rebased onto this engine, the fork's
    /// snap consumption must land on the live counter too, exactly as a
    /// serial execution here would have.
    pub fn advance_snap_counter(&mut self, n: u64) {
        self.snap_counter += n;
    }

    /// Stamp the next WAL commit with an interleaved-committer record
    /// (no-op without a durable store).
    pub fn note_committer(&mut self, session: u64, base_epoch: u64) {
        self.store.wal_note_committer(session, base_epoch);
    }

    /// Rebase a validated [`CapturedDelta`] onto this engine's store and
    /// make it durable: the replay runs inside an undo frame (a failing
    /// op rolls the store back exactly and surfaces the error — the
    /// server treats that as a conflict), then the WAL flushes as for any
    /// committed run.
    pub fn apply_captured(&mut self, delta: &CapturedDelta) -> XdmResult<()> {
        self.store.begin_frame();
        match self.store.apply_captured(delta) {
            Ok(()) => {
                self.store.commit_frame();
                self.commit_wal()?;
                Ok(())
            }
            Err(e) => {
                self.store.rollback_frame();
                Err(e)
            }
        }
    }

    /// Would `program` run with no store effect at all? True iff the body
    /// *and* every prolog variable initializer pass the `par_safe`
    /// judgment (DESIGN.md §9) under this engine's module functions —
    /// `Effect::Pure` plus transitive structural transparency, which also
    /// rejects `snap`, tracing, and the par-opaque builtins. This is the
    /// server's snapshot-read gate: a query that passes may execute
    /// against a pinned snapshot instead of the serialized writer.
    pub fn is_read_only(&self, program: &CoreProgram) -> bool {
        read_only_with(&self.module_functions, program)
    }

    /// Create a fresh evaluator + environment pair for expression-level
    /// work (tests, tools). Bindings are installed as globals.
    pub fn evaluator(&self, program: &CoreProgram) -> (Evaluator, DynEnv) {
        let mut ev = Evaluator::new(program)
            .with_seed(self.seed)
            .with_snap_counter(self.snap_counter)
            .with_threads(self.threads)
            .with_limits(self.limits);
        for (name, value) in &self.bindings {
            ev.bind_global(name.clone(), value.clone());
        }
        (ev, DynEnv::new())
    }
}

/// A frozen copy of an engine's queryable state, published by a server
/// after every commit (see [`Engine::snapshot_state`]). Readers fork
/// private engines from it with [`EngineSnapshot::reader`]; the shared
/// COW pages make both the snapshot and each fork cheap.
pub struct EngineSnapshot {
    store: Store,
    bindings: Vec<(String, Sequence)>,
    module_functions: Vec<xqsyn::CoreFunction>,
    seed: u64,
    snap_counter: u64,
    threads: usize,
    limits: Limits,
    compile_enabled: bool,
}

impl EngineSnapshot {
    /// Fork a private engine over this snapshot. The fork sees exactly
    /// the snapshotted store, bindings, and module functions; it carries
    /// no WAL (reads are never durable events) and a fresh plan cache —
    /// install a [`planner::SharedPlanCache`] to share plans across
    /// forks. Pure queries leave the forked store untouched; even a
    /// mutating run could only ever touch the fork's private pages.
    pub fn reader(&self) -> Engine {
        Engine {
            store: self.store.snapshot(),
            bindings: self.bindings.clone(),
            module_functions: self.module_functions.clone(),
            seed: self.seed,
            snap_counter: self.snap_counter,
            last_stats: None,
            compile_enabled: self.compile_enabled,
            plan_cache: HashMap::new(),
            shared_cache: None,
            cache_hits: 0,
            cache_misses: 0,
            threads: self.threads,
            limits: self.limits,
            metrics: obs::EngineMetrics::from_global(),
            trace: None,
            slow_ms: None,
            last_profile: None,
            last_plan: None,
            last_run_ns: None,
            durability: SyncMode::default(),
            last_wal: None,
        }
    }

    /// The snapshotted store (for fingerprinting in isolation tests).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// [`Engine::is_read_only`], judged against the snapshot's module
    /// functions — so classification needs no engine lock.
    pub fn is_read_only(&self, program: &CoreProgram) -> bool {
        read_only_with(&self.module_functions, program)
    }

    /// The snapshotted snap counter (the OCC commit pipeline uses the
    /// difference between a fork's counter and its base to advance the
    /// live engine after a rebase).
    pub fn snap_counter(&self) -> u64 {
        self.snap_counter
    }

    /// May `program` take the optimistic concurrent-writer path? The
    /// footprint/rebase machinery assumes the run is deterministic given
    /// its base snapshot and is fully described by its redo ops, so it
    /// rejects programs that
    ///
    /// * use `snap nondeterministic` or `snap conflict-detection`
    ///   (their outcome depends on the per-run seed stream, which is
    ///   engine-global state the fork cannot reserve in advance), or
    /// * call a par-opaque builtin (`xqb:stats`, `xqb:fingerprint`, …:
    ///   observers of engine-global state outside the store).
    ///
    /// Such programs still commit — through the serialized pessimistic
    /// path, exactly as before this optimization.
    pub fn occ_safe(&self, program: &CoreProgram) -> bool {
        use xqsyn::ast::SnapMode;
        use xqsyn::Core;
        let mut ok = true;
        let mut check = |e: &Core| match e {
            Core::Snap(SnapMode::Nondeterministic | SnapMode::ConflictDetection, _) => ok = false,
            Core::Call(name, _) if crate::functions::is_par_opaque(name) => ok = false,
            _ => {}
        };
        program.body.walk(&mut check);
        for (_, init) in &program.variables {
            init.walk(&mut check);
        }
        for f in program.functions.iter().chain(&self.module_functions) {
            f.body.walk(&mut check);
        }
        ok
    }
}

/// The shared body of the two `is_read_only` entry points: augment the
/// program with `modules` (minus shadowed declarations, as
/// [`Engine::augment`] does) and require `par_safe` of the body and every
/// prolog variable initializer.
fn read_only_with(modules: &[xqsyn::CoreFunction], program: &CoreProgram) -> bool {
    let mut functions: HashMap<(String, usize), xqsyn::CoreFunction> = modules
        .iter()
        .map(|f| ((f.name.clone(), f.params.len()), f.clone()))
        .collect();
    for f in &program.functions {
        functions.insert((f.name.clone(), f.params.len()), f.clone());
    }
    let analysis = crate::effects::EffectAnalysis::for_functions(functions.values());
    crate::par::par_safe(&program.body, &analysis, &functions)
        && program
            .variables
            .iter()
            .all(|(_, init)| crate::par::par_safe(init, &analysis, &functions))
}

/// Label a planning outcome for the slow-query log and EXPLAIN ANALYZE
/// totals: `"uncompiled"` when no plan ran, else whether the plan cache
/// hit.
fn cache_outcome(plan: &Option<Arc<dyn CompiledProgram>>, hit: bool) -> &'static str {
    match (plan, hit) {
        (None, _) => "uncompiled",
        (Some(_), true) => "hit",
        (Some(_), false) => "miss",
    }
}

use crate::planner::program_fingerprint as fingerprint;

/// Fold the plan options and the store's index epoch into a program
/// fingerprint: a plan compiled with the index available (or for an
/// earlier epoch) must never satisfy a lookup made without it — the
/// shared cross-session cache in particular would otherwise serve stale
/// `,idx` plans after a toggle (ISSUE 10 satellite).
fn plan_key((h1, h2): (u64, u64), opts: &planner::PlanOptions, index_epoch: u64) -> (u64, u64) {
    let avail = u64::from(opts.index_available);
    (
        h1 ^ avail.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        h2 ^ index_epoch
            .wrapping_add(avail)
            .wrapping_mul(0x2545_f491_4f6c_dd1d),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_simple_query() {
        let mut e = Engine::new();
        let r = e.run("1 + 2").unwrap();
        assert_eq!(r, vec![Item::integer(3)]);
    }

    #[test]
    fn load_and_query_document() {
        let mut e = Engine::new();
        e.load_document(
            "doc",
            "<site><person id=\"p1\"><name>Ada</name></person></site>",
        )
        .unwrap();
        let r = e.run("$doc//person/name").unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(e.serialize(&r).unwrap(), "<name>Ada</name>");
    }

    #[test]
    fn parse_errors_are_reported() {
        let mut e = Engine::new();
        assert!(matches!(e.run("for $x in"), Err(Error::Parse(_))));
    }

    #[test]
    fn eval_errors_are_reported() {
        let mut e = Engine::new();
        assert!(matches!(e.run("$undefined"), Err(Error::Eval(_))));
        assert!(matches!(e.run("1 div 0"), Err(Error::Eval(_))));
    }

    #[test]
    fn bindings_shadow_and_persist() {
        let mut e = Engine::new();
        e.bind("x", seq![Item::integer(1)]);
        e.bind("x", seq![Item::integer(2)]);
        assert_eq!(e.run("$x + 1").unwrap(), vec![Item::integer(3)]);
    }

    #[test]
    fn updates_apply_at_query_end() {
        let mut e = Engine::new();
        e.load_document("doc", "<log/>").unwrap();
        e.run("insert { <entry/> } into { $doc/log }").unwrap();
        let r = e.run("count($doc/log/entry)").unwrap();
        assert_eq!(r, vec![Item::integer(1)]);
    }

    #[test]
    fn modules_register_persistent_functions_and_state() {
        let mut e = Engine::new();
        e.load_document("log", "<log/>").unwrap();
        e.load_module(
            r#"
declare variable $d := element counter { 0 };
declare function nextid() {
  snap { replace { $d/text() } with { $d + 1 }, $d }
};
declare function log_call($what) {
  snap insert { <call id="{nextid()}" what="{$what}"/> } into { $log/log }
};"#,
        )
        .unwrap();
        // Three separate queries share the module's counter state.
        for what in ["a", "b", "c"] {
            e.run(&format!("log_call(\"{what}\")")).unwrap();
        }
        let ids = e
            .run("for $c in $log/log/call return string($c/@id)")
            .unwrap();
        assert_eq!(e.serialize(&ids).unwrap(), "1 2 3");
    }

    #[test]
    fn program_functions_shadow_module_functions() {
        let mut e = Engine::new();
        e.load_module("declare function f() { \"module\" };")
            .unwrap();
        let r = e.run("f()").unwrap();
        assert_eq!(e.serialize(&r).unwrap(), "module");
        let r = e.run("declare function f() { \"local\" }; f()").unwrap();
        assert_eq!(e.serialize(&r).unwrap(), "local");
        // And the module version is still there afterwards.
        let r = e.run("f()").unwrap();
        assert_eq!(e.serialize(&r).unwrap(), "module");
    }

    #[test]
    fn module_variable_initializers_can_update() {
        let mut e = Engine::new();
        e.load_document("doc", "<x/>").unwrap();
        e.load_module("declare variable $setup := (insert { <ready/> } into { $doc/x }, 1);")
            .unwrap();
        // The module's implicit snap applied the insert at load time.
        let r = e.run("(count($doc/x/ready), $setup)").unwrap();
        assert_eq!(e.serialize(&r).unwrap(), "1 1");
    }

    #[test]
    fn same_engine_seed_reproduces_identical_stores() {
        // Nondeterministic snaps draw their permutation from the engine
        // seed plus a per-snap counter; two engines with the same seed
        // running the same query sequence must end in identical stores.
        let run_all = |seed: u64| -> String {
            let mut e = Engine::new().with_seed(seed);
            e.load_document("doc", "<x/>").unwrap();
            for _ in 0..4 {
                e.run(
                    "snap nondeterministic {
                       insert { <a/> } into { $doc/x },
                       insert { <b/> } into { $doc/x },
                       insert { <c/> } into { $doc/x } }",
                )
                .unwrap();
            }
            let doc = e.binding("doc").unwrap().clone();
            e.serialize(&doc).unwrap()
        };
        assert_eq!(run_all(7), run_all(7));
        assert_eq!(run_all(8), run_all(8));
    }

    #[test]
    fn snap_seeds_are_not_reused_across_runs() {
        // The per-snap counter persists across Engine::run calls, so the
        // same nondeterministic snap executed in successive runs draws
        // fresh permutations. With per-run counter reset (the old bug),
        // every run would replay one fixed order and this test would see a
        // single distinct outcome.
        let mut e = Engine::new().with_seed(42);
        e.load_document("doc", "<root/>").unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in 0..32 {
            e.run(&format!("snap insert {{ <x{i}/> }} into {{ $doc/root }}"))
                .unwrap();
            e.run(&format!(
                "snap nondeterministic {{
                   insert {{ <a/> }} into {{ $doc/root/x{i} }},
                   insert {{ <b/> }} into {{ $doc/root/x{i} }} }}"
            ))
            .unwrap();
            let order = e
                .run(&format!("for $c in $doc/root/x{i}/* return name($c)"))
                .unwrap();
            seen.insert(e.serialize(&order).unwrap());
        }
        assert_eq!(
            seen.len(),
            2,
            "expected both application orders across runs, saw {seen:?}"
        );
    }

    #[test]
    fn stats_count_snaps_and_requests() {
        let mut e = Engine::new();
        e.load_document("doc", "<x/>").unwrap();
        e.run("1 + 1").unwrap();
        let s = e.last_stats().unwrap();
        assert_eq!(s.snaps_closed, 1); // the implicit top-level snap
        assert_eq!(s.requests_applied, 0);

        e.run(
            "(snap insert { <a/> } into { $doc/x },
              insert { <b/> } into { $doc/x },
              snap { insert { <c/> } into { $doc/x },
                     snap delete { $doc/x/a } })",
        )
        .unwrap();
        let s = e.last_stats().unwrap();
        assert_eq!(s.snaps_closed, 4); // implicit + 3 explicit
        assert_eq!(s.requests_applied, 4);
        assert_eq!(s.max_snap_depth, 3); // implicit > snap > snap delete
    }
}
