//! The built-in function library.
//!
//! The F&O subset that the paper's queries (and any realistic XQuery
//! workload) need: sequence functions, aggregates, string functions,
//! numerics, node functions, and the `xs:` constructor casts. Dispatch is
//! by local name and arity — the `fn:` prefix is optional, as in XQuery's
//! default function namespace. Arguments arrive fully evaluated, left to
//! right, per the paper's function-call rule.

use crate::env::DynEnv;
use xqdm::atomic::{value_compare, Atomic, CompareOp};
use xqdm::item::{self, Item, Sequence};
use xqdm::seq;
use xqdm::{Store, XdmError, XdmResult};

/// Dispatch a built-in call. Returns `None` when `name` is not a built-in
/// (the evaluator then looks for a user-declared function).
pub fn dispatch(
    name: &str,
    args: Vec<Sequence>,
    store: &mut Store,
    env: &DynEnv,
) -> Option<XdmResult<Sequence>> {
    // `fn:parse-xml` is the one built-in that needs `&mut Store` (the
    // parsed document's nodes are allocated in it); everything else lives
    // in the shared read-only table below.
    if name.strip_prefix("fn:").unwrap_or(name) == "parse-xml" {
        let mut it = args.into_iter();
        return Some(if it.len() == 1 {
            (|| {
                let s = opt_string(it.next().unwrap(), store)?;
                let doc = xqdm::xml::parse_document(store, &s)?;
                Ok(seq![Item::Node(doc)])
            })()
        } else {
            Err(wrong_arity("parse-xml", it.len()))
        });
    }
    dispatch_readonly(name, args, store, env)
}

/// Dispatch a built-in call through shared (`&Store`) access only — the
/// entry point parallel workers use (every built-in except `fn:parse-xml`
/// merely reads the store). `fn:parse-xml` reports `XQB0050` here: the
/// parallel gate excludes it statically, so reaching that error indicates
/// a gate bug rather than a user mistake.
pub fn dispatch_readonly(
    name: &str,
    args: Vec<Sequence>,
    store: &Store,
    env: &DynEnv,
) -> Option<XdmResult<Sequence>> {
    // Internal / constructor functions keyed on the full prefixed name.
    if let Some(r) = dispatch_prefixed(name, &args, store) {
        return Some(r);
    }
    let local = name.strip_prefix("fn:").unwrap_or(name);
    if !is_builtin_local(local) {
        return None;
    }
    if local == "parse-xml" {
        return Some(Err(XdmError::new(
            "XQB0050",
            "fn:parse-xml mutates the store and cannot run in a parallel region",
        )));
    }
    Some(call(local, args, store, env))
}

/// Built-ins the effect lattice rates `Pure` but which the parallel gate
/// must still reject: `fn:parse-xml` allocates store nodes behind its
/// read-only rating, `fn:trace` writes to stderr, whose line order a
/// fan-out would scramble, and `xqb:stats`/`xqb:reset-stats` read or
/// clear ambient registry state a fan-out would make nondeterministic.
pub fn is_par_opaque(name: &str) -> bool {
    matches!(
        name.strip_prefix("fn:").unwrap_or(name),
        "parse-xml" | "trace" | "xqb:stats" | "xqb:reset-stats"
    )
}

/// Is `name` (possibly `fn:`-prefixed, or a special `fs:`/`xs:` name) a
/// built-in?
pub fn is_builtin(name: &str) -> bool {
    matches!(
        name,
        "fs:avt"
            | "fs:intersect"
            | "fs:except"
            | "xs:integer"
            | "xs:string"
            | "xs:double"
            | "xs:boolean"
            | "xqb:explain"
            | "xqb:stats"
            | "xqb:reset-stats"
            | "xqb:fingerprint"
    ) || is_builtin_local(name.strip_prefix("fn:").unwrap_or(name))
}

fn is_builtin_local(local: &str) -> bool {
    const NAMES: &[&str] = &[
        "count",
        "empty",
        "exists",
        "not",
        "boolean",
        "string",
        "string-length",
        "data",
        "number",
        "concat",
        "string-join",
        "contains",
        "starts-with",
        "ends-with",
        "substring",
        "substring-before",
        "substring-after",
        "upper-case",
        "lower-case",
        "normalize-space",
        "translate",
        "sum",
        "avg",
        "min",
        "max",
        "abs",
        "round",
        "floor",
        "ceiling",
        "distinct-values",
        "reverse",
        "subsequence",
        "insert-before",
        "remove",
        "index-of",
        "exactly-one",
        "zero-or-one",
        "one-or-more",
        "last",
        "position",
        "name",
        "local-name",
        "root",
        "true",
        "false",
        "deep-equal",
        "error",
        "trace",
        "head",
        "tail",
        "parse-xml",
        "serialize",
    ];
    NAMES.contains(&local)
}

fn wrong_arity(name: &str, n: usize) -> XdmError {
    XdmError::new(
        "XPST0017",
        format!("wrong number of arguments ({n}) for fn:{name}"),
    )
}

fn call(local: &str, args: Vec<Sequence>, store: &Store, env: &DynEnv) -> XdmResult<Sequence> {
    let nargs = args.len();
    let mut it = args.into_iter();
    let mut next = move || it.next().unwrap_or_default();

    match (local, nargs) {
        // ---------- sequences ----------
        ("count", 1) => Ok(seq![Item::integer(next().len() as i64)]),
        ("empty", 1) => Ok(seq![Item::boolean(next().is_empty())]),
        ("exists", 1) => Ok(seq![Item::boolean(!next().is_empty())]),
        ("not", 1) => Ok(seq![Item::boolean(!item::effective_boolean(
            &next(),
            store,
        )?)]),
        ("boolean", 1) => Ok(seq![Item::boolean(item::effective_boolean(
            &next(),
            store,
        )?)]),
        ("distinct-values", 1) => {
            let atoms = item::atomize(&next(), store)?;
            let mut out: Vec<Atomic> = Vec::new();
            for a in atoms {
                let dup = out
                    .iter()
                    .any(|b| matches!(value_compare(CompareOp::Eq, &a, b), Ok(true)));
                if !dup {
                    out.push(a);
                }
            }
            Ok(out.into_iter().map(Item::Atomic).collect())
        }
        ("reverse", 1) => {
            let mut v = next();
            v.reverse();
            Ok(v)
        }
        ("subsequence", 2 | 3) => {
            let seq = next();
            let start = one_double(next(), store)?.round() as i64;
            let end = if nargs == 3 {
                start + one_double(next(), store)?.round() as i64
            } else {
                i64::MAX
            };
            Ok(seq
                .into_iter()
                .enumerate()
                .filter(|(i, _)| {
                    let pos = (*i + 1) as i64;
                    pos >= start && pos < end
                })
                .map(|(_, x)| x)
                .collect())
        }
        ("insert-before", 3) => {
            let seq = next();
            let pos = one_integer(next(), store)?.max(1) as usize;
            let ins = next();
            let at = (pos - 1).min(seq.len());
            let mut out = seq.into_vec();
            out.splice(at..at, ins);
            Ok(out.into())
        }
        ("remove", 2) => {
            let seq = next();
            let pos = one_integer(next(), store)?;
            Ok(seq
                .into_iter()
                .enumerate()
                .filter(|(i, _)| (*i + 1) as i64 != pos)
                .map(|(_, x)| x)
                .collect())
        }
        ("index-of", 2) => {
            let seq = item::atomize(&next(), store)?;
            let target = one_atomic(next(), store)?;
            Ok(seq
                .iter()
                .enumerate()
                .filter(|(_, a)| matches!(value_compare(CompareOp::Eq, a, &target), Ok(true)))
                .map(|(i, _)| Item::integer((i + 1) as i64))
                .collect())
        }
        ("exactly-one", 1) => {
            let v = next();
            if v.len() == 1 {
                Ok(v)
            } else {
                Err(XdmError::value(
                    "FORG0005",
                    "fn:exactly-one called with a non-singleton",
                ))
            }
        }
        ("zero-or-one", 1) => {
            let v = next();
            if v.len() <= 1 {
                Ok(v)
            } else {
                Err(XdmError::value(
                    "FORG0003",
                    "fn:zero-or-one called with more than one item",
                ))
            }
        }
        ("one-or-more", 1) => {
            let v = next();
            if v.is_empty() {
                Err(XdmError::value("FORG0004", "fn:one-or-more called with ()"))
            } else {
                Ok(v)
            }
        }
        ("head", 1) => Ok(next().into_iter().take(1).collect()),
        ("tail", 1) => Ok(next().into_iter().skip(1).collect()),
        // ---------- focus ----------
        ("position", 0) => Ok(seq![Item::integer(env.focus()?.position as i64)]),
        ("last", 0) => Ok(seq![Item::integer(env.focus()?.size as i64)]),
        // ---------- strings ----------
        ("string", 0 | 1) => {
            let v = if nargs == 0 { focus_seq(env)? } else { next() };
            match item::zero_or_one(v)? {
                None => Ok(seq![Item::string("")]),
                Some(x) => Ok(seq![Item::string(x.string_value(store)?)]),
            }
        }
        ("string-length", 0 | 1) => {
            let v = if nargs == 0 { focus_seq(env)? } else { next() };
            let s = opt_string(v, store)?;
            Ok(seq![Item::integer(s.chars().count() as i64)])
        }
        ("data", 1) => Ok(item::atomize(&next(), store)?
            .into_iter()
            .map(Item::Atomic)
            .collect()),
        ("number", 0 | 1) => {
            let v = if nargs == 0 { focus_seq(env)? } else { next() };
            let d = match item::zero_or_one(v)? {
                None => f64::NAN,
                Some(x) => x.atomize(store)?.to_double().unwrap_or(f64::NAN),
            };
            Ok(seq![Item::double(d)])
        }
        ("concat", n) if n >= 2 => {
            let mut out = String::new();
            for _ in 0..n {
                let v = next();
                match item::zero_or_one(v)? {
                    None => {}
                    Some(x) => out.push_str(&x.string_value(store)?),
                }
            }
            Ok(seq![Item::string(out)])
        }
        ("string-join", 2) => {
            let seq = next();
            let sep = opt_string(next(), store)?;
            let parts: Vec<String> = seq
                .iter()
                .map(|i| i.string_value(store))
                .collect::<XdmResult<_>>()?;
            Ok(seq![Item::string(parts.join(&sep))])
        }
        ("contains", 2) => {
            let (a, b) = (opt_string(next(), store)?, opt_string(next(), store)?);
            Ok(seq![Item::boolean(a.contains(&b))])
        }
        ("starts-with", 2) => {
            let (a, b) = (opt_string(next(), store)?, opt_string(next(), store)?);
            Ok(seq![Item::boolean(a.starts_with(&b))])
        }
        ("ends-with", 2) => {
            let (a, b) = (opt_string(next(), store)?, opt_string(next(), store)?);
            Ok(seq![Item::boolean(a.ends_with(&b))])
        }
        ("substring", 2 | 3) => {
            let s = opt_string(next(), store)?;
            let start = one_double(next(), store)?.round() as i64;
            let end = if nargs == 3 {
                start + one_double(next(), store)?.round() as i64
            } else {
                i64::MAX
            };
            let out: String = s
                .chars()
                .enumerate()
                .filter(|(i, _)| {
                    let pos = (*i + 1) as i64;
                    pos >= start && pos < end
                })
                .map(|(_, c)| c)
                .collect();
            Ok(seq![Item::string(out)])
        }
        ("substring-before", 2) => {
            let (a, b) = (opt_string(next(), store)?, opt_string(next(), store)?);
            Ok(seq![Item::string(
                a.find(&b).map(|i| a[..i].to_string()).unwrap_or_default(),
            )])
        }
        ("substring-after", 2) => {
            let (a, b) = (opt_string(next(), store)?, opt_string(next(), store)?);
            Ok(seq![Item::string(
                a.find(&b)
                    .map(|i| a[i + b.len()..].to_string())
                    .unwrap_or_default(),
            )])
        }
        ("upper-case", 1) => Ok(seq![Item::string(
            opt_string(next(), store)?.to_uppercase(),
        )]),
        ("lower-case", 1) => Ok(seq![Item::string(
            opt_string(next(), store)?.to_lowercase(),
        )]),
        ("normalize-space", 0 | 1) => {
            let v = if nargs == 0 { focus_seq(env)? } else { next() };
            let s = opt_string(v, store)?;
            Ok(seq![Item::string(
                s.split_whitespace().collect::<Vec<_>>().join(" "),
            )])
        }
        ("translate", 3) => {
            let s = opt_string(next(), store)?;
            let from: Vec<char> = opt_string(next(), store)?.chars().collect();
            let to: Vec<char> = opt_string(next(), store)?.chars().collect();
            let out: String = s
                .chars()
                .filter_map(|c| match from.iter().position(|&f| f == c) {
                    Some(i) => to.get(i).copied(),
                    None => Some(c),
                })
                .collect();
            Ok(seq![Item::string(out)])
        }
        // ---------- numerics / aggregates ----------
        ("sum", 1 | 2) => {
            let atoms = item::atomize(&next(), store)?;
            if atoms.is_empty() {
                return if nargs == 2 {
                    Ok(next())
                } else {
                    Ok(seq![Item::integer(0)])
                };
            }
            sum_numeric(&atoms)
        }
        ("avg", 1) => {
            let atoms = item::atomize(&next(), store)?;
            if atoms.is_empty() {
                return Ok(seq![]);
            }
            let n = atoms.len() as f64;
            let total = sum_numeric(&atoms)?[0].atomize(store)?.to_double()?;
            Ok(seq![Item::double(total / n)])
        }
        ("min" | "max", 1) => {
            let atoms = item::atomize(&next(), store)?;
            if atoms.is_empty() {
                return Ok(seq![]);
            }
            let op = if local == "max" {
                CompareOp::Gt
            } else {
                CompareOp::Lt
            };
            let mut best = coerce_comparable(atoms[0].clone())?;
            for a in &atoms[1..] {
                let a = coerce_comparable(a.clone())?;
                if value_compare(op, &a, &best)? {
                    best = a;
                }
            }
            Ok(seq![Item::Atomic(best)])
        }
        ("abs" | "round" | "floor" | "ceiling", 1) => match item::zero_or_one(next())? {
            None => Ok(seq![]),
            Some(x) => match x.atomize(store)? {
                Atomic::Integer(i) => Ok(seq![Item::integer(if local == "abs" {
                    i.abs()
                } else {
                    i
                })]),
                a => {
                    let d = a.to_double()?;
                    let r = match local {
                        "abs" => d.abs(),
                        "round" => (d + 0.5).floor(),
                        "floor" => d.floor(),
                        "ceiling" => d.ceil(),
                        _ => unreachable!(),
                    };
                    Ok(seq![Item::double(r)])
                }
            },
        },
        // ---------- nodes ----------
        ("name" | "local-name", 0 | 1) => {
            let v = if nargs == 0 { focus_seq(env)? } else { next() };
            match item::zero_or_one(v)? {
                None => Ok(seq![Item::string("")]),
                Some(Item::Node(n)) => {
                    let s = match store.name(n)? {
                        None => String::new(),
                        Some(q) if local == "local-name" => q.local,
                        Some(q) => q.to_string(),
                    };
                    Ok(seq![Item::string(s)])
                }
                Some(Item::Atomic(_)) => Err(XdmError::type_error(format!(
                    "fn:{local} expects a node argument"
                ))),
            }
        }
        ("root", 0 | 1) => {
            let v = if nargs == 0 { focus_seq(env)? } else { next() };
            match item::zero_or_one(v)? {
                None => Ok(seq![]),
                Some(Item::Node(n)) => Ok(seq![Item::Node(store.root(n)?)]),
                Some(Item::Atomic(_)) => {
                    Err(XdmError::type_error("fn:root expects a node argument"))
                }
            }
        }
        ("deep-equal", 2) => {
            let (a, b) = (next(), next());
            Ok(seq![Item::boolean(item::deep_equal(&a, &b, store)?)])
        }
        ("serialize", 1) => {
            let v = next();
            let mut out = String::new();
            for it in &v {
                match it {
                    Item::Node(n) => out.push_str(&xqdm::xml::serialize(store, *n)?),
                    Item::Atomic(a) => out.push_str(&a.string_value()),
                }
            }
            Ok(seq![Item::string(out)])
        }
        // ---------- misc ----------
        ("true", 0) => Ok(seq![Item::boolean(true)]),
        ("false", 0) => Ok(seq![Item::boolean(false)]),
        ("error", 0 | 1) => {
            let msg = if nargs == 0 {
                "fn:error called".to_string()
            } else {
                opt_string(next(), store)?
            };
            Err(XdmError::new("FOER0000", msg))
        }
        ("trace", 2) => {
            let v = next();
            let label = opt_string(next(), store)?;
            eprintln!("trace[{label}]: {} item(s)", v.len());
            Ok(v)
        }
        (other, n) => Err(wrong_arity(other, n)),
    }
}

/// Internal / constructor functions keyed on the full prefixed name.
fn dispatch_prefixed(name: &str, args: &[Sequence], store: &Store) -> Option<XdmResult<Sequence>> {
    if name == "xqb:panic" {
        // Failure-injection hook: panics mid-evaluation so tests can
        // exercise the engine's panic isolation (catch + store rollback).
        // Deliberately a panic, not an error — that is the point.
        panic!("xqb:panic() called");
    }
    if name == "xqb:stats" {
        // Snapshot the process-wide metrics registry as one JSON string.
        // Reads ambient mutable state, so the parallel gate rejects it
        // (is_par_opaque) even though the effect lattice rates it Pure.
        return Some(if args.is_empty() {
            Ok(seq![Item::string(
                crate::obs::global().snapshot().to_json(),
            )])
        } else {
            Err(XdmError::new(
                "XPST0017",
                format!("wrong number of arguments ({}) for xqb:stats", args.len()),
            ))
        });
    }
    if name == "xqb:reset-stats" {
        // Zero every global counter/histogram and clear the slow-query
        // ring; returns the empty sequence.
        return Some(if args.is_empty() {
            crate::obs::global().reset();
            Ok(seq![])
        } else {
            Err(XdmError::new(
                "XPST0017",
                format!(
                    "wrong number of arguments ({}) for xqb:reset-stats",
                    args.len()
                ),
            ))
        });
    }
    if name == "xqb:fingerprint" {
        // The canonical store hash (Store::fingerprint, hex-rendered):
        // recovery tests, the REPL, and differential tests compare the
        // same value. Pure over the store argument, so the parallel gate
        // does not need to reject it.
        return Some(if args.is_empty() {
            Ok(seq![Item::string(format!("{:016x}", store.fingerprint()))])
        } else {
            Err(XdmError::new(
                "XPST0017",
                format!(
                    "wrong number of arguments ({}) for xqb:fingerprint",
                    args.len()
                ),
            ))
        });
    }
    if name == "xqb:explain" {
        // EXPLAIN from inside the language: compile the argument query
        // through the installed planner and return the paper-style plan.
        let arg = args.first().cloned().unwrap_or_default();
        return Some((|| {
            let query = item::exactly_one(arg)?.string_value(store)?;
            let program = xqsyn::compile(&query).map_err(|e| {
                XdmError::new("XQB0040", format!("xqb:explain: cannot parse query: {e}"))
            })?;
            let text = match crate::planner::default_planner() {
                Some(planner) => planner.plan(&program).explain(),
                None => crate::planner::render_unoptimized(&program),
            };
            Ok(seq![Item::string(text)])
        })());
    }
    if matches!(name, "fs:intersect" | "fs:except") {
        // The normalization targets of `intersect` / `except`: node
        // identity semantics, document-order deduplicated result.
        let a = args.first().cloned().unwrap_or_default();
        let b = args.get(1).cloned().unwrap_or_default();
        return Some((|| {
            let left = item::all_nodes(&a)?;
            let right: std::collections::HashSet<_> = item::all_nodes(&b)?.into_iter().collect();
            let keep = name == "fs:intersect";
            let mut nodes: Vec<_> = left
                .into_iter()
                .filter(|n| right.contains(n) == keep)
                .collect();
            store.sort_and_dedup(&mut nodes)?;
            Ok(nodes.into_iter().map(Item::Node).collect())
        })());
    }
    if !matches!(
        name,
        "fs:avt" | "xs:integer" | "xs:string" | "xs:double" | "xs:boolean"
    ) {
        return None;
    }
    let v = args.first().cloned().unwrap_or_default();
    let result = match name {
        "fs:avt" => (|| {
            // Attribute-value-template rule: atomize the enclosed
            // expression's value and join with single spaces.
            let parts: Vec<String> = item::atomize(&v, store)?
                .into_iter()
                .map(|a| a.string_value())
                .collect();
            Ok(seq![Item::string(parts.join(" "))])
        })(),
        "xs:integer" => (|| match item::zero_or_one(v)? {
            None => Ok(seq![]),
            Some(x) => Ok(seq![Item::integer(x.atomize(store)?.to_integer()?)]),
        })(),
        "xs:double" => (|| match item::zero_or_one(v)? {
            None => Ok(seq![]),
            Some(x) => Ok(seq![Item::double(x.atomize(store)?.to_double()?)]),
        })(),
        "xs:string" => (|| match item::zero_or_one(v)? {
            None => Ok(seq![]),
            Some(x) => Ok(seq![Item::string(x.string_value(store)?)]),
        })(),
        "xs:boolean" => (|| match item::zero_or_one(v)? {
            None => Ok(seq![]),
            Some(x) => Ok(seq![Item::boolean(x.atomize(store)?.to_boolean()?)]),
        })(),
        _ => unreachable!(),
    };
    Some(result)
}

// ----------------------------------------------------------------------
// helpers
// ----------------------------------------------------------------------

fn focus_seq(env: &DynEnv) -> XdmResult<Sequence> {
    Ok(seq![env.focus()?.item.clone()])
}

fn opt_string(v: Sequence, store: &Store) -> XdmResult<String> {
    match item::zero_or_one(v)? {
        None => Ok(String::new()),
        Some(x) => x.string_value(store),
    }
}

fn one_atomic(v: Sequence, store: &Store) -> XdmResult<Atomic> {
    item::exactly_one(v)?.atomize(store)
}

fn one_integer(v: Sequence, store: &Store) -> XdmResult<i64> {
    one_atomic(v, store)?.to_integer()
}

fn one_double(v: Sequence, store: &Store) -> XdmResult<f64> {
    one_atomic(v, store)?.to_double()
}

/// In min/max, untyped values compare as doubles (the F&O rule).
fn coerce_comparable(a: Atomic) -> XdmResult<Atomic> {
    match a {
        Atomic::Untyped(s) => xqdm::atomic::parse_double(&s)
            .map(Atomic::Double)
            .ok_or_else(|| XdmError::value("FORG0001", format!("cannot cast \"{s}\" to double"))),
        other => Ok(other),
    }
}

/// Sum, preserving integer-ness when every operand is an integer.
fn sum_numeric(atoms: &[Atomic]) -> XdmResult<Sequence> {
    if atoms.iter().all(|a| matches!(a, Atomic::Integer(_))) {
        let mut acc: i64 = 0;
        for a in atoms {
            if let Atomic::Integer(i) = a {
                acc = acc
                    .checked_add(*i)
                    .ok_or_else(|| XdmError::value("FOAR0002", "integer overflow in sum"))?;
            }
        }
        return Ok(seq![Item::integer(acc)]);
    }
    let mut acc = 0.0;
    for a in atoms {
        acc += match a {
            Atomic::Untyped(_) => coerce_comparable(a.clone())?.to_double()?,
            other => other.to_double()?,
        };
    }
    Ok(seq![Item::double(acc)])
}
