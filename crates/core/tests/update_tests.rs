//! Update and `snap` semantics: the paper's §2–§3 behaviours, each worked
//! example verbatim where possible.

use xqcore::{Engine, Error};

fn engine_with(xml: &str) -> Engine {
    let mut e = Engine::new();
    e.load_document("doc", xml).unwrap();
    e
}

fn run(e: &mut Engine, q: &str) -> String {
    let r = e
        .run(q)
        .unwrap_or_else(|err| panic!("query {q:?} failed: {err}"));
    e.serialize(&r).unwrap()
}

// ---------------------------------------------------------------------
// Snapshot semantics: delayed application
// ---------------------------------------------------------------------

#[test]
fn updates_invisible_within_their_snap_scope() {
    // Inside the (implicit, top-level) snap, an insert is pending: the
    // count sees the store before application.
    let mut e = engine_with("<log/>");
    assert_eq!(
        run(
            &mut e,
            "(insert { <entry/> } into { $doc/log }, count($doc/log/entry))"
        ),
        "0"
    );
    // After the query, the top-level snap has closed: the entry exists.
    assert_eq!(run(&mut e, "count($doc/log/entry)"), "1");
}

#[test]
fn explicit_snap_makes_effects_visible() {
    // §2.3: "the code can decide to see its own effects."
    let mut e = engine_with("<log/>");
    assert_eq!(
        run(
            &mut e,
            "(snap insert { <entry/> } into { $doc/log }, count($doc/log/entry))"
        ),
        "1"
    );
}

#[test]
fn sequence_evaluates_left_to_right() {
    // §2.3 relies on e1,e2 evaluating e1 fully before e2.
    let mut e = engine_with("<log/>");
    assert_eq!(
        run(
            &mut e,
            "(snap insert { <a/> } into { $doc/log },
              snap insert { <b/> } into { $doc/log },
              count($doc/log/*))"
        ),
        "2"
    );
    assert_eq!(run(&mut e, "for $n in $doc/log/* return name($n)"), "a b");
}

#[test]
fn paper_nested_snap_ordering_example() {
    // §3.4: inserts <b/><a/><c/> in this order, because the inner snap
    // closes first and only applies the updates in its own scope.
    let mut e = engine_with("<x/>");
    e.bind("x", e.binding("doc").unwrap().clone());
    run(
        &mut e,
        r#"let $x := $doc/x return
           snap ordered { insert {<a/>} into $x,
                          snap { insert {<b/>} into $x },
                          insert {<c/>} into $x }"#,
    );
    assert_eq!(run(&mut e, "for $n in $doc/x/* return name($n)"), "b a c");
}

#[test]
fn deeply_nested_snaps_close_inside_out() {
    let mut e = engine_with("<x/>");
    run(
        &mut e,
        r#"let $x := $doc/x return
           snap { insert {<l1/>} into $x,
                  snap { insert {<l2/>} into $x,
                         snap { insert {<l3/>} into $x } } }"#,
    );
    // Innermost applies first.
    assert_eq!(
        run(&mut e, "for $n in $doc/x/* return name($n)"),
        "l3 l2 l1"
    );
}

// ---------------------------------------------------------------------
// Update primitives
// ---------------------------------------------------------------------

#[test]
fn insert_variants_position_correctly() {
    let mut e = engine_with("<list><mid/></list>");
    run(&mut e, "snap insert { <last/> } into { $doc/list }");
    run(
        &mut e,
        "snap insert { <first/> } as first into { $doc/list }",
    );
    run(
        &mut e,
        "snap insert { <before-mid/> } before { $doc/list/mid }",
    );
    run(
        &mut e,
        "snap insert { <after-mid/> } after { $doc/list/mid }",
    );
    assert_eq!(
        run(&mut e, "for $n in $doc/list/* return name($n)"),
        "first before-mid mid after-mid last"
    );
}

#[test]
fn insert_copies_source_tree() {
    // Normalization's implicit copy: the inserted tree is a fresh copy, so
    // the original is still where it was (no two-parent trees).
    let mut e = engine_with("<r><src><k/></src><dst/></r>");
    run(&mut e, "snap insert { $doc/r/src } into { $doc/r/dst }");
    assert_eq!(run(&mut e, "count($doc/r/src)"), "1");
    assert_eq!(run(&mut e, "count($doc/r/dst/src/k)"), "1");
    // Distinct identities.
    assert_eq!(run(&mut e, "$doc/r/src is $doc/r/dst/src"), "false");
}

#[test]
fn insert_sequence_of_nodes() {
    let mut e = engine_with("<r><dst/></r>");
    run(
        &mut e,
        "snap insert { (<a/>, <b/>, <c/>) } into { $doc/r/dst }",
    );
    assert_eq!(
        run(&mut e, "for $n in $doc/r/dst/* return name($n)"),
        "a b c"
    );
}

#[test]
fn delete_detaches_subtree() {
    let mut e = engine_with("<r><a><k>v</k></a><b/></r>");
    run(&mut e, "snap delete { $doc/r/a }");
    assert_eq!(run(&mut e, "count($doc/r/*)"), "1");
}

#[test]
fn paper_detach_semantics_deleted_node_still_usable() {
    // §3.1: "if the 'deleted' (actually, detached) node is still accessible
    // from a variable, then it can still be queried, or inserted
    // somewhere."
    let mut e = engine_with("<r><a><k>v</k></a><dst/></r>");
    assert_eq!(
        run(
            &mut e,
            r#"let $a := $doc/r/a return
               (snap delete { $a },
                string($a/k),
                snap insert { $a } into { $doc/r/dst },
                count($doc/r/dst/a/k))"#
        ),
        "v 1"
    );
}

#[test]
fn delete_accepts_a_sequence() {
    // §2.3: snap delete $log/logentry (deletes all of them).
    let mut e = engine_with("<log><logentry/><logentry/><logentry/></log>");
    run(&mut e, "snap delete $doc/log/logentry");
    assert_eq!(run(&mut e, "count($doc/log/logentry)"), "0");
}

#[test]
fn replace_swaps_node_in_place() {
    let mut e = engine_with("<r><a/><old/><b/></r>");
    run(&mut e, "snap replace { $doc/r/old } with { <new/> }");
    assert_eq!(run(&mut e, "for $n in $doc/r/* return name($n)"), "a new b");
}

#[test]
fn replace_copies_replacement() {
    let mut e = engine_with("<r><old/><src><k/></src></r>");
    run(&mut e, "snap replace { $doc/r/old } with { $doc/r/src }");
    // Source still present, plus the copy where <old/> was.
    assert_eq!(run(&mut e, "count($doc/r/src)"), "2");
}

#[test]
fn rename_element_and_attribute() {
    let mut e = engine_with("<r><x k=\"v\"/></r>");
    run(&mut e, "snap rename { $doc/r/x } to { \"y\" }");
    assert_eq!(run(&mut e, "count($doc/r/y)"), "1");
    run(&mut e, "snap rename { $doc/r/y/@k } to { \"k2\" }");
    assert_eq!(run(&mut e, "string($doc/r/y/@k2)"), "v");
}

#[test]
fn copy_is_a_fresh_unattached_tree() {
    let mut e = engine_with("<r><src><k>v</k></src></r>");
    assert_eq!(
        run(
            &mut e,
            r#"let $c := copy { $doc/r/src } return
               ($c is $doc/r/src, string($c/k), count($c/..))"#
        ),
        "false v 0"
    );
}

#[test]
fn update_operators_return_empty_sequence() {
    // §2.2: "atomic update operations always return the empty sequence."
    let mut e = engine_with("<r><a/><b/></r>");
    assert_eq!(run(&mut e, "count((insert { <x/> } into { $doc/r }))"), "0");
    assert_eq!(
        run(&mut e, "count((rename { $doc/r/a } to { \"a2\" }))"),
        "0"
    );
    assert_eq!(run(&mut e, "count((delete { $doc/r/b }))"), "0");
    assert_eq!(
        run(&mut e, "count((replace { $doc/r/x } with { <y/> }))"),
        "0"
    );
}

// ---------------------------------------------------------------------
// Update errors (partial-function preconditions)
// ---------------------------------------------------------------------

#[test]
fn insert_into_text_node_fails_at_application() {
    let mut e = engine_with("<r>text</r>");
    let err = e
        .run("snap insert { <x/> } into { $doc/r/text() }")
        .unwrap_err();
    assert!(matches!(err, Error::Eval(x) if x.code == "XQB0002"));
}

#[test]
fn replace_of_parentless_node_fails() {
    let mut e = engine_with("<r/>");
    let err = e
        .run("snap replace { copy { $doc/r } } with { <x/> }")
        .unwrap_err();
    assert!(matches!(err, Error::Eval(x) if x.code == "XQB0002"));
}

#[test]
fn rename_to_invalid_qname_fails() {
    let mut e = engine_with("<r><a/></r>");
    let err = e
        .run("snap rename { $doc/r/a } to { \"not a name\" }")
        .unwrap_err();
    assert!(matches!(err, Error::Eval(x) if x.code == "XQDY0074"));
}

#[test]
fn update_targets_must_be_nodes() {
    let mut e = engine_with("<r/>");
    assert!(e.run("snap delete { 42 }").is_err());
    assert!(e.run("snap rename { 42 } to { \"x\" }").is_err());
    assert!(e.run("snap insert { <a/> } into { 42 }").is_err());
}

// ---------------------------------------------------------------------
// The paper's use cases, end to end
// ---------------------------------------------------------------------

const AUCTION: &str = r#"<site>
  <people>
    <person id="person0"><name>Kasidit Treweek</name></person>
    <person id="person1"><name>Jaana Ge</name></person>
  </people>
  <items>
    <item id="item0"><name>Duteous</name></item>
    <item id="item1"><name>Great</name></item>
  </items>
</site>"#;

#[test]
fn paper_get_item_with_logging() {
    // §2.2: an update inside a function body, composed with a result value.
    let mut e = Engine::new();
    e.load_document("auction", AUCTION).unwrap();
    e.load_document("logdoc", "<log/>").unwrap();
    let q = r#"
declare function get_item($itemid, $userid) {
  let $item := $auction//item[@id = $itemid]
  return (
    let $name := $auction//person[@id = $userid]/name return
    insert { <logentry user="{$name}" itemid="{$itemid}"/> }
    into { $logdoc/log },
    $item
  )
};
get_item("item0", "person1")"#;
    let r = e.run(q).unwrap();
    // The function returned the item...
    assert_eq!(
        e.serialize(&r).unwrap(),
        "<item id=\"item0\"><name>Duteous</name></item>"
    );
    // ...and the top-level snap applied the log insertion.
    let log = e.run("$logdoc/log/logentry").unwrap();
    assert_eq!(
        e.serialize(&log).unwrap(),
        "<logentry user=\"Jaana Ge\" itemid=\"item0\"/>"
    );
}

#[test]
fn paper_log_archiving_sees_own_effects() {
    // §2.3: snap makes the insertion visible so the archiving condition
    // can fire within the same program.
    let mut e = Engine::new();
    e.load_document("logdoc", "<log><logentry/><logentry/></log>")
        .unwrap();
    e.load_document("archive", "<archive/>").unwrap();
    let q = r#"
declare variable $maxlog := 3;
(snap insert { <logentry/> } into { $logdoc/log },
 if (count($logdoc/log/logentry) >= $maxlog)
 then (snap insert { <archived n="{count($logdoc/log/logentry)}"/> }
            into { $archive/archive },
       snap delete $logdoc/log/logentry)
 else ())"#;
    e.run(q).unwrap();
    let log = e.run("$logdoc/log").unwrap();
    assert_eq!(e.serialize(&log).unwrap(), "<log/>");
    let archived = e.run("$archive/archive/archived").unwrap();
    assert_eq!(e.serialize(&archived).unwrap(), "<archived n=\"3\"/>");
}

#[test]
fn paper_counter_nextid() {
    // §2.5: the snap-wrapped counter function; each call sees the previous
    // call's effect.
    let mut e = Engine::new();
    let q = r#"
declare variable $d := element counter { 0 };
declare function nextid() {
  snap { replace { $d/text() } with { $d + 1 },
         $d }
};
(string(nextid()), string(nextid()), string(nextid()))"#;
    let r = e.run(q).unwrap();
    // replace{} with{} evaluates $d + 1 BEFORE applying, and the function
    // returns $d before the snap closes... the value returned is the node;
    // stringized after each snap application by the outer string().
    // First call: $d/text() replaced by 0+1=1 -> returns counter node.
    assert_eq!(e.serialize(&r).unwrap(), "1 2 3");
}

#[test]
fn counter_ids_are_unique_inside_one_query() {
    let mut e = Engine::new();
    let q = r#"
declare variable $d := element counter { 0 };
declare function nextid() {
  snap { replace { $d/text() } with { $d + 1 }, $d }
};
for $i in 1 to 5 return string(nextid())"#;
    let r = e.run(q).unwrap();
    assert_eq!(e.serialize(&r).unwrap(), "1 2 3 4 5");
}

#[test]
fn paper_purchasers_join_query() {
    // §2.1: the join + insert query; all matches inserted at query end.
    let mut e = Engine::new();
    e.load_document(
        "auction",
        r#"<site>
  <people>
    <person id="p1"/><person id="p2"/><person id="p3"/>
  </people>
  <closed_auctions>
    <closed_auction><buyer person="p1"/><itemref item="i1"/></closed_auction>
    <closed_auction><buyer person="p2"/><itemref item="i2"/></closed_auction>
    <closed_auction><buyer person="p1"/><itemref item="i3"/></closed_auction>
  </closed_auctions>
</site>"#,
    )
    .unwrap();
    e.load_document("purchasers", "<purchasers/>").unwrap();
    let q = r#"
for $p in $auction//person
for $t in $auction//closed_auction
where $t/buyer/@person = $p/@id
return insert { <buyer person="{$t/buyer/@person}"
                        itemid="{$t/itemref/@item}" /> }
       into { $purchasers/purchasers }"#;
    e.run(q).unwrap();
    let n = e.run("count($purchasers//buyer)").unwrap();
    assert_eq!(e.serialize(&n).unwrap(), "3");
    let items = e
        .run("$purchasers//buyer[@person = \"p1\"]/@itemid")
        .unwrap();
    assert_eq!(e.serialize(&items).unwrap(), "itemid=\"i1\" itemid=\"i3\"");
}

// ---------------------------------------------------------------------
// Snap modes
// ---------------------------------------------------------------------

#[test]
fn conflict_detection_rejects_order_dependent_deltas() {
    let mut e = engine_with("<x/>");
    // Two appends to the same parent: order-dependent => conflict.
    let err = e
        .run(
            "snap conflict-detection { insert { <a/> } into { $doc/x },
                                       insert { <b/> } into { $doc/x } }",
        )
        .unwrap_err();
    assert!(matches!(err, Error::Eval(x) if x.code == "XQB0010"));
}

#[test]
fn conflict_detection_accepts_disjoint_updates() {
    let mut e = engine_with("<x><a/><b/></x>");
    e.run(
        "snap conflict-detection { rename { $doc/x/a } to { \"a2\" },
                                   delete { $doc/x/b } }",
    )
    .unwrap();
    assert_eq!(run(&mut e, "count($doc/x/a2)"), "1");
    assert_eq!(run(&mut e, "count($doc/x/b)"), "0");
}

#[test]
fn nondeterministic_mode_applies_all_updates() {
    let mut e = engine_with("<x><a/><b/><c/></x>");
    e.run(
        "snap nondeterministic { rename { $doc/x/a } to { \"a2\" },
                                 rename { $doc/x/b } to { \"b2\" },
                                 rename { $doc/x/c } to { \"c2\" } }",
    )
    .unwrap();
    assert_eq!(run(&mut e, "count($doc/x/*) = 3"), "true");
    assert_eq!(
        run(&mut e, "for $n in $doc/x/* return name($n)"),
        "a2 b2 c2"
    );
}

#[test]
fn nondeterministic_seed_changes_append_order() {
    let mut orders = std::collections::HashSet::new();
    for seed in 0..16 {
        let mut e = Engine::new().with_seed(seed);
        e.load_document("doc", "<x/>").unwrap();
        e.run(
            "snap nondeterministic { insert { <a/> } into { $doc/x },
                                     insert { <b/> } into { $doc/x } }",
        )
        .unwrap();
        let names = e.run("for $n in $doc/x/* return name($n)").unwrap();
        orders.insert(e.serialize(&names).unwrap());
    }
    assert_eq!(
        orders.len(),
        2,
        "both orders should occur across seeds: {orders:?}"
    );
}

#[test]
fn ordered_mode_is_deterministic_across_seeds() {
    for seed in 0..8 {
        let mut e = Engine::new().with_seed(seed);
        e.load_document("doc", "<x/>").unwrap();
        e.run(
            "snap ordered { insert { <a/> } into { $doc/x },
                            insert { <b/> } into { $doc/x } }",
        )
        .unwrap();
        let names = e.run("for $n in $doc/x/* return name($n)").unwrap();
        assert_eq!(e.serialize(&names).unwrap(), "a b");
    }
}

// ---------------------------------------------------------------------
// Updates inside FLWOR / conditionals / functions
// ---------------------------------------------------------------------

#[test]
fn updates_in_for_body_accumulate_in_iteration_order() {
    let mut e = engine_with("<x/>");
    run(
        &mut e,
        "for $i in 1 to 4 return insert { element e { attribute n { $i } } } into { $doc/x }",
    );
    assert_eq!(
        run(&mut e, "for $n in $doc/x/e return string($n/@n)"),
        "1 2 3 4"
    );
}

#[test]
fn updates_in_both_branches_only_taken_branch_counts() {
    let mut e = engine_with("<x/>");
    run(
        &mut e,
        "for $i in 1 to 4 return
           if ($i mod 2 = 0)
           then insert { <even/> } into { $doc/x }
           else insert { <odd/> } into { $doc/x }",
    );
    assert_eq!(
        run(&mut e, "for $n in $doc/x/* return name($n)"),
        "odd even odd even"
    );
}

#[test]
fn snap_value_passes_through() {
    // snap returns its body's value (with empty Δ).
    let mut e = engine_with("<x/>");
    assert_eq!(run(&mut e, "snap { (1, 2, 3) }"), "1 2 3");
    // Per the Fig. 1 grammar, SnapExpr sits at the Expr level (like FLWOR),
    // so it needs parentheses in operand position.
    assert_eq!(run(&mut e, "1 + (snap { 2 })"), "3");
}

#[test]
fn failed_body_leaves_snap_unapplied() {
    // An error inside the snap body aborts the snap: its Δ is discarded.
    let mut e = engine_with("<x/>");
    let err = e.run("snap { insert { <a/> } into { $doc/x }, fn:error(\"boom\") }");
    assert!(err.is_err());
    assert_eq!(run(&mut e, "count($doc/x/*)"), "0");
}

#[test]
fn global_variable_initializers_can_construct() {
    let mut e = Engine::new();
    let r = e
        .run("declare variable $v := <v><a/><b/></v>; count($v/*)")
        .unwrap();
    assert_eq!(e.serialize(&r).unwrap(), "2");
}

#[test]
fn bound_sequence_values_survive_updates() {
    // A variable bound before an update still sees the detached node.
    let mut e = engine_with("<r><a><k/></a></r>");
    assert_eq!(
        run(
            &mut e,
            "let $a := $doc/r/a return (snap delete $a, count($a/k), count($doc/r/a))"
        ),
        "1 0"
    );
}

#[test]
fn counter_used_inside_logging_example() {
    // §2.5's combined example: nextid() inside the log entry constructor,
    // both under an outer snap.
    let mut e = Engine::new();
    e.load_document("logdoc", "<log/>").unwrap();
    let q = r#"
declare variable $d := element counter { 0 };
declare function nextid() {
  snap { replace { $d/text() } with { $d + 1 }, $d }
};
(snap insert { <logentry id="{nextid()}" user="u1"/> } into { $logdoc/log },
 snap insert { <logentry id="{nextid()}" user="u2"/> } into { $logdoc/log },
 for $l in $logdoc/log/logentry return string($l/@id))"#;
    let r = e.run(q).unwrap();
    assert_eq!(e.serialize(&r).unwrap(), "1 2");
}

// ---------------------------------------------------------------------
// `replace value of`: in-place value sets (value-aspect writes)
// ---------------------------------------------------------------------

#[test]
fn replace_value_of_sets_text_in_place() {
    let mut e = engine_with("<c><v>0</v></c>");
    assert_eq!(
        run(
            &mut e,
            "replace value of { $doc/c/v/text() } with { $doc/c/v + 41 }"
        ),
        ""
    );
    assert_eq!(run(&mut e, "string($doc/c/v)"), "41");
}

#[test]
fn replace_value_of_sets_attribute_in_place() {
    let mut e = engine_with("<r><x id=\"a\"/></r>");
    run(&mut e, "replace value of { $doc/r/x/@id } with { \"b\" }");
    assert_eq!(run(&mut e, "string($doc/r/x/@id)"), "b");
}

#[test]
fn replace_value_of_preserves_node_identity() {
    // Unlike `replace` (insert-new + delete-old), the bound text node is
    // still the live node afterwards.
    let mut e = engine_with("<c><v>0</v></c>");
    assert_eq!(
        run(
            &mut e,
            "let $t := $doc/c/v/text() return
             (snap replace value of { $t } with { \"9\" },
              string($t), count($doc/c/v/text()))"
        ),
        "9 1"
    );
}

#[test]
fn replace_value_of_is_pending_until_snap_closes() {
    let mut e = engine_with("<c><v>5</v></c>");
    assert_eq!(
        run(
            &mut e,
            "(replace value of { $doc/c/v/text() } with { 6 }, string($doc/c/v))"
        ),
        "5"
    );
    assert_eq!(run(&mut e, "string($doc/c/v)"), "6");
}

#[test]
fn replace_value_of_atomizes_and_joins_source() {
    let mut e = engine_with("<c><v>x</v></c>");
    run(
        &mut e,
        "replace value of { $doc/c/v/text() } with { (1, 2, 3) }",
    );
    assert_eq!(run(&mut e, "string($doc/c/v)"), "1 2 3");
}

#[test]
fn replace_value_of_rejects_element_targets() {
    let mut e = engine_with("<c><v>0</v></c>");
    let err = e
        .run("replace value of { $doc/c/v } with { 1 }")
        .unwrap_err();
    assert!(matches!(err, Error::Eval(_)), "got {err:?}");
}

#[test]
fn replace_value_of_empty_with_sets_empty_string() {
    // An empty `with` sequence atomizes to zero items: the space-join is
    // "" — a legal value set, not an error (on both target kinds).
    let mut e = engine_with("<c a=\"x\"><v>0</v></c>");
    run(&mut e, "replace value of { $doc/c/v/text() } with { () }");
    assert_eq!(run(&mut e, "string($doc/c/v)"), "");
    run(&mut e, "replace value of { $doc/c/@a } with { () }");
    assert_eq!(run(&mut e, "string($doc/c/@a)"), "");
    assert_eq!(run(&mut e, "count($doc/c/@a)"), "1");
}

#[test]
fn replace_value_of_comment_or_pi_target_is_an_update_error() {
    // Comment and PI nodes have string values but no settable value in
    // this data model: an XQB0010-family update error, raised at
    // evaluation (never a panic, never a type error).
    let mut e = engine_with("<c><!--note--><?pi data?><v>0</v></c>");
    for q in [
        "replace value of { $doc/c/comment() } with { 1 }",
        "replace value of { $doc/c/processing-instruction() } with { 1 }",
    ] {
        let err = e.run(q).unwrap_err();
        let Error::Eval(x) = &err else {
            panic!("expected eval error for {q}, got {err:?}")
        };
        assert_eq!(x.code, "XQB0011", "for {q}: {x}");
    }
}

#[test]
fn conflict_detection_rejects_disagreeing_value_sets() {
    let mut e = engine_with("<c><v>0</v></c>");
    let err = e
        .run(
            "snap conflict-detection {
               (replace value of { $doc/c/v/text() } with { 1 },
                replace value of { $doc/c/v/text() } with { 2 }) }",
        )
        .unwrap_err();
    let Error::Eval(x) = &err else {
        panic!("expected eval error, got {err:?}")
    };
    assert_eq!(x.code, "XQB0010");
    // Agreeing sets are conflict-free (idempotent writes commute).
    let mut e = engine_with("<c><v>0</v></c>");
    run(
        &mut e,
        "snap conflict-detection {
           (replace value of { $doc/c/v/text() } with { 7 },
            replace value of { $doc/c/v/text() } with { 7 }) }",
    );
    assert_eq!(run(&mut e, "string($doc/c/v)"), "7");
}
