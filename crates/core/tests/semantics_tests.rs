//! Deeper semantics coverage: update ordering across FLWOR clauses,
//! attribute updates, evaluation-order subtleties, constructor/update
//! interplay, and the focus (position/last) machinery.

use xqcore::{Engine, Error};

fn engine_with(xml: &str) -> Engine {
    let mut e = Engine::new();
    e.load_document("doc", xml).unwrap();
    e
}

fn run(e: &mut Engine, q: &str) -> String {
    let r = e
        .run(q)
        .unwrap_or_else(|err| panic!("query {q:?} failed: {err}"));
    e.serialize(&r).unwrap()
}

// ---------------------------------------------------------------------
// Update order across FLWOR clauses (§2.4: "a FLWOR expression may
// generate updates in the for, where, and return clause")
// ---------------------------------------------------------------------

#[test]
fn updates_in_let_where_and_return_interleave_in_clause_order() {
    let mut e = engine_with("<trace/>");
    // Per iteration: the let fires first, then the where, then the return.
    run(
        &mut e,
        r#"for $i in 1 to 2
           let $w := insert { <from-let n="{$i}"/> } into { $doc/trace }
           where (insert { <from-where n="{$i}"/> } into { $doc/trace }, true())
           return insert { <from-return n="{$i}"/> } into { $doc/trace }"#,
    );
    assert_eq!(
        run(
            &mut e,
            "for $n in $doc/trace/* return concat(name($n), string($n/@n))"
        ),
        "from-let1 from-where1 from-return1 from-let2 from-where2 from-return2"
    );
}

#[test]
fn updates_in_for_source_fire_once() {
    let mut e = engine_with("<trace/>");
    run(
        &mut e,
        "for $i in (insert { <src/> } into { $doc/trace }, 1, 2, 3)
         return insert { <body/> } into { $doc/trace }",
    );
    assert_eq!(run(&mut e, "count($doc/trace/src)"), "1");
    assert_eq!(run(&mut e, "count($doc/trace/body)"), "3");
}

#[test]
fn function_arguments_evaluate_left_to_right() {
    let mut e = engine_with("<trace/>");
    let q = r#"
declare function f($a, $b) { 0 };
f(snap insert { <first/> } into { $doc/trace },
  count($doc/trace/first))"#;
    // The snap in the first argument applies before the second argument
    // is evaluated (Appendix B's function rule).
    let r = e.run(q).unwrap();
    assert_eq!(e.serialize(&r).unwrap(), "0");
    assert_eq!(run(&mut e, "count($doc/trace/first)"), "1");
}

#[test]
fn comparison_operands_evaluate_left_to_right() {
    let mut e = engine_with("<trace/>");
    assert_eq!(
        run(
            &mut e,
            "(snap insert { <l/> } into { $doc/trace }, count($doc/trace/*))
             = count($doc/trace/*)"
        ),
        "true"
    );
}

#[test]
fn order_by_keys_may_have_effects() {
    let mut e = engine_with("<trace/>");
    run(
        &mut e,
        "for $x in (3, 1, 2)
         order by (insert { <k v=\"{$x}\"/> } into { $doc/trace }, $x)
         return $x",
    );
    // Keys evaluated once per binding, in binding order.
    assert_eq!(
        run(&mut e, "for $k in $doc/trace/k return string($k/@v)"),
        "3 1 2"
    );
}

#[test]
fn quantifier_short_circuit_limits_effects() {
    let mut e = engine_with("<trace/>");
    // `some` stops at the first witness: only items up to 2 are visited.
    assert_eq!(
        run(
            &mut e,
            "some $x in (1, 2, 3, 4) satisfies
               (snap insert { <v n=\"{$x}\"/> } into { $doc/trace }, $x = 2)"
        ),
        "true"
    );
    assert_eq!(run(&mut e, "count($doc/trace/v)"), "2");
}

// ---------------------------------------------------------------------
// Attribute updates
// ---------------------------------------------------------------------

#[test]
fn replace_attribute_with_attribute() {
    let mut e = engine_with("<r><x id=\"old\"/></r>");
    run(
        &mut e,
        "snap replace { $doc/r/x/@id } with { attribute id { \"new\" } }",
    );
    assert_eq!(run(&mut e, "string($doc/r/x/@id)"), "new");
    assert_eq!(run(&mut e, "count($doc/r/x/@*)"), "1");
}

#[test]
fn replace_attribute_with_differently_named_attribute() {
    let mut e = engine_with("<r><x id=\"v\"/></r>");
    run(
        &mut e,
        "snap replace { $doc/r/x/@id } with { attribute key { \"v2\" } }",
    );
    assert_eq!(run(&mut e, "count($doc/r/x/@id)"), "0");
    assert_eq!(run(&mut e, "string($doc/r/x/@key)"), "v2");
}

#[test]
fn replace_attribute_with_non_attribute_is_an_error() {
    let mut e = engine_with("<r><x id=\"v\"/></r>");
    let err = e
        .run("snap replace { $doc/r/x/@id } with { <y/> }")
        .unwrap_err();
    assert!(matches!(err, Error::Eval(x) if x.code == "XPTY0004"));
}

#[test]
fn delete_attribute() {
    let mut e = engine_with("<r><x a=\"1\" b=\"2\"/></r>");
    run(&mut e, "snap delete { $doc/r/x/@a }");
    assert_eq!(run(&mut e, "count($doc/r/x/@*)"), "1");
    assert_eq!(run(&mut e, "string($doc/r/x/@b)"), "2");
}

#[test]
fn rename_attribute_via_snap() {
    let mut e = engine_with("<r><x a=\"1\"/></r>");
    run(&mut e, "snap rename { $doc/r/x/@a } to { \"z\" }");
    assert_eq!(run(&mut e, "string($doc/r/x/@z)"), "1");
}

// ---------------------------------------------------------------------
// Constructors interacting with pending updates
// ---------------------------------------------------------------------

#[test]
fn constructor_copies_see_pre_update_state() {
    let mut e = engine_with("<r><src><k/></src></r>");
    // The wrap copy is taken while the delete is still pending: it
    // includes <k/>.
    assert_eq!(
        run(
            &mut e,
            "(delete { $doc/r/src/k }, count((<wrap>{$doc/r/src}</wrap>)/src/k))"
        ),
        "1"
    );
    // After the program, the original lost its child.
    assert_eq!(run(&mut e, "count($doc/r/src/k)"), "0");
}

#[test]
fn updates_target_originals_not_constructor_copies() {
    let mut e = engine_with("<r><src/></r>");
    // Insert into the copy inside the constructor: the original is
    // untouched, and the copy (returned) has the child only if the insert
    // applied before serialization — it doesn't (pending until end).
    let out = run(&mut e, "let $w := <wrap>{$doc/r/src}</wrap> return $w");
    assert_eq!(out, "<wrap><src/></wrap>");
}

#[test]
fn inserting_a_constructed_tree_then_querying_it() {
    let mut e = engine_with("<r/>");
    assert_eq!(
        run(
            &mut e,
            "(snap insert { <item><price>42</price></item> } into { $doc/r },
              $doc/r/item/price + 0)"
        ),
        "42"
    );
}

// ---------------------------------------------------------------------
// Focus machinery
// ---------------------------------------------------------------------

#[test]
fn position_and_last_in_nested_predicates() {
    let mut e = engine_with("<r><g><v/><v/><v/></g><g><v/></g></r>");
    // Inner predicate's focus is independent of the outer's.
    assert_eq!(
        run(&mut e, "count($doc//g[count(v[position() = last()]) = 1])"),
        "2"
    );
    assert_eq!(run(&mut e, "count($doc//g[v[2]])"), "1");
}

#[test]
fn context_item_in_predicates() {
    let mut e = engine_with("<r><n>1</n><n>5</n><n>3</n></r>");
    assert_eq!(run(&mut e, "count($doc/r/n[. > 2])"), "2");
    assert_eq!(
        run(&mut e, "for $x in $doc/r/n[. = 5] return string($x)"),
        "5"
    );
}

#[test]
fn position_outside_focus_is_an_error() {
    let mut e = Engine::new();
    let err = e.run("position()").unwrap_err();
    assert!(matches!(err, Error::Eval(x) if x.code == "XPDY0002"));
    let err = e.run("last()").unwrap_err();
    assert!(matches!(err, Error::Eval(x) if x.code == "XPDY0002"));
}

#[test]
fn filter_positional_on_plain_sequences() {
    let mut e = Engine::new();
    let r = e.run("(10, 20, 30, 40)[position() > 2]").unwrap();
    assert_eq!(e.serialize(&r).unwrap(), "30 40");
    let r = e.run("(10, 20, 30)[. > 15]").unwrap();
    assert_eq!(e.serialize(&r).unwrap(), "20 30");
    let r = e.run("(10, 20, 30)[2]").unwrap();
    assert_eq!(e.serialize(&r).unwrap(), "20");
}

// ---------------------------------------------------------------------
// Snap mode interactions at the language level
// ---------------------------------------------------------------------

#[test]
fn conflict_detection_allows_attribute_replacements_on_distinct_elements() {
    let mut e = engine_with("<r><x a=\"1\"/><y a=\"2\"/></r>");
    e.run(
        "snap conflict-detection {
           replace { $doc/r/x/@a } with { attribute a { \"10\" } },
           replace { $doc/r/y/@a } with { attribute a { \"20\" } } }",
    )
    .unwrap();
    assert_eq!(run(&mut e, "string($doc/r/x/@a)"), "10");
    assert_eq!(run(&mut e, "string($doc/r/y/@a)"), "20");
}

#[test]
fn conflict_detection_rejects_double_rename_via_language() {
    let mut e = engine_with("<r><x/></r>");
    let err = e
        .run(
            "snap conflict-detection { rename { $doc/r/x } to { \"a\" },
                                       rename { $doc/r/x } to { \"b\" } }",
        )
        .unwrap_err();
    assert!(matches!(err, Error::Eval(x) if x.code == "XQB0010"));
}

#[test]
fn nested_snap_modes_are_independent() {
    // An ordered outer snap with a conflict-detection inner snap: the
    // inner verification only covers the inner Δ.
    let mut e = engine_with("<r><x/><y/></r>");
    e.run(
        "snap ordered {
           insert { <o1/> } into { $doc/r },
           snap conflict-detection { rename { $doc/r/x } to { \"x2\" } },
           insert { <o2/> } into { $doc/r } }",
    )
    .unwrap();
    assert_eq!(run(&mut e, "count($doc/r/x2)"), "1");
    assert_eq!(run(&mut e, "count($doc/r/o1) + count($doc/r/o2)"), "2");
}

#[test]
fn empty_snap_is_a_no_op() {
    let mut e = engine_with("<r/>");
    assert_eq!(run(&mut e, "snap { () }"), "");
    assert_eq!(run(&mut e, "snap conflict-detection { 42 }"), "42");
}

// ---------------------------------------------------------------------
// Misc regression-style coverage
// ---------------------------------------------------------------------

#[test]
fn copy_of_mixed_sequence_copies_nodes_keeps_atomics() {
    let mut e = engine_with("<r><n/></r>");
    assert_eq!(
        run(
            &mut e,
            "let $c := copy { (1, $doc/r/n, \"s\") } return count($c)"
        ),
        "3"
    );
    assert_eq!(
        run(
            &mut e,
            "let $c := copy { ($doc/r/n) } return $c is $doc/r/n"
        ),
        "false"
    );
}

#[test]
fn insert_before_first_and_after_last() {
    let mut e = engine_with("<r><only/></r>");
    run(&mut e, "snap insert { <pre/> } before { $doc/r/only }");
    run(&mut e, "snap insert { <post/> } after { $doc/r/only }");
    assert_eq!(
        run(&mut e, "for $n in $doc/r/* return name($n)"),
        "pre only post"
    );
}

#[test]
fn deleting_ancestor_and_descendant_together() {
    // Both deletes are fine: detaching the child from an already-detached
    // parent (or vice versa) is well-defined in either order.
    let mut e = engine_with("<r><a><b/></a></r>");
    e.run("snap { delete { $doc/r/a }, delete { $doc/r/a/b } }")
        .unwrap();
    assert_eq!(run(&mut e, "count($doc/r/*)"), "0");
}

#[test]
fn whole_document_serialization_after_many_updates() {
    let mut e = engine_with("<r/>");
    run(
        &mut e,
        "for $i in 1 to 10 return
           insert { element e { attribute n { $i }, text { concat(\"v\", $i) } } }
           into { $doc/r }",
    );
    let out = run(&mut e, "$doc");
    assert!(out.starts_with("<r><e n=\"1\">v1</e>"));
    assert!(out.ends_with("<e n=\"10\">v10</e></r>"));
}

#[test]
fn snap_result_can_flow_through_functions() {
    let mut e = engine_with("<log/>");
    let q = r#"
declare function log_and_double($x) {
  (snap insert { <called arg="{$x}"/> } into { $doc/log }, $x * 2)
};
log_and_double(3) + log_and_double(4)"#;
    let r = e.run(q).unwrap();
    assert_eq!(e.serialize(&r).unwrap(), "14");
    assert_eq!(run(&mut e, "count($doc/log/called)"), "2");
}
