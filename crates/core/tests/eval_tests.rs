//! Evaluator coverage for the XQuery 1.0 fragment: values, operators,
//! paths, FLWOR, constructors, functions.

use xqcore::Engine;
use xqdm::item::Item;

fn run(query: &str) -> String {
    let mut e = Engine::new();
    let r = e
        .run(query)
        .unwrap_or_else(|err| panic!("query {query:?} failed: {err}"));
    e.serialize(&r).unwrap()
}

fn run_with_doc(xml: &str, query: &str) -> String {
    let mut e = Engine::new();
    e.load_document("doc", xml).unwrap();
    let r = e
        .run(query)
        .unwrap_or_else(|err| panic!("query {query:?} failed: {err}"));
    e.serialize(&r).unwrap()
}

// ---------------------------------------------------------------------
// Values & arithmetic
// ---------------------------------------------------------------------

#[test]
fn arithmetic() {
    assert_eq!(run("1 + 2 * 3"), "7");
    assert_eq!(run("(1 + 2) * 3"), "9");
    assert_eq!(run("7 idiv 2"), "3");
    assert_eq!(run("7 mod 2"), "1");
    assert_eq!(run("7 div 2"), "3.5");
    assert_eq!(run("-(3)"), "-3");
    assert_eq!(run("1.5 + 1"), "2.5");
}

#[test]
fn empty_sequence_propagates_through_arithmetic() {
    assert_eq!(run("() + 1"), "");
    assert_eq!(run("1 + ()"), "");
}

#[test]
fn sequences_flatten() {
    assert_eq!(run("(1, (2, 3), ())"), "1 2 3");
    assert_eq!(run("count((1, (2, 3), ()))"), "3");
}

#[test]
fn range_expressions() {
    assert_eq!(run("1 to 5"), "1 2 3 4 5");
    assert_eq!(run("5 to 1"), "");
    assert_eq!(run("count(1 to 100)"), "100");
    assert_eq!(run("() to 3"), "");
}

#[test]
fn comparisons_general_vs_value() {
    assert_eq!(run("(1, 2) = (2, 3)"), "true");
    assert_eq!(run("(1, 2) = (3, 4)"), "false");
    assert_eq!(run("1 eq 1"), "true");
    assert_eq!(run("() eq 1"), "");
    assert_eq!(run("\"a\" lt \"b\""), "true");
    assert_eq!(run("2 >= 2"), "true");
    assert_eq!(run("1 != 2"), "true");
}

#[test]
fn logical_operators_short_circuit() {
    assert_eq!(run("true() or fn:error(\"boom\") = 1"), "true");
    assert_eq!(run("false() and fn:error(\"boom\") = 1"), "false");
    assert_eq!(run("1 = 1 and 2 = 2"), "true");
}

#[test]
fn if_then_else() {
    assert_eq!(run("if (1 = 1) then \"y\" else \"n\""), "y");
    assert_eq!(run("if (()) then \"y\" else \"n\""), "n");
}

#[test]
fn quantified() {
    assert_eq!(run("some $x in (1, 2, 3) satisfies $x = 2"), "true");
    assert_eq!(run("every $x in (1, 2, 3) satisfies $x > 0"), "true");
    assert_eq!(run("every $x in (1, 2, 3) satisfies $x > 1"), "false");
    assert_eq!(run("some $x in () satisfies $x = 1"), "false");
    assert_eq!(run("every $x in () satisfies $x = 1"), "true");
    assert_eq!(
        run("some $x in (1, 2), $y in (2, 3) satisfies $x = $y"),
        "true"
    );
}

// ---------------------------------------------------------------------
// FLWOR
// ---------------------------------------------------------------------

#[test]
fn for_iteration_order() {
    assert_eq!(run("for $x in (1, 2, 3) return $x * 10"), "10 20 30");
}

#[test]
fn nested_for_is_cartesian() {
    assert_eq!(
        run("for $x in (1, 2) for $y in (10, 20) return $x + $y"),
        "11 21 12 22"
    );
}

#[test]
fn let_binding() {
    assert_eq!(run("let $x := 5 return $x * $x"), "25");
    assert_eq!(run("let $x := (1, 2, 3) return count($x)"), "3");
}

#[test]
fn where_filters() {
    assert_eq!(
        run("for $x in 1 to 10 where $x mod 2 = 0 return $x"),
        "2 4 6 8 10"
    );
}

#[test]
fn positional_variable() {
    assert_eq!(run("for $x at $i in (\"a\", \"b\") return $i"), "1 2");
}

#[test]
fn order_by_ascending_descending() {
    assert_eq!(run("for $x in (3, 1, 2) order by $x return $x"), "1 2 3");
    assert_eq!(
        run("for $x in (3, 1, 2) order by $x descending return $x"),
        "3 2 1"
    );
    // Sort is stable for equal keys.
    assert_eq!(
        run("for $x in (\"bb\", \"a\", \"cc\", \"d\") order by string-length($x) return $x"),
        "a d bb cc"
    );
}

#[test]
fn variable_shadowing() {
    assert_eq!(run("let $x := 1 return (let $x := 2 return $x, $x)"), "2 1");
}

// ---------------------------------------------------------------------
// Paths
// ---------------------------------------------------------------------

const SITE: &str = r#"<site>
  <people>
    <person id="p1"><name>Ada</name><age>36</age></person>
    <person id="p2"><name>Bob</name><age>41</age></person>
    <person id="p3"><name>Cyd</name><age>36</age></person>
  </people>
  <items><item id="i1"/><item id="i2"/></items>
</site>"#;

#[test]
fn child_and_descendant_steps() {
    assert_eq!(run_with_doc(SITE, "count($doc/site/people/person)"), "3");
    assert_eq!(run_with_doc(SITE, "count($doc//person)"), "3");
    assert_eq!(
        run_with_doc(SITE, "$doc//person[1]/name"),
        "<name>Ada</name>"
    );
}

#[test]
fn attribute_axis() {
    assert_eq!(run_with_doc(SITE, "string($doc//person[2]/@id)"), "p2");
    assert_eq!(run_with_doc(SITE, "count($doc//@id)"), "5");
}

#[test]
fn predicates_with_values() {
    assert_eq!(
        run_with_doc(SITE, "$doc//person[@id = \"p2\"]/name"),
        "<name>Bob</name>"
    );
    assert_eq!(run_with_doc(SITE, "count($doc//person[age = 36])"), "2");
}

#[test]
fn positional_predicates_are_per_origin() {
    // a/b[1]: first b of EACH a.
    let xml = "<r><a><b>1</b><b>2</b></a><a><b>3</b></a></r>";
    assert_eq!(run_with_doc(xml, "count($doc//a/b[1])"), "2");
    assert_eq!(run_with_doc(xml, "$doc//a/b[1]"), "<b>1</b> <b>3</b>");
}

#[test]
fn last_and_position_functions() {
    assert_eq!(
        run_with_doc(SITE, "$doc//person[last()]/name"),
        "<name>Cyd</name>"
    );
    assert_eq!(
        run_with_doc(SITE, "$doc//person[position() = 2]/name"),
        "<name>Bob</name>"
    );
}

#[test]
fn wildcard_and_kind_tests() {
    assert_eq!(run_with_doc(SITE, "count($doc/site/*)"), "2");
    assert_eq!(
        run_with_doc(SITE, "count($doc//person[1]/name/text())"),
        "1"
    );
    assert_eq!(run_with_doc(SITE, "count($doc//node())"), "27");
}

#[test]
fn parent_and_ancestor_axes() {
    assert_eq!(run_with_doc(SITE, "name($doc//person[1]/..)"), "people");
    assert_eq!(
        run_with_doc(SITE, "count(($doc//name)[1]/ancestor::*)"),
        "3"
    );
    assert_eq!(
        run_with_doc(SITE, "name($doc//person[1]/ancestor-or-self::person)"),
        "person"
    );
}

#[test]
fn following_and_preceding_axes() {
    // <r><a><a1/></a><b><b1/><b2/></b><c><c1/></c></r>, origin = b.
    let xml = "<r><a><a1/></a><b><b1/><b2/></b><c><c1/></c></r>";
    // following:: from b = c, c1 (not b's own descendants, not ancestors).
    assert_eq!(
        run_with_doc(xml, "for $n in ($doc//b)[1]/following::* return name($n)"),
        "c c1"
    );
    // preceding:: from b = a, a1 (document order after ddo).
    assert_eq!(
        run_with_doc(xml, "for $n in ($doc//b)[1]/preceding::* return name($n)"),
        "a a1"
    );
    // From a deeper origin: preceding of c1 excludes ancestors (r, c).
    assert_eq!(
        run_with_doc(xml, "for $n in ($doc//c1)[1]/preceding::* return name($n)"),
        "a a1 b b1 b2"
    );
    // Positional predicates count along the axis (nearest-first for the
    // reverse axis): preceding::*[1] of c1 is b2.
    assert_eq!(
        run_with_doc(xml, "name(($doc//c1)[1]/preceding::*[1])"),
        "b2"
    );
    assert_eq!(
        run_with_doc(xml, "name(($doc//a1)[1]/following::*[1])"),
        "b"
    );
    // Disjointness: following ∪ preceding ∪ ancestors ∪ descendants ∪ self
    // partitions the element nodes of the tree.
    assert_eq!(
        run_with_doc(
            xml,
            "let $b := ($doc//b)[1] return
             count($b/following::*) + count($b/preceding::*)
             + count($b/ancestor::*) + count($b/descendant::*) + 1"
        ),
        "8"
    );
}

#[test]
fn sibling_axes() {
    assert_eq!(
        run_with_doc(SITE, "$doc//person[2]/preceding-sibling::person/name"),
        "<name>Ada</name>"
    );
    assert_eq!(
        run_with_doc(SITE, "$doc//person[2]/following-sibling::person/name"),
        "<name>Cyd</name>"
    );
}

#[test]
fn results_in_document_order_deduplicated() {
    // Both arms hit the same nodes; union dedups in doc order.
    assert_eq!(
        run_with_doc(SITE, "count($doc//person | $doc//person)"),
        "3"
    );
    assert_eq!(
        run_with_doc(SITE, "for $n in ($doc//age | $doc//name) return string($n)"),
        "Ada 36 Bob 41 Cyd 36"
    );
}

#[test]
fn paths_over_sequences_dedup() {
    // Two distinct parents -> same child set per parent, no dups.
    assert_eq!(run_with_doc(SITE, "count(($doc//person/..)/person)"), "3");
}

#[test]
fn root_path() {
    // Leading "/" resolves against the context item's tree: bind one.
    let mut e = Engine::new();
    let doc = e.load_document("doc", SITE).unwrap();
    e.bind("ctx", xqdm::seq![Item::Node(doc)]);
    // Five: name, person, people, site, and the document node.
    let r = e
        .run("for $n in ($doc//name)[1] return count($n/ancestor-or-self::node())")
        .unwrap();
    assert_eq!(e.serialize(&r).unwrap(), "5");
}

// ---------------------------------------------------------------------
// Constructors
// ---------------------------------------------------------------------

#[test]
fn direct_element_construction() {
    assert_eq!(run("<a><b>1</b></a>"), "<a><b>1</b></a>");
    assert_eq!(run("<a x=\"1\" y=\"2\"/>"), "<a x=\"1\" y=\"2\"/>");
}

#[test]
fn enclosed_expressions_in_content() {
    assert_eq!(run("<a>{1 + 1}</a>"), "<a>2</a>");
    assert_eq!(run("<a>{1, 2, 3}</a>"), "<a>1 2 3</a>");
    assert_eq!(run("<a>x{1}y</a>"), "<a>x1y</a>");
}

#[test]
fn attribute_value_templates() {
    assert_eq!(
        run("let $n := \"Ada\" return <log user=\"{$n}\"/>"),
        "<log user=\"Ada\"/>"
    );
    assert_eq!(run("<a k=\"pre{1 + 1}post\"/>"), "<a k=\"pre2post\"/>");
    assert_eq!(run("<a k=\"{(1, 2)}\"/>"), "<a k=\"1 2\"/>");
}

#[test]
fn constructed_nodes_are_copies() {
    // Inserting an existing node into a constructor copies it: mutating the
    // copy must not touch the original.
    let out = run_with_doc(
        SITE,
        "let $w := <wrap>{($doc//name)[1]}</wrap> return ($w, ($doc//name)[1])",
    );
    assert_eq!(out, "<wrap><name>Ada</name></wrap> <name>Ada</name>");
}

#[test]
fn per_parent_vs_global_positional_predicates() {
    // //name[1] selects the first name of EACH parent (all three here);
    // (//name)[1] selects the globally first.
    assert_eq!(run_with_doc(SITE, "count($doc//name[1])"), "3");
    assert_eq!(run_with_doc(SITE, "count(($doc//name)[1])"), "1");
}

#[test]
fn computed_constructors() {
    assert_eq!(run("element foo { 1 + 1 }"), "<foo>2</foo>");
    assert_eq!(run("element { concat(\"f\", \"oo\") } { () }"), "<foo/>");
    assert_eq!(
        run("element a { attribute k { \"v\" }, text { \"t\" } }"),
        "<a k=\"v\">t</a>"
    );
    // The paper's counter declaration.
    assert_eq!(run("element counter { 0 }"), "<counter>0</counter>");
}

#[test]
fn document_constructor() {
    assert_eq!(run("document { <a/> }"), "<a/>");
}

#[test]
fn attribute_after_content_is_an_error() {
    let mut e = Engine::new();
    let err = e
        .run("element a { text { \"t\" }, attribute k { \"v\" } }")
        .unwrap_err();
    assert!(matches!(err, xqcore::Error::Eval(x) if x.code == "XQTY0024"));
}

// ---------------------------------------------------------------------
// Functions
// ---------------------------------------------------------------------

#[test]
fn user_functions() {
    assert_eq!(
        run("declare function double($x) { $x * 2 }; double(21)"),
        "42"
    );
    assert_eq!(
        run("declare function fact($n) { if ($n <= 1) then 1 else $n * fact($n - 1) }; fact(10)"),
        "3628800"
    );
}

#[test]
fn function_bodies_do_not_see_caller_locals() {
    let mut e = Engine::new();
    let err = e
        .run("declare function f() { $local }; let $local := 1 return f()")
        .unwrap_err();
    assert!(matches!(err, xqcore::Error::Eval(x) if x.code == "XPST0008"));
}

#[test]
fn functions_see_globals() {
    assert_eq!(
        run("declare variable $g := 10; declare function f($x) { $x + $g }; f(5)"),
        "15"
    );
}

#[test]
fn runaway_recursion_is_caught() {
    let mut e = Engine::new();
    let err = e
        .run("declare function loop($n) { loop($n + 1) }; loop(0)")
        .unwrap_err();
    assert!(matches!(err, xqcore::Error::Eval(x) if x.code == "XQB0040"));
}

#[test]
fn builtin_function_coverage() {
    assert_eq!(run("count((1, 2, 3))"), "3");
    assert_eq!(run("empty(())"), "true");
    assert_eq!(run("exists(())"), "false");
    assert_eq!(run("not(1 = 1)"), "false");
    assert_eq!(run("string(42)"), "42");
    assert_eq!(run("string-length(\"hello\")"), "5");
    assert_eq!(run("concat(\"a\", \"b\", \"c\")"), "abc");
    assert_eq!(run("string-join((\"a\", \"b\"), \"-\")"), "a-b");
    assert_eq!(run("contains(\"hello\", \"ell\")"), "true");
    assert_eq!(run("starts-with(\"hello\", \"he\")"), "true");
    assert_eq!(run("ends-with(\"hello\", \"lo\")"), "true");
    assert_eq!(run("substring(\"hello\", 2, 3)"), "ell");
    assert_eq!(run("substring(\"hello\", 3)"), "llo");
    assert_eq!(run("substring-before(\"a-b\", \"-\")"), "a");
    assert_eq!(run("substring-after(\"a-b\", \"-\")"), "b");
    assert_eq!(run("upper-case(\"aBc\")"), "ABC");
    assert_eq!(run("lower-case(\"aBc\")"), "abc");
    assert_eq!(run("normalize-space(\"  a   b  \")"), "a b");
    assert_eq!(run("translate(\"abc\", \"abc\", \"xyz\")"), "xyz");
    assert_eq!(run("sum((1, 2, 3))"), "6");
    assert_eq!(run("sum(())"), "0");
    assert_eq!(run("avg((1, 2, 3))"), "2");
    assert_eq!(run("min((3, 1, 2))"), "1");
    assert_eq!(run("max((3, 1, 2))"), "3");
    assert_eq!(run("abs(-5)"), "5");
    assert_eq!(run("floor(1.7)"), "1");
    assert_eq!(run("ceiling(1.2)"), "2");
    assert_eq!(run("round(1.5)"), "2");
    assert_eq!(run("distinct-values((1, 2, 1, 3, 2))"), "1 2 3");
    assert_eq!(run("reverse((1, 2, 3))"), "3 2 1");
    assert_eq!(run("subsequence((1, 2, 3, 4), 2, 2)"), "2 3");
    assert_eq!(run("insert-before((1, 3), 2, 2)"), "1 2 3");
    assert_eq!(run("remove((1, 2, 3), 2)"), "1 3");
    assert_eq!(run("index-of((10, 20, 10), 10)"), "1 3");
    assert_eq!(run("head((1, 2, 3))"), "1");
    assert_eq!(run("tail((1, 2, 3))"), "2 3");
    assert_eq!(run("deep-equal(<a x=\"1\"/>, <a x=\"1\"/>)"), "true");
    assert_eq!(run("number(\"12\") + 1"), "13");
    assert_eq!(run("xs:integer(\"7\") + 1"), "8");
    assert_eq!(run("xs:string(12)"), "12");
    assert_eq!(run("xs:boolean(\"true\")"), "true");
    assert_eq!(run("xs:double(\"1.5\") * 2"), "3");
}

#[test]
fn parse_xml_and_serialize() {
    assert_eq!(run("count(parse-xml(\"<a><b/><b/></a>\")//b)"), "2");
    assert_eq!(run("serialize(<a k=\"1\"><b/></a>)"), "<a k=\"1\"><b/></a>");
    // Round trip: serialize then parse back.
    assert_eq!(
        run("deep-equal(parse-xml(serialize(<x><y>t</y></x>))/x, <x><y>t</y></x>)"),
        "true"
    );
    // Bad XML is a dynamic error.
    let mut e = Engine::new();
    assert!(e.run("parse-xml(\"<broken\")").is_err());
}

#[test]
fn fn_prefix_is_optional() {
    assert_eq!(run("fn:count((1, 2))"), "2");
    assert_eq!(run("fn:true()"), "true");
}

#[test]
fn name_functions() {
    assert_eq!(run_with_doc(SITE, "name($doc//person[1])"), "person");
    assert_eq!(run_with_doc(SITE, "local-name($doc//person[1])"), "person");
    assert_eq!(run_with_doc(SITE, "name($doc//person[1]/@id)"), "id");
}

#[test]
fn atomization_of_nodes_in_arithmetic() {
    assert_eq!(run_with_doc(SITE, "$doc//person[1]/age + 1"), "37");
    assert_eq!(run_with_doc(SITE, "sum($doc//age)"), "113");
}

#[test]
fn node_identity_and_order_comparisons() {
    assert_eq!(
        run_with_doc(SITE, "$doc//person[1] is $doc//person[1]"),
        "true"
    );
    assert_eq!(
        run_with_doc(SITE, "$doc//person[1] is $doc//person[2]"),
        "false"
    );
    assert_eq!(
        run_with_doc(SITE, "$doc//person[1] << $doc//person[2]"),
        "true"
    );
    assert_eq!(
        run_with_doc(SITE, "$doc//person[2] >> $doc//person[1]"),
        "true"
    );
}

#[test]
fn deep_equal_vs_identity() {
    // Two constructions are deep-equal but not identical.
    assert_eq!(
        run("let $a := <x/> let $b := <x/> return (deep-equal($a, $b), $a is $b)"),
        "true false"
    );
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

#[test]
fn dynamic_errors() {
    let mut e = Engine::new();
    for (q, code) in [
        ("1 div 0", "FOAR0001"),
        ("$nope", "XPST0008"),
        ("nope()", "XPST0017"),
        ("fn:error(\"custom\")", "FOER0000"),
        ("(1, 2) + 1", "XPTY0004"),
        ("\"a\" + 1", "XPTY0004"),
        ("count()", "XPST0017"),
    ] {
        match e.run(q) {
            Err(xqcore::Error::Eval(x)) => assert_eq!(x.code, code, "query {q:?}"),
            other => panic!("query {q:?}: expected eval error, got {other:?}"),
        }
    }
}

#[test]
fn intersect_and_except_operators() {
    // Identity-based: the same name constructed twice is NOT the same node.
    assert_eq!(
        run_with_doc(SITE, "count($doc//person intersect $doc//person[2])"),
        "1"
    );
    assert_eq!(
        run_with_doc(SITE, "count($doc//person except $doc//person[2])"),
        "2"
    );
    assert_eq!(
        run_with_doc(
            SITE,
            "for $n in ($doc//person except ($doc//person)[1]) return string($n/name)"
        ),
        "Bob Cyd"
    );
    // Result is in document order even if operands are not.
    assert_eq!(
        run_with_doc(
            SITE,
            "count(($doc//age | $doc//name) intersect ($doc//name | $doc//age))"
        ),
        "6"
    );
    // Empty cases.
    assert_eq!(run_with_doc(SITE, "count($doc//person intersect ())"), "0");
    assert_eq!(run_with_doc(SITE, "count(() except $doc//person)"), "0");
    assert_eq!(run_with_doc(SITE, "count($doc//person except ())"), "3");
    // Precedence: intersect binds tighter than union.
    assert_eq!(
        run_with_doc(
            SITE,
            "count($doc//name | $doc//person intersect $doc//person[1])"
        ),
        "4"
    );
}
