//! Failure injection: errors raised at different points of a program, and
//! what state survives them. The paper leaves failure semantics to future
//! work (§5–6 mention transactional mechanisms as open); these tests pin
//! the implementation's contract:
//!
//! * an error *inside* a snap body discards that scope's Δ (nothing from
//!   the failed scope applies);
//! * effects of **already-closed inner snaps survive** — closing a snap is
//!   commitment, exactly like the paper's counter keeps counting even if a
//!   later part of the query fails;
//! * Δ **application is atomic in every snap mode**: when any request in a
//!   Δ fails its precondition, the store's undo journal rolls the whole
//!   application back, so `apply Δ to store0` yields the updated store or
//!   leaves `store0` exactly as it was — never a prefix of Δ;
//! * conflict-detection verification failures apply nothing (verification
//!   precedes any modification, and the journal covers the rest);
//! * a **panic** during evaluation is caught by the engine, the store is
//!   rolled back to its pre-run state (committed snaps included), and an
//!   `XQB0030` error is returned;
//! * a failed run leaks nothing: constructed nodes that ended up reachable
//!   from no host binding are swept before the error returns.

use xqcore::{apply_delta, Delta, Engine, Error, SnapMode, UpdateRequest};
use xqdm::store::InsertAnchor;
use xqdm::QName;

fn engine_with(xml: &str) -> Engine {
    let mut e = Engine::new();
    e.load_document("doc", xml).unwrap();
    e
}

fn run(e: &mut Engine, q: &str) -> String {
    let r = e
        .run(q)
        .unwrap_or_else(|err| panic!("query {q:?} failed: {err}"));
    e.serialize(&r).unwrap()
}

/// Serialize the `$doc` binding — the observable store state for a test.
fn doc_xml(e: &Engine) -> String {
    let seq = e.binding("doc").expect("doc binding").clone();
    e.serialize(&seq).unwrap()
}

#[test]
fn error_in_top_level_discards_pending_updates() {
    let mut e = engine_with("<x/>");
    let err = e.run("(insert { <a/> } into { $doc/x }, fn:error(\"late\"))");
    assert!(err.is_err());
    assert_eq!(run(&mut e, "count($doc/x/*)"), "0");
}

#[test]
fn closed_inner_snap_survives_later_error() {
    let mut e = engine_with("<x/>");
    let err = e.run(
        "(snap insert { <committed/> } into { $doc/x },
          insert { <pending/> } into { $doc/x },
          fn:error(\"boom\"))",
    );
    assert!(err.is_err());
    // The closed snap applied; the pending top-level insert did not.
    assert_eq!(run(&mut e, "count($doc/x/committed)"), "1");
    assert_eq!(run(&mut e, "count($doc/x/pending)"), "0");
}

#[test]
fn error_inside_nested_snap_discards_only_that_scope() {
    let mut e = engine_with("<x/>");
    let err = e.run(
        "(snap insert { <outer1/> } into { $doc/x },
          snap { insert { <inner/> } into { $doc/x }, fn:error(\"inner\") })",
    );
    assert!(err.is_err());
    assert_eq!(run(&mut e, "count($doc/x/outer1)"), "1");
    assert_eq!(run(&mut e, "count($doc/x/inner)"), "0");
}

#[test]
fn error_in_function_propagates_through_snap_boundaries() {
    let mut e = engine_with("<x/>");
    let q = r#"
declare function fail_after_commit() {
  (snap insert { <c/> } into { $doc/x }, fn:error("in function"))
};
(fail_after_commit(), insert { <never/> } into { $doc/x })"#;
    let err = e.run(q);
    assert!(err.is_err());
    assert_eq!(run(&mut e, "count($doc/x/c)"), "1");
    assert_eq!(run(&mut e, "count($doc/x/never)"), "0");
}

#[test]
fn ordered_application_is_atomic_on_precondition_failure() {
    // A Δ whose second request fails (inserting into a text node): the
    // first request must be rolled back, leaving the store byte-identical
    // to its pre-snap state.
    let mut e = engine_with("<x><t>text</t></x>");
    let before = doc_xml(&e);
    let err = e.run(
        "snap { insert { <applied/> } into { $doc/x },
                insert { <fails/> } into { ($doc/x/t/text()) } }",
    );
    assert!(matches!(err, Err(Error::Eval(x)) if x.code == "XQB0002"));
    assert_eq!(doc_xml(&e), before);
    assert_eq!(run(&mut e, "count($doc/x/applied)"), "0");
    assert_eq!(run(&mut e, "count($doc/x/fails)"), "0");
}

#[test]
fn nondeterministic_application_is_atomic_for_every_seed() {
    // The failing request (insert into a text node) fails under *every*
    // permutation; whatever prefix the shuffled order applied first must
    // be rolled back. Exercise several engine seeds so different
    // permutations hit the failure at different positions.
    for seed in 0..16 {
        let mut e = Engine::new().with_seed(seed);
        e.load_document("doc", "<x><t>text</t></x>").unwrap();
        let before = doc_xml(&e);
        let err = e.run(
            "snap nondeterministic {
               insert { <a/> } into { $doc/x },
               insert { <b/> } into { $doc/x },
               insert { <bad/> } into { ($doc/x/t/text()) },
               rename { $doc/x } to { \"y\" } }",
        );
        assert!(
            matches!(err, Err(Error::Eval(x)) if x.code == "XQB0002"),
            "seed {seed}"
        );
        assert_eq!(doc_xml(&e), before, "store changed under seed {seed}");
    }
}

#[test]
fn rollback_inside_nested_snap_leaves_outer_scope_usable() {
    // Drive the snap-scope API directly: an inner Δ fails and rolls back;
    // the outer scope keeps collecting and commits successfully.
    let mut e = engine_with("<x><t>text</t></x>");
    let program = e.compile("1").unwrap();
    let (mut ev, _env) = e.evaluator(&program);
    let x = {
        let doc = e.binding("doc").unwrap().clone();
        let doc = match &doc[0] {
            xqdm::item::Item::Node(n) => *n,
            _ => unreachable!(),
        };
        e.store.children(doc).unwrap()[0]
    };
    let t = e.store.children(x).unwrap()[0];
    let text = e.store.children(t).unwrap()[0];
    let before_kids = e.store.children(x).unwrap().len();

    ev.begin_snap_scope(); // outer
    let outer_node = e.store.new_element(QName::local("outer"));

    // Inner snap: one good request, one failing (insert under a text node).
    ev.begin_snap_scope();
    let good = e.store.new_element(QName::local("good"));
    let bad = e.store.new_element(QName::local("bad"));
    let mut inner = Delta::new();
    inner.push(UpdateRequest::Insert {
        nodes: vec![good],
        parent: x,
        anchor: InsertAnchor::Last,
    });
    inner.push(UpdateRequest::Insert {
        nodes: vec![bad],
        parent: text,
        anchor: InsertAnchor::Last,
    });
    let mut inner_delta = ev.end_snap_scope();
    inner_delta.extend(inner);
    let err = apply_delta(
        &mut e.store,
        inner_delta,
        SnapMode::Ordered,
        ev.next_apply_seed(),
    )
    .unwrap_err();
    assert_eq!(err.code, "XQB0002");
    // Rolled back: the good insert is undone, nothing attached.
    assert_eq!(e.store.children(x).unwrap().len(), before_kids);
    assert_eq!(e.store.parent(good).unwrap(), None);

    // The outer scope continues, collects its own Δ, and commits.
    let mut outer = Delta::new();
    outer.push(UpdateRequest::Insert {
        nodes: vec![outer_node],
        parent: x,
        anchor: InsertAnchor::Last,
    });
    // (requests recorded while the scope was open would land here too)
    let _ = ev.end_snap_scope();
    apply_delta(&mut e.store, outer, SnapMode::Ordered, ev.next_apply_seed()).unwrap();
    assert_eq!(e.store.parent(outer_node).unwrap(), Some(x));
    assert_eq!(e.store.children(x).unwrap().len(), before_kids + 1);
}

#[test]
fn conflict_detection_failure_applies_nothing() {
    let mut e = engine_with("<x><a/></x>");
    let before = doc_xml(&e);
    let err = e.run(
        "snap conflict-detection {
           rename { $doc/x/a } to { \"r1\" },
           insert { <i1/> } into { $doc/x },
           insert { <i2/> } into { $doc/x } }",
    );
    assert!(matches!(err, Err(Error::Eval(x)) if x.code == "XQB0010"));
    // Even the non-conflicting rename did not apply.
    assert_eq!(doc_xml(&e), before);
    assert_eq!(run(&mut e, "count($doc/x/r1)"), "0");
    assert_eq!(run(&mut e, "count($doc/x/*)"), "1");
}

#[test]
fn parse_error_leaves_engine_usable() {
    let mut e = engine_with("<x/>");
    assert!(matches!(e.run("for $x in"), Err(Error::Parse(_))));
    assert_eq!(run(&mut e, "count($doc/x)"), "1");
}

#[test]
fn type_error_mid_loop_discards_that_querys_pending_updates() {
    let mut e = engine_with("<x/>");
    let err = e.run(
        "for $i in (1, 2, \"boom\", 4)
         return (insert { <n/> } into { $doc/x }, $i * 2)",
    );
    assert!(err.is_err());
    assert_eq!(run(&mut e, "count($doc/x/n)"), "0");
}

#[test]
fn snap_per_iteration_commits_completed_iterations() {
    let mut e = engine_with("<x/>");
    let err = e.run(
        "for $i in (1, 2, \"boom\", 4)
         return (snap insert { <n/> } into { $doc/x }, $i * 2)",
    );
    assert!(err.is_err());
    // Iterations 1 and 2 committed before the failure; 3 failed after its
    // snap closed (the multiply errors after the insert applied).
    assert_eq!(run(&mut e, "count($doc/x/n)"), "3");
}

#[test]
fn engine_remains_consistent_after_many_failures() {
    let mut e = engine_with("<x/>");
    for _ in 0..20 {
        let _ = e.run("(insert { <a/> } into { $doc/x }, fn:error(\"x\"))");
        let _ = e.run("$undefined");
        let _ = e.run("1 div 0");
    }
    // No leaked pending updates, no store corruption.
    assert_eq!(run(&mut e, "count($doc/x/*)"), "0");
    run(&mut e, "snap insert { <ok/> } into { $doc/x }");
    assert_eq!(run(&mut e, "count($doc/x/ok)"), "1");
}

#[test]
fn failed_runs_leak_no_store_slots() {
    // Each failing run constructs nodes (the <a/> elements) that never
    // attach anywhere; the engine sweeps them before returning the error,
    // so the store does not grow across repeated failures.
    let mut e = engine_with("<x/>");
    let _ = e.run("(insert { <a><deep><tree/></deep></a> } into { $doc/x }, fn:error(\"x\"))");
    let doc = match e.binding("doc").unwrap()[0] {
        xqdm::item::Item::Node(n) => n,
        _ => unreachable!(),
    };
    let baseline = e.store.stats(&[doc]).unwrap();
    for _ in 0..10 {
        let _ = e.run("(insert { <a><deep><tree/></deep></a> } into { $doc/x }, fn:error(\"x\"))");
    }
    let after = e.store.stats(&[doc]).unwrap();
    assert_eq!(
        after, baseline,
        "failed runs must not accumulate store garbage"
    );
}

#[test]
fn recursion_limit_error_leaves_clean_state() {
    let mut e = engine_with("<x/>");
    let err = e.run(
        "declare function spin($n) { (insert { <s/> } into { $doc/x }, spin($n + 1)) };
         spin(0)",
    );
    assert!(matches!(err, Err(Error::Eval(x)) if x.code == "XQB0040"));
    assert_eq!(run(&mut e, "count($doc/x/*)"), "0");
}

#[test]
fn panic_during_evaluation_rolls_back_and_reports_xqb0030() {
    // xqb:panic() is the failure-injection hook: it panics mid-evaluation.
    // The engine must catch the unwind, roll the store back to the exact
    // pre-run state — committed snaps included, unlike the error path —
    // and surface XQB0030. The engine stays fully usable.
    let mut e = engine_with("<x/>");
    let before = doc_xml(&e);
    let err = e.run(
        "(snap insert { <committed/> } into { $doc/x },
          insert { <pending/> } into { $doc/x },
          xqb:panic())",
    );
    assert!(
        matches!(err, Err(Error::Eval(ref x)) if x.code == "XQB0030"),
        "got {err:?}"
    );
    assert_eq!(doc_xml(&e), before);
    // The engine is not poisoned: subsequent queries work.
    run(&mut e, "snap insert { <ok/> } into { $doc/x }");
    assert_eq!(run(&mut e, "count($doc/x/ok)"), "1");
}

#[test]
fn panic_during_module_load_restores_engine() {
    let mut e = engine_with("<x/>");
    e.load_module("declare function keep() { 1 };").unwrap();
    let before = doc_xml(&e);
    let err = e.load_module(
        "declare function gone() { 2 };
         declare variable $v := (insert { <m/> } into { $doc/x }, xqb:panic());",
    );
    assert!(
        matches!(err, Err(Error::Eval(ref x)) if x.code == "XQB0030"),
        "got {err:?}"
    );
    assert_eq!(doc_xml(&e), before);
    // Functions from the failed module are not registered; earlier ones are.
    assert_eq!(run(&mut e, "keep()"), "1");
    assert!(e.run("gone()").is_err());
    assert!(e.binding("v").is_none());
}

#[test]
fn failed_module_load_is_all_or_nothing() {
    let mut e = engine_with("<x/>");
    let before = doc_xml(&e);
    let err = e.load_module(
        "declare variable $a := (insert { <first/> } into { $doc/x }, 1);
         declare variable $b := fn:error(\"second init fails\");",
    );
    assert!(err.is_err());
    // The first initializer's committed snap is rolled back too: a module
    // either loads completely or leaves no trace.
    assert_eq!(doc_xml(&e), before);
    assert!(e.binding("a").is_none());
    assert!(e.binding("b").is_none());
}
