//! Failure injection: errors raised at different points of a program, and
//! what state survives them. The paper leaves failure semantics to future
//! work (§5–6 mention transactional mechanisms as open); these tests pin
//! the implementation's behaviour so it is a documented contract rather
//! than an accident:
//!
//! * an error *inside* a snap body discards that scope's Δ (nothing from
//!   the failed scope applies);
//! * effects of **already-closed inner snaps survive** — closing a snap is
//!   commitment, exactly like the paper's counter keeps counting even if a
//!   later part of the query fails;
//! * Δ application failures (precondition violations) in ordered mode
//!   stop at the failing request — requests before it are applied
//!   (non-atomic application, documented);
//! * conflict-detection verification failures apply nothing (its whole
//!   point: verification precedes modification).

use xqcore::{Engine, Error};

fn engine_with(xml: &str) -> Engine {
    let mut e = Engine::new();
    e.load_document("doc", xml).unwrap();
    e
}

fn run(e: &mut Engine, q: &str) -> String {
    let r = e.run(q).unwrap_or_else(|err| panic!("query {q:?} failed: {err}"));
    e.serialize(&r).unwrap()
}

#[test]
fn error_in_top_level_discards_pending_updates() {
    let mut e = engine_with("<x/>");
    let err = e.run("(insert { <a/> } into { $doc/x }, fn:error(\"late\"))");
    assert!(err.is_err());
    assert_eq!(run(&mut e, "count($doc/x/*)"), "0");
}

#[test]
fn closed_inner_snap_survives_later_error() {
    let mut e = engine_with("<x/>");
    let err = e.run(
        "(snap insert { <committed/> } into { $doc/x },
          insert { <pending/> } into { $doc/x },
          fn:error(\"boom\"))",
    );
    assert!(err.is_err());
    // The closed snap applied; the pending top-level insert did not.
    assert_eq!(run(&mut e, "count($doc/x/committed)"), "1");
    assert_eq!(run(&mut e, "count($doc/x/pending)"), "0");
}

#[test]
fn error_inside_nested_snap_discards_only_that_scope() {
    let mut e = engine_with("<x/>");
    let err = e.run(
        "(snap insert { <outer1/> } into { $doc/x },
          snap { insert { <inner/> } into { $doc/x }, fn:error(\"inner\") })",
    );
    assert!(err.is_err());
    assert_eq!(run(&mut e, "count($doc/x/outer1)"), "1");
    assert_eq!(run(&mut e, "count($doc/x/inner)"), "0");
}

#[test]
fn error_in_function_propagates_through_snap_boundaries() {
    let mut e = engine_with("<x/>");
    let q = r#"
declare function fail_after_commit() {
  (snap insert { <c/> } into { $doc/x }, fn:error("in function"))
};
(fail_after_commit(), insert { <never/> } into { $doc/x })"#;
    let err = e.run(q);
    assert!(err.is_err());
    assert_eq!(run(&mut e, "count($doc/x/c)"), "1");
    assert_eq!(run(&mut e, "count($doc/x/never)"), "0");
}

#[test]
fn ordered_application_is_not_atomic_on_precondition_failure() {
    // Documented behaviour: ordered-mode application stops at the first
    // failing request; earlier requests stay applied. (A verification
    // pass cannot fix this in general — preconditions may depend on the
    // store state produced by earlier requests in the same Δ.)
    let mut e = engine_with("<x><t>text</t></x>");
    let err = e.run(
        "snap { insert { <applied/> } into { $doc/x },
                insert { <fails/> } into { ($doc/x/t/text()) } }",
    );
    assert!(matches!(err, Err(Error::Eval(x)) if x.code == "XQB0002"));
    assert_eq!(run(&mut e, "count($doc/x/applied)"), "1");
    assert_eq!(run(&mut e, "count($doc/x/fails)"), "0");
}

#[test]
fn conflict_detection_failure_applies_nothing() {
    let mut e = engine_with("<x><a/></x>");
    let err = e.run(
        "snap conflict-detection {
           rename { $doc/x/a } to { \"r1\" },
           insert { <i1/> } into { $doc/x },
           insert { <i2/> } into { $doc/x } }",
    );
    assert!(matches!(err, Err(Error::Eval(x)) if x.code == "XQB0010"));
    // Even the non-conflicting rename did not apply.
    assert_eq!(run(&mut e, "count($doc/x/r1)"), "0");
    assert_eq!(run(&mut e, "count($doc/x/*)"), "1");
}

#[test]
fn parse_error_leaves_engine_usable() {
    let mut e = engine_with("<x/>");
    assert!(matches!(e.run("for $x in"), Err(Error::Parse(_))));
    assert_eq!(run(&mut e, "count($doc/x)"), "1");
}

#[test]
fn type_error_mid_loop_discards_that_querys_pending_updates() {
    let mut e = engine_with("<x/>");
    let err = e.run(
        "for $i in (1, 2, \"boom\", 4)
         return (insert { <n/> } into { $doc/x }, $i * 2)",
    );
    assert!(err.is_err());
    assert_eq!(run(&mut e, "count($doc/x/n)"), "0");
}

#[test]
fn snap_per_iteration_commits_completed_iterations() {
    let mut e = engine_with("<x/>");
    let err = e.run(
        "for $i in (1, 2, \"boom\", 4)
         return (snap insert { <n/> } into { $doc/x }, $i * 2)",
    );
    assert!(err.is_err());
    // Iterations 1 and 2 committed before the failure; 3 failed after its
    // snap closed (the multiply errors after the insert applied).
    assert_eq!(run(&mut e, "count($doc/x/n)"), "3");
}

#[test]
fn engine_remains_consistent_after_many_failures() {
    let mut e = engine_with("<x/>");
    for _ in 0..20 {
        let _ = e.run("(insert { <a/> } into { $doc/x }, fn:error(\"x\"))");
        let _ = e.run("$undefined");
        let _ = e.run("1 div 0");
    }
    // No leaked pending updates, no store corruption.
    assert_eq!(run(&mut e, "count($doc/x/*)"), "0");
    run(&mut e, "snap insert { <ok/> } into { $doc/x }");
    assert_eq!(run(&mut e, "count($doc/x/ok)"), "1");
}

#[test]
fn recursion_limit_error_leaves_clean_state() {
    let mut e = engine_with("<x/>");
    let err = e.run(
        "declare function spin($n) { (insert { <s/> } into { $doc/x }, spin($n + 1)) };
         spin(0)",
    );
    assert!(matches!(err, Err(Error::Eval(x)) if x.code == "XQB0020"));
    assert_eq!(run(&mut e, "count($doc/x/*)"), "0");
}
