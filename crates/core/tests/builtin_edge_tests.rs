//! Edge-case coverage for the built-in function library: empty sequences,
//! cardinality violations, type errors, boundary values — one cluster per
//! function family.

use xqcore::{Engine, Error};

fn run(q: &str) -> String {
    let mut e = Engine::new();
    let r = e
        .run(q)
        .unwrap_or_else(|err| panic!("query {q:?} failed: {err}"));
    e.serialize(&r).unwrap()
}

fn err_code(q: &str) -> String {
    let mut e = Engine::new();
    match e.run(q) {
        Err(Error::Eval(x)) => x.code.to_string(),
        other => panic!("query {q:?}: expected eval error, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Sequences
// ---------------------------------------------------------------------

#[test]
fn count_empty_exists_boundaries() {
    assert_eq!(run("count(())"), "0");
    assert_eq!(run("empty((()))"), "true");
    assert_eq!(run("exists(0)"), "true"); // a zero is still an item
    assert_eq!(run("exists(\"\")"), "true");
}

#[test]
fn subsequence_boundaries() {
    assert_eq!(run("subsequence((1, 2, 3), 0)"), "1 2 3");
    assert_eq!(run("subsequence((1, 2, 3), 4)"), "");
    assert_eq!(run("subsequence((1, 2, 3), 2, 0)"), "");
    assert_eq!(run("subsequence((1, 2, 3), -1, 3)"), "1");
    assert_eq!(run("subsequence((), 1, 10)"), "");
}

#[test]
fn insert_before_and_remove_boundaries() {
    assert_eq!(run("insert-before((1, 2), 0, 99)"), "99 1 2");
    assert_eq!(run("insert-before((1, 2), 10, 99)"), "1 2 99");
    assert_eq!(run("remove((1, 2, 3), 0)"), "1 2 3");
    assert_eq!(run("remove((1, 2, 3), 99)"), "1 2 3");
    assert_eq!(run("remove((), 1)"), "");
}

#[test]
fn index_of_type_coercion() {
    assert_eq!(run("index-of((\"a\", \"b\", \"a\"), \"a\")"), "1 3");
    assert_eq!(run("index-of((1, 2, 3), 4)"), "");
    // Numeric comparison across integer/double.
    assert_eq!(run("index-of((1, 2.0, 3), 2)"), "2");
}

#[test]
fn cardinality_functions() {
    assert_eq!(err_code("exactly-one(())"), "FORG0005");
    assert_eq!(err_code("exactly-one((1, 2))"), "FORG0005");
    assert_eq!(run("exactly-one(5)"), "5");
    assert_eq!(err_code("zero-or-one((1, 2))"), "FORG0003");
    assert_eq!(run("zero-or-one(())"), "");
    assert_eq!(err_code("one-or-more(())"), "FORG0004");
    assert_eq!(run("one-or-more((1, 2))"), "1 2");
}

#[test]
fn head_tail_boundaries() {
    assert_eq!(run("head(())"), "");
    assert_eq!(run("tail(())"), "");
    assert_eq!(run("tail(1)"), "");
}

#[test]
fn distinct_values_mixed_types() {
    assert_eq!(run("distinct-values((1, 1.0, 2))"), "1 2");
    assert_eq!(run("distinct-values((\"a\", \"a\", \"b\"))"), "a b");
    assert_eq!(run("count(distinct-values((\"1\", 1)))"), "2"); // string vs int don't compare equal
    assert_eq!(run("distinct-values(())"), "");
}

// ---------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------

#[test]
fn string_functions_on_empty() {
    assert_eq!(run("string(())"), "");
    assert_eq!(run("string-length(())"), "0");
    assert_eq!(run("upper-case(())"), "");
    assert_eq!(run("contains((), \"x\")"), "false");
    assert_eq!(run("contains(\"x\", ())"), "true"); // empty needle
    assert_eq!(run("substring((), 1)"), "");
}

#[test]
fn substring_fractional_and_negative() {
    // XPath rounds the arguments.
    assert_eq!(run("substring(\"hello\", 1.5, 2.6)"), "ell");
    assert_eq!(run("substring(\"hello\", 0)"), "hello");
    assert_eq!(run("substring(\"hello\", -5, 7)"), "h");
}

#[test]
fn substring_before_after_no_match() {
    assert_eq!(run("substring-before(\"abc\", \"z\")"), "");
    assert_eq!(run("substring-after(\"abc\", \"z\")"), "");
    assert_eq!(run("substring-before(\"abc\", \"\")"), "");
    assert_eq!(run("substring-after(\"abc\", \"\")"), "abc");
}

#[test]
fn translate_shorter_target_deletes() {
    assert_eq!(run("translate(\"abcabc\", \"abc\", \"x\")"), "xx");
    assert_eq!(run("translate(\"abc\", \"\", \"xyz\")"), "abc");
}

#[test]
fn string_join_and_concat_edge() {
    assert_eq!(run("string-join((), \"-\")"), "");
    assert_eq!(run("string-join((\"a\"), \"-\")"), "a");
    assert_eq!(run("concat((), \"x\", ())"), "x"); // empty args are ""
    assert_eq!(run("concat(1, 2.5, true())"), "12.5true");
}

#[test]
fn normalize_space_unicode_whitespace() {
    assert_eq!(run("normalize-space(\"\ta  b\nc \")"), "a b c");
    assert_eq!(run("normalize-space(\"\")"), "");
}

// ---------------------------------------------------------------------
// Numerics / aggregates
// ---------------------------------------------------------------------

#[test]
fn aggregates_on_empty() {
    assert_eq!(run("sum(())"), "0");
    assert_eq!(run("sum((), 99)"), "99"); // 2-arg zero
    assert_eq!(run("avg(())"), "");
    assert_eq!(run("min(())"), "");
    assert_eq!(run("max(())"), "");
}

#[test]
fn aggregates_mixed_numeric_types() {
    assert_eq!(run("sum((1, 2.5))"), "3.5");
    assert_eq!(run("min((2, 1.5))"), "1.5");
    assert_eq!(run("max((2, 2.5))"), "2.5");
    assert_eq!(run("avg((1, 2))"), "1.5");
}

#[test]
fn aggregates_over_untyped_node_content() {
    let mut e = Engine::new();
    e.load_document("d", "<r><v>1</v><v>2.5</v></r>").unwrap();
    let r = e.run("sum($d//v)").unwrap();
    assert_eq!(e.serialize(&r).unwrap(), "3.5");
    let r = e.run("max($d//v)").unwrap();
    assert_eq!(e.serialize(&r).unwrap(), "2.5");
}

#[test]
fn sum_overflow_detected() {
    assert_eq!(err_code(&format!("sum(({0}, {0}))", i64::MAX)), "FOAR0002");
}

#[test]
fn rounding_family() {
    assert_eq!(run("round(2.5)"), "3");
    assert_eq!(run("round(-2.5)"), "-2"); // round-half-up, XPath style
    assert_eq!(run("floor(-1.5)"), "-2");
    assert_eq!(run("ceiling(-1.5)"), "-1");
    assert_eq!(run("abs(-1.5)"), "1.5");
    assert_eq!(run("round(())"), "");
    // Integers pass through untouched.
    assert_eq!(run("floor(7)"), "7");
}

#[test]
fn number_function_nan_behaviour() {
    assert_eq!(run("string(number(\"abc\"))"), "NaN");
    assert_eq!(run("string(number(()))"), "NaN");
    assert_eq!(run("number(\"12\") * 2"), "24");
}

#[test]
fn casts_error_on_bad_lexical_forms() {
    assert_eq!(err_code("xs:integer(\"abc\")"), "FORG0001");
    assert_eq!(err_code("xs:double(\"abc\")"), "FORG0001");
    assert_eq!(err_code("xs:boolean(\"maybe\")"), "FORG0001");
    assert_eq!(run("xs:integer(())"), "");
}

// ---------------------------------------------------------------------
// Nodes
// ---------------------------------------------------------------------

#[test]
fn name_functions_on_nameless_nodes() {
    let mut e = Engine::new();
    e.load_document("d", "<r>text</r>").unwrap();
    let r = e.run("name(($d//text())[1])").unwrap();
    assert_eq!(e.serialize(&r).unwrap(), "");
    let r = e.run("name($d)").unwrap(); // document node
    assert_eq!(e.serialize(&r).unwrap(), "");
    assert_eq!(run("name(())"), "");
}

#[test]
fn root_function_through_levels() {
    let mut e = Engine::new();
    e.load_document("d", "<a><b><c/></b></a>").unwrap();
    let r = e
        .run("($d//c)[1]/ancestor-or-self::node()[last()] is root(($d//c)[1])")
        .unwrap();
    assert_eq!(e.serialize(&r).unwrap(), "true");
    let r = e.run("root(($d//c)[1]) is $d").unwrap();
    assert_eq!(e.serialize(&r).unwrap(), "true");
}

#[test]
fn deep_equal_edges() {
    assert_eq!(run("deep-equal((), ())"), "true");
    assert_eq!(run("deep-equal((), 1)"), "false");
    assert_eq!(run("deep-equal((1, 2), (1, 2))"), "true");
    assert_eq!(run("deep-equal(1, 1.0)"), "true"); // numeric value equality
    assert_eq!(run("deep-equal(<a>x</a>, <a>x</a>)"), "true");
    assert_eq!(run("deep-equal(<a>x</a>, <a>y</a>)"), "false");
    assert_eq!(run("deep-equal(<a b=\"1\"/>, <a/>)"), "false");
}

// ---------------------------------------------------------------------
// Misc
// ---------------------------------------------------------------------

#[test]
fn boolean_and_not_on_node_sequences() {
    let mut e = Engine::new();
    e.load_document("d", "<r><a/></r>").unwrap();
    let r = e.run("boolean($d//a)").unwrap();
    assert_eq!(e.serialize(&r).unwrap(), "true");
    let r = e.run("not($d//zzz)").unwrap();
    assert_eq!(e.serialize(&r).unwrap(), "true");
}

#[test]
fn error_function_variants() {
    assert_eq!(err_code("fn:error()"), "FOER0000");
    let mut e = Engine::new();
    match e.run("fn:error(\"custom message\")") {
        Err(Error::Eval(x)) => assert_eq!(x.message, "custom message"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn wrong_arity_reports_xpst0017() {
    assert_eq!(err_code("count(1, 2)"), "XPST0017");
    assert_eq!(err_code("substring(\"a\")"), "XPST0017");
    assert_eq!(err_code("position(1)"), "XPST0017");
}
