//! Property tests for the XML parser/serializer pair: any tree the store
//! can represent must survive serialize → parse → compare, and entity
//! escaping must round-trip arbitrary text payloads.

use proptest::prelude::*;
use xqdm::item::deep_equal_nodes;
use xqdm::{NodeId, QName, Store};

/// A recursive tree description for generation.
#[derive(Debug, Clone)]
enum Tree {
    Element {
        name: u8,
        attrs: Vec<(u8, String)>,
        children: Vec<Tree>,
    },
    Text(String),
    Comment(String),
}

fn text_strategy() -> impl Strategy<Value = String> {
    // Includes the characters that require escaping.
    proptest::string::string_regex("[a-z<>&\"' ]{0,12}").unwrap()
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        text_strategy().prop_map(Tree::Text),
        "[a-z ]{0,8}".prop_map(Tree::Comment),
        (
            0u8..8,
            proptest::collection::vec((0u8..4, text_strategy()), 0..3)
        )
            .prop_map(|(name, attrs)| Tree::Element {
                name,
                attrs,
                children: vec![]
            }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            0u8..8,
            proptest::collection::vec((0u8..4, text_strategy()), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| Tree::Element {
                name,
                attrs,
                children,
            })
    })
}

/// Materialize a description; attribute names are deduplicated and
/// adjacent text nodes merged (the parser cannot distinguish adjacent text
/// nodes, so the generator avoids producing them).
fn build(store: &mut Store, tree: &Tree) -> NodeId {
    match tree {
        Tree::Text(t) => store.new_text(t.clone()),
        Tree::Comment(c) => {
            // "--" terminates a comment; keep the generator honest.
            store.new_comment(c.replace("--", "- -"))
        }
        Tree::Element {
            name,
            attrs,
            children,
        } => {
            let e = store.new_element(QName::local(format!("e{name}")));
            let mut seen = std::collections::HashSet::new();
            for (an, av) in attrs {
                if seen.insert(*an) {
                    let a = store.new_attribute(QName::local(format!("a{an}")), av.clone());
                    store.attach_attribute(e, a).unwrap();
                }
            }
            let mut last_was_text = false;
            for c in children {
                if matches!(c, Tree::Text(_)) {
                    if last_was_text {
                        continue;
                    }
                    if let Tree::Text(t) = c {
                        if t.is_empty() {
                            continue;
                        }
                    }
                    last_was_text = true;
                } else {
                    last_was_text = false;
                }
                let n = build(store, c);
                store.append_child(e, n).unwrap();
            }
            e
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn serialize_parse_round_trip(tree in tree_strategy()) {
        // Only element roots serialize to parseable documents.
        let tree = match tree {
            t @ Tree::Element { .. } => t,
            other => Tree::Element { name: 0, attrs: vec![], children: vec![other] },
        };
        let mut s1 = Store::new();
        let root = build(&mut s1, &tree);
        let xml = xqdm::xml::serialize(&s1, root).unwrap();

        let mut s2 = Store::new();
        let doc = xqdm::xml::parse_document(&mut s2, &xml)
            .unwrap_or_else(|e| panic!("reparse failed for {xml:?}: {e}"));
        let reparsed_root = s2.children(doc).unwrap()[0];

        // Structural equality across stores is checked via a second
        // serialization (deep_equal_nodes needs one store).
        let xml2 = xqdm::xml::serialize(&s2, reparsed_root).unwrap();
        prop_assert_eq!(&xml, &xml2);

        // And string values agree.
        prop_assert_eq!(
            s1.string_value(root).unwrap(),
            s2.string_value(reparsed_root).unwrap()
        );
    }

    #[test]
    fn deep_copy_round_trips_like_serialization(tree in tree_strategy()) {
        let mut store = Store::new();
        let root = build(&mut store, &tree);
        let copy = store.deep_copy(root).unwrap();
        prop_assert!(deep_equal_nodes(root, copy, &store).unwrap());
        prop_assert_eq!(
            xqdm::xml::serialize(&store, root).unwrap(),
            xqdm::xml::serialize(&store, copy).unwrap()
        );
    }

    #[test]
    fn escaping_round_trips(text in "[ -~]{0,40}") {
        let escaped = xqdm::xml::escape_text(&text);
        prop_assert_eq!(xqdm::xml::decode_entities(&escaped).unwrap(), text.clone());
        let attr_escaped = xqdm::xml::escape_attribute(&text);
        prop_assert_eq!(xqdm::xml::decode_entities(&attr_escaped).unwrap(), text);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "[ -~<>&;]{0,60}") {
        // Errors are fine; panics are not.
        let mut store = Store::new();
        let _ = xqdm::xml::parse_document(&mut store, &input);
        let mut store2 = Store::new();
        let _ = xqdm::xml::parse_fragment(&mut store2, &input);
    }
}
