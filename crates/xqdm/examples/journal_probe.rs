//! Micro-probe for the undo journal's per-rename overhead, outside the
//! bench harness: interleaves the journaled and raw variants rep by rep so
//! both see the same heap state, and reports average and minimum ns/op.
//! Rename is the adversarial case — the op itself is a pointer swap, so
//! the journal push plus the deferred drop of the displaced name is the
//! entire measured difference. Run with:
//! `cargo run --release -p xqdm --example journal_probe`

use std::time::Instant;
use xqdm::{QName, Store};

fn build(k: usize) -> (Store, Vec<xqdm::NodeId>, Vec<QName>) {
    let mut s = Store::new();
    let mut nodes = Vec::new();
    let mut names = Vec::new();
    // Interleave node and request-name allocations like renames_delta does.
    for i in 0..k {
        nodes.push(s.new_element(QName::local(format!("n{i}"))));
        names.push(QName::local(format!("r{i}")));
    }
    (s, nodes, names)
}

fn main() {
    const K: usize = 10_000;
    const REPS: usize = 300;

    let mut raw_total = 0u128;
    let mut raw_min = u128::MAX;
    let mut j_total = 0u128;
    let mut j_min = u128::MAX;

    // Interleave the two variants so heap state is shared fairly.
    for _ in 0..REPS {
        {
            let (mut s, nodes, names) = build(K);
            let t = Instant::now();
            for (&n, name) in nodes.iter().zip(&names) {
                s.apply_rename(n, name.clone()).unwrap();
            }
            let e = t.elapsed().as_nanos();
            raw_total += e;
            raw_min = raw_min.min(e);
        }
        {
            let (mut s, nodes, names) = build(K);
            let t = Instant::now();
            s.begin_frame();
            s.journal_reserve(K);
            for (&n, name) in nodes.iter().zip(&names) {
                s.apply_rename(n, name.clone()).unwrap();
            }
            s.commit_frame();
            let e = t.elapsed().as_nanos();
            j_total += e;
            j_min = j_min.min(e);
        }
    }
    let per = |t: u128| t / (REPS * K) as u128;
    println!(
        "raw:      avg {} ns/op, min {} ns/op",
        per(raw_total),
        raw_min / K as u128
    );
    println!(
        "journal:  avg {} ns/op, min {} ns/op",
        per(j_total),
        j_min / K as u128
    );
}
