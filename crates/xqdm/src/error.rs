//! Error type for data-model operations.
//!
//! The paper models update applications as *partial functions* from stores
//! to stores: when a precondition fails (e.g. inserting a node that already
//! has a parent), the application is undefined. We surface that as
//! [`XdmError`] values with the standard XQuery error-code style.

use std::fmt;

/// Result alias used throughout the data model.
pub type XdmResult<T> = Result<T, XdmError>;

/// An error raised by a data-model operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XdmError {
    /// A short machine-readable code, in the style of XQuery's `err:XXXXnnnn`
    /// codes (we use the `XQB` namespace for XQuery!-specific conditions).
    pub code: &'static str,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl XdmError {
    /// Create a new error with the given code and message.
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        XdmError {
            code,
            message: message.into(),
        }
    }

    /// A dangling or dead node id was dereferenced.
    pub fn dangling(what: &str) -> Self {
        XdmError::new("XQB0001", format!("dangling node id: {what}"))
    }

    /// An update-request precondition failed (partial-function semantics).
    pub fn precondition(message: impl Into<String>) -> Self {
        XdmError::new("XQB0002", message)
    }

    /// Ill-formed XML input.
    pub fn parse(message: impl Into<String>) -> Self {
        XdmError::new("XQB0003", message)
    }

    /// A type error at the data-model level (bad cast, bad atomization...).
    pub fn type_error(message: impl Into<String>) -> Self {
        XdmError::new("XPTY0004", message)
    }

    /// A value error (e.g. division by zero -> FOAR0001).
    pub fn value(code: &'static str, message: impl Into<String>) -> Self {
        XdmError::new(code, message)
    }
}

impl fmt::Display for XdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl std::error::Error for XdmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code_and_message() {
        let e = XdmError::precondition("node already has a parent");
        assert_eq!(e.to_string(), "[XQB0002] node already has a parent");
    }

    #[test]
    fn constructors_set_codes() {
        assert_eq!(XdmError::dangling("n7").code, "XQB0001");
        assert_eq!(XdmError::parse("eof").code, "XQB0003");
        assert_eq!(XdmError::type_error("x").code, "XPTY0004");
        assert_eq!(XdmError::value("FOAR0001", "div by zero").code, "FOAR0001");
    }
}
