//! A small well-formed XML parser and serializer.
//!
//! No XML crate exists in the offline dependency set, so we implement the
//! subset the engine needs: elements, attributes, character data, CDATA
//! sections, comments, processing instructions, the five predefined
//! entities and numeric character references. DTDs, namespaces-as-URIs and
//! encodings other than UTF-8 are out of scope (the paper works with
//! well-formed documents only, §3.2).

use crate::error::{XdmError, XdmResult};
use crate::node::{NodeId, NodeKind};
use crate::qname::QName;
use crate::store::Store;

/// Default cap on XML element nesting depth (`XQB_MAX_XML_DEPTH` overrides).
///
/// The element parser is iterative, so the cap is not about the thread
/// stack — it is a resource-governance bound: a maliciously deep document
/// is reported as `XQB0040` instead of ballooning the open-element stack.
pub const DEFAULT_MAX_XML_DEPTH: usize = 4096;

/// Read the XML depth cap from `XQB_MAX_XML_DEPTH`, falling back to
/// [`DEFAULT_MAX_XML_DEPTH`]. Zero and unparsable values are ignored.
pub fn max_xml_depth_from_env() -> usize {
    std::env::var("XQB_MAX_XML_DEPTH")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&d| d > 0)
        .unwrap_or(DEFAULT_MAX_XML_DEPTH)
}

/// Parse an XML document into `store`, returning the new document node.
pub fn parse_document(store: &mut Store, input: &str) -> XdmResult<NodeId> {
    parse_document_with_limit(store, input, max_xml_depth_from_env())
}

/// [`parse_document`] with an explicit element-nesting depth limit.
/// Exceeding it yields an `XQB0040` error.
pub fn parse_document_with_limit(
    store: &mut Store,
    input: &str,
    max_depth: usize,
) -> XdmResult<NodeId> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        store,
        max_depth,
    };
    let doc = p.store.new_document();
    p.skip_misc()?;
    if p.peek() != Some(b'<') {
        return Err(XdmError::parse("expected root element"));
    }
    let root = p.parse_element()?;
    p.store.append_child(doc, root)?;
    p.skip_misc()?;
    if p.pos != p.input.len() {
        return Err(XdmError::parse(format!(
            "trailing content at byte {} after root element",
            p.pos
        )));
    }
    Ok(doc)
}

/// Parse an XML *fragment* (possibly multiple top-level elements and text)
/// into parentless nodes. Useful in tests and the data generator.
pub fn parse_fragment(store: &mut Store, input: &str) -> XdmResult<Vec<NodeId>> {
    parse_fragment_with_limit(store, input, max_xml_depth_from_env())
}

/// [`parse_fragment`] with an explicit element-nesting depth limit.
pub fn parse_fragment_with_limit(
    store: &mut Store,
    input: &str,
    max_depth: usize,
) -> XdmResult<Vec<NodeId>> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        store,
        max_depth,
    };
    let mut out = Vec::new();
    loop {
        match p.peek() {
            None => break,
            Some(b'<') => {
                if p.rest().starts_with(b"<!--") {
                    out.push(p.parse_comment()?);
                } else if p.rest().starts_with(b"<?") {
                    out.push(p.parse_pi()?);
                } else {
                    out.push(p.parse_element()?);
                }
            }
            Some(_) => {
                let text = p.parse_text()?;
                if !text.is_empty() {
                    let t = p.store.new_text(text);
                    out.push(t);
                }
            }
        }
    }
    Ok(out)
}

struct Parser<'a, 's> {
    input: &'a [u8],
    pos: usize,
    store: &'s mut Store,
    max_depth: usize,
}

impl<'a, 's> Parser<'a, 's> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn rest(&self) -> &[u8] {
        &self.input[self.pos..]
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> XdmResult<()> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(XdmError::parse(format!(
                "expected \"{s}\" at byte {}",
                self.pos
            )))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skip whitespace, comments, PIs and an optional XML declaration —
    /// the "misc" that may surround the root element.
    fn skip_misc(&mut self) -> XdmResult<()> {
        loop {
            self.skip_ws();
            if self.rest().starts_with(b"<?xml") {
                // XML declaration: scan to "?>".
                self.skip_until("?>")?;
            } else if self.rest().starts_with(b"<!--") {
                self.parse_comment()?;
            } else if self.rest().starts_with(b"<!DOCTYPE") {
                return Err(XdmError::parse("DTDs are not supported"));
            } else if self.rest().starts_with(b"<?") {
                self.parse_pi()?;
            } else {
                return Ok(());
            }
        }
    }

    /// Advance past the next occurrence of `term` (inclusive).
    fn skip_until(&mut self, term: &str) -> XdmResult<()> {
        let bytes = term.as_bytes();
        while self.pos < self.input.len() {
            if self.rest().starts_with(bytes) {
                self.pos += bytes.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(XdmError::parse(format!(
            "unterminated construct, expected \"{term}\""
        )))
    }

    fn parse_name(&mut self) -> XdmResult<QName> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(XdmError::parse(format!("expected a name at byte {start}")));
        }
        let s = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| XdmError::parse("invalid UTF-8 in name"))?;
        QName::parse(s).ok_or_else(|| XdmError::parse(format!("invalid QName \"{s}\"")))
    }

    /// Parse a start tag beginning at `<`: name, attributes, and either
    /// `>` (returns `open = true`) or `/>` (`open = false`).
    fn parse_start_tag(&mut self) -> XdmResult<(NodeId, QName, bool)> {
        self.expect("<")?;
        let name = self.parse_name()?;
        let elem = self.store.new_element(name.clone());
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok((elem, name, true));
                }
                Some(b'/') => {
                    self.expect("/>")?;
                    return Ok((elem, name, false));
                }
                Some(_) => {
                    let aname = self.parse_name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let quote = match self.bump() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(XdmError::parse("expected quoted attribute value")),
                    };
                    let vstart = self.pos;
                    while let Some(c) = self.peek() {
                        if c == quote {
                            break;
                        }
                        if c == b'<' {
                            return Err(XdmError::parse("'<' in attribute value"));
                        }
                        self.pos += 1;
                    }
                    let raw = std::str::from_utf8(&self.input[vstart..self.pos])
                        .map_err(|_| XdmError::parse("invalid UTF-8 in attribute value"))?;
                    let value = decode_entities(raw)?;
                    self.expect(std::str::from_utf8(&[quote]).unwrap())?;
                    let attr = self.store.new_attribute(aname, value);
                    self.store.attach_attribute(elem, attr)?;
                }
                None => return Err(XdmError::parse("unexpected end of input in start tag")),
            }
        }
    }

    /// Parse one element subtree (cursor at `<`).
    ///
    /// Iterative: the open elements live on an explicit `Vec` rather than
    /// the call stack, so arbitrarily deep input cannot overflow the thread
    /// stack — it trips the `max_depth` bound with `XQB0040` instead.
    fn parse_element(&mut self) -> XdmResult<NodeId> {
        // Open (started, not yet closed) ancestor elements, innermost last.
        let mut stack: Vec<(NodeId, QName)> = Vec::new();
        loop {
            // The cursor is at the `<` of a start tag. The new element sits
            // at nesting depth stack.len() + 1 (root = 1).
            if stack.len() >= self.max_depth {
                return Err(XdmError::new(
                    "XQB0040",
                    format!(
                        "XML element nesting depth limit exceeded (max {})",
                        self.max_depth
                    ),
                ));
            }
            let (elem, name, open) = self.parse_start_tag()?;
            if let Some(&(parent, _)) = stack.last() {
                self.store.append_child(parent, elem)?;
            }
            if open {
                stack.push((elem, name));
            } else if stack.is_empty() {
                return Ok(elem); // self-closing root
            }
            // Content of the innermost open element, until a child start
            // tag (back to the outer loop) or an end tag (pop).
            while let Some((cur, cur_name)) = stack.last().cloned() {
                match self.peek() {
                    None => {
                        return Err(XdmError::parse(format!(
                            "unexpected end of input inside <{cur_name}>"
                        )))
                    }
                    Some(b'<') => {
                        if self.rest().starts_with(b"</") {
                            self.expect("</")?;
                            let close = self.parse_name()?;
                            if close != cur_name {
                                return Err(XdmError::parse(format!(
                                    "mismatched end tag </{close}> for <{cur_name}>"
                                )));
                            }
                            self.skip_ws();
                            self.expect(">")?;
                            stack.pop();
                            if stack.is_empty() {
                                return Ok(cur);
                            }
                        } else if self.rest().starts_with(b"<!--") {
                            let c = self.parse_comment()?;
                            self.store.append_child(cur, c)?;
                        } else if self.rest().starts_with(b"<![CDATA[") {
                            let t = self.parse_cdata()?;
                            self.store.append_child(cur, t)?;
                        } else if self.rest().starts_with(b"<?") {
                            let pi = self.parse_pi()?;
                            self.store.append_child(cur, pi)?;
                        } else {
                            break; // child element: outer loop parses it
                        }
                    }
                    Some(_) => {
                        let text = self.parse_text()?;
                        if !text.is_empty() {
                            let t = self.store.new_text(text);
                            self.store.append_child(cur, t)?;
                        }
                    }
                }
            }
        }
    }

    fn parse_text(&mut self) -> XdmResult<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'<' {
                break;
            }
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| XdmError::parse("invalid UTF-8 in text"))?;
        decode_entities(raw)
    }

    fn parse_comment(&mut self) -> XdmResult<NodeId> {
        self.expect("<!--")?;
        let start = self.pos;
        while self.pos < self.input.len() && !self.rest().starts_with(b"-->") {
            self.pos += 1;
        }
        if self.pos >= self.input.len() {
            return Err(XdmError::parse("unterminated comment"));
        }
        let content = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| XdmError::parse("invalid UTF-8 in comment"))?
            .to_string();
        self.expect("-->")?;
        Ok(self.store.new_comment(content))
    }

    fn parse_cdata(&mut self) -> XdmResult<NodeId> {
        self.expect("<![CDATA[")?;
        let start = self.pos;
        while self.pos < self.input.len() && !self.rest().starts_with(b"]]>") {
            self.pos += 1;
        }
        if self.pos >= self.input.len() {
            return Err(XdmError::parse("unterminated CDATA section"));
        }
        let content = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| XdmError::parse("invalid UTF-8 in CDATA"))?
            .to_string();
        self.expect("]]>")?;
        Ok(self.store.new_text(content))
    }

    fn parse_pi(&mut self) -> XdmResult<NodeId> {
        self.expect("<?")?;
        let target = self.parse_name()?;
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len() && !self.rest().starts_with(b"?>") {
            self.pos += 1;
        }
        if self.pos >= self.input.len() {
            return Err(XdmError::parse("unterminated processing instruction"));
        }
        let content = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| XdmError::parse("invalid UTF-8 in PI"))?
            .to_string();
        self.expect("?>")?;
        Ok(self.store.new_pi(target.to_string(), content))
    }
}

/// Decode the five predefined entities plus numeric character references.
pub fn decode_entities(s: &str) -> XdmResult<String> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let semi = rest
            .find(';')
            .ok_or_else(|| XdmError::parse("unterminated entity reference"))?;
        let ent = &rest[1..semi];
        match ent {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                let cp = u32::from_str_radix(&ent[2..], 16)
                    .map_err(|_| XdmError::parse(format!("bad character reference &{ent};")))?;
                out.push(
                    char::from_u32(cp)
                        .ok_or_else(|| XdmError::parse(format!("invalid code point in &{ent};")))?,
                );
            }
            _ if ent.starts_with('#') => {
                let cp = ent[1..]
                    .parse::<u32>()
                    .map_err(|_| XdmError::parse(format!("bad character reference &{ent};")))?;
                out.push(
                    char::from_u32(cp)
                        .ok_or_else(|| XdmError::parse(format!("invalid code point in &{ent};")))?,
                );
            }
            _ => return Err(XdmError::parse(format!("unknown entity &{ent};"))),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Escape character data for serialization.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape an attribute value (double-quote delimited).
pub fn escape_attribute(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Serialize the subtree rooted at `node` to XML text.
pub fn serialize(store: &Store, node: NodeId) -> XdmResult<String> {
    let mut out = String::new();
    serialize_into(store, node, &mut out)?;
    Ok(out)
}

/// Serialize with indentation: element-only content is broken across
/// lines and indented two spaces per level; mixed content (any text
/// child) is left verbatim, as XML indentation there would change the
/// document's string value.
pub fn serialize_pretty(store: &Store, node: NodeId) -> XdmResult<String> {
    let mut out = String::new();
    pretty_into(store, node, 0, &mut out)?;
    Ok(out)
}

// Like the parser, the serializers are iterative with an explicit work
// stack: a document nested to the (configurable) depth limit must
// serialize without exhausting the native stack, same as it parses.
fn pretty_into(store: &Store, node: NodeId, depth: usize, out: &mut String) -> XdmResult<()> {
    enum Work {
        Node(NodeId, usize),
        /// `'\n'` between document-level children.
        Sep,
        /// `'\n'` plus indentation before a nested child.
        Line(usize),
        /// `'\n'`, indentation, and the close tag of an open element.
        Close(NodeId, usize),
    }
    let mut stack = vec![Work::Node(node, depth)];
    while let Some(w) = stack.pop() {
        let (node, depth) = match w {
            Work::Sep => {
                out.push('\n');
                continue;
            }
            Work::Line(d) => {
                out.push('\n');
                out.push_str(&"  ".repeat(d));
                continue;
            }
            Work::Close(n, d) => {
                out.push('\n');
                out.push_str(&"  ".repeat(d));
                out.push_str("</");
                let name = store.name_id(n)?.expect("element has a name");
                store.symbols().push_qname(name, out);
                out.push('>');
                continue;
            }
            Work::Node(n, d) => (n, d),
        };
        match store.kind(node)? {
            NodeKind::Document { children } => {
                for (i, &c) in children.iter().enumerate().rev() {
                    stack.push(Work::Node(c, depth));
                    if i > 0 {
                        stack.push(Work::Sep);
                    }
                }
            }
            NodeKind::Element { .. } => {
                let children = store.children(node)?;
                let has_text = children
                    .iter()
                    .any(|&c| matches!(store.kind(c), Ok(NodeKind::Text { .. })));
                if children.is_empty() || has_text {
                    // Leaf or mixed content: single-line, exact.
                    serialize_into(store, node, out)?;
                    continue;
                }
                // Element-only content: open tag, indented children, close.
                out.push('<');
                let name = store.name_id(node)?.expect("element has a name");
                store.symbols().push_qname(name, out);
                for &a in store.attributes(node)? {
                    if let NodeKind::Attribute { name, value } = store.kind(a)? {
                        out.push(' ');
                        store.symbols().push_qname(*name, out);
                        out.push_str("=\"");
                        out.push_str(&escape_attribute(value));
                        out.push('"');
                    }
                }
                out.push('>');
                stack.push(Work::Close(node, depth));
                for &c in children.iter().rev() {
                    stack.push(Work::Node(c, depth + 1));
                    stack.push(Work::Line(depth + 1));
                }
            }
            _ => serialize_into(store, node, out)?,
        }
    }
    Ok(())
}

fn serialize_into(store: &Store, node: NodeId, out: &mut String) -> XdmResult<()> {
    enum Work {
        Node(NodeId),
        Close(NodeId),
    }
    fn serialize_node(
        store: &Store,
        node: NodeId,
        stack: &mut Vec<Work>,
        out: &mut String,
    ) -> XdmResult<()> {
        match store.kind(node)? {
            NodeKind::Document { children } => {
                for &c in children.iter().rev() {
                    stack.push(Work::Node(c));
                }
            }
            NodeKind::Element { name, .. } => {
                out.push('<');
                store.symbols().push_qname(*name, out);
                for &a in store.attributes(node)? {
                    if let NodeKind::Attribute { name, value } = store.kind(a)? {
                        out.push(' ');
                        store.symbols().push_qname(*name, out);
                        out.push_str("=\"");
                        out.push_str(&escape_attribute(value));
                        out.push('"');
                    }
                }
                let children = store.children(node)?;
                if children.is_empty() {
                    out.push_str("/>");
                } else {
                    out.push('>');
                    stack.push(Work::Close(node));
                    for &c in children.iter().rev() {
                        stack.push(Work::Node(c));
                    }
                }
            }
            NodeKind::Attribute { name, value } => {
                // A bare attribute serializes as name="value" (useful for debug).
                store.symbols().push_qname(*name, out);
                out.push_str("=\"");
                out.push_str(&escape_attribute(value));
                out.push('"');
            }
            NodeKind::Text { content } => out.push_str(&escape_text(content)),
            NodeKind::Comment { content } => {
                out.push_str("<!--");
                out.push_str(content);
                out.push_str("-->");
            }
            NodeKind::Pi { target, content } => {
                out.push_str("<?");
                out.push_str(store.symbols().resolve(*target));
                if !content.is_empty() {
                    out.push(' ');
                    out.push_str(content);
                }
                out.push_str("?>");
            }
        }
        Ok(())
    }

    let mut stack = vec![Work::Node(node)];
    while let Some(w) = stack.pop() {
        let node = match w {
            Work::Close(n) => {
                out.push_str("</");
                let name = store.name_id(n)?.expect("element has a name");
                store.symbols().push_qname(name, out);
                out.push('>');
                continue;
            }
            Work::Node(n) => n,
        };
        serialize_node(store, node, &mut stack, out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(xml: &str) -> String {
        let mut s = Store::new();
        let doc = parse_document(&mut s, xml).unwrap();
        serialize(&s, doc).unwrap()
    }

    #[test]
    fn simple_round_trip() {
        assert_eq!(
            round_trip("<a><b>hi</b><c x=\"1\"/></a>"),
            "<a><b>hi</b><c x=\"1\"/></a>"
        );
    }

    #[test]
    fn xml_declaration_and_misc() {
        let xml = "<?xml version=\"1.0\"?>\n<!-- head --><a/>\n";
        assert_eq!(round_trip(xml), "<a/>");
    }

    #[test]
    fn entities_decode_and_reencode() {
        assert_eq!(
            round_trip("<a>x &lt; y &amp; z</a>"),
            "<a>x &lt; y &amp; z</a>"
        );
        let mut s = Store::new();
        let d = parse_document(&mut s, "<a k=\"&quot;q&quot;\">&#65;&#x42;</a>").unwrap();
        let root = s.children(d).unwrap()[0];
        assert_eq!(s.string_value(root).unwrap(), "AB");
        let attr = s.attribute_by_name(root, "k").unwrap().unwrap();
        assert_eq!(s.string_value(attr).unwrap(), "\"q\"");
    }

    #[test]
    fn cdata_becomes_text() {
        let mut s = Store::new();
        let d = parse_document(&mut s, "<a><![CDATA[<raw&>]]></a>").unwrap();
        let root = s.children(d).unwrap()[0];
        assert_eq!(s.string_value(root).unwrap(), "<raw&>");
        // Serializes escaped.
        assert_eq!(serialize(&s, root).unwrap(), "<a>&lt;raw&amp;&gt;</a>");
    }

    #[test]
    fn comments_and_pis_preserved() {
        assert_eq!(
            round_trip("<a><!--note--><?tgt data?></a>"),
            "<a><!--note--><?tgt data?></a>"
        );
    }

    #[test]
    fn nested_structure() {
        let xml = "<r><p id=\"1\"><n>A</n></p><p id=\"2\"><n>B</n></p></r>";
        let mut s = Store::new();
        let d = parse_document(&mut s, xml).unwrap();
        let r = s.children(d).unwrap()[0];
        assert_eq!(s.children(r).unwrap().len(), 2);
        assert_eq!(s.string_value(r).unwrap(), "AB");
        assert_eq!(serialize(&s, d).unwrap(), xml);
    }

    #[test]
    fn parse_errors() {
        let mut s = Store::new();
        assert!(parse_document(&mut s, "<a><b></a>").is_err()); // mismatched
        assert!(parse_document(&mut s, "<a>").is_err()); // unterminated
        assert!(parse_document(&mut s, "<a/><b/>").is_err()); // two roots
        assert!(parse_document(&mut s, "plain text").is_err()); // no element
        assert!(parse_document(&mut s, "<a>&unknown;</a>").is_err());
        assert!(parse_document(&mut s, "<a k=1/>").is_err()); // unquoted attr
        assert!(parse_document(&mut s, "<!DOCTYPE a><a/>").is_err());
    }

    #[test]
    fn duplicate_attributes_rejected() {
        let mut s = Store::new();
        assert!(parse_document(&mut s, "<a k=\"1\" k=\"2\"/>").is_err());
    }

    #[test]
    fn fragment_parsing() {
        let mut s = Store::new();
        let nodes = parse_fragment(&mut s, "<a/>text<b/>").unwrap();
        assert_eq!(nodes.len(), 3);
        assert!(matches!(s.kind(nodes[1]).unwrap(), NodeKind::Text { .. }));
        for &n in &nodes {
            assert_eq!(s.parent(n).unwrap(), None);
        }
    }

    #[test]
    fn whitespace_text_preserved_inside_elements() {
        let mut s = Store::new();
        let d = parse_document(&mut s, "<a> <b/> </a>").unwrap();
        let a = s.children(d).unwrap()[0];
        assert_eq!(s.children(a).unwrap().len(), 3);
        assert_eq!(s.string_value(a).unwrap(), "  ");
    }

    #[test]
    fn pretty_serialization_indents_element_content() {
        let mut s = Store::new();
        let d = parse_document(&mut s, "<r><a><b>text</b></a><c x=\"1\"/></r>").unwrap();
        assert_eq!(
            serialize_pretty(&s, d).unwrap(),
            "<r>\n  <a>\n    <b>text</b>\n  </a>\n  <c x=\"1\"/>\n</r>"
        );
    }

    #[test]
    fn pretty_serialization_preserves_mixed_content() {
        let mut s = Store::new();
        let d = parse_document(&mut s, "<p>before <em>mid</em> after</p>").unwrap();
        let root = s.children(d).unwrap()[0];
        // Mixed content stays on one line, byte-identical to compact form.
        assert_eq!(
            serialize_pretty(&s, root).unwrap(),
            serialize(&s, root).unwrap()
        );
    }

    #[test]
    fn pretty_round_trips_string_value() {
        let mut s = Store::new();
        let d = parse_document(&mut s, "<r><a><b>xy</b></a></r>").unwrap();
        let pretty = serialize_pretty(&s, d).unwrap();
        let mut s2 = Store::new();
        let d2 = parse_document(&mut s2, &pretty).unwrap();
        // Indentation adds whitespace-only text nodes but no content text
        // inside the leaves.
        let b1 = s.descendants(d).unwrap();
        let b2 = s2.descendants(d2).unwrap();
        let texts = |s: &Store, ns: &[NodeId]| -> Vec<String> {
            ns.iter()
                .filter_map(|&n| match s.kind(n) {
                    Ok(NodeKind::Text { content }) if !content.trim().is_empty() => {
                        Some(content.clone())
                    }
                    _ => None,
                })
                .collect()
        };
        assert_eq!(texts(&s, &b1), texts(&s2, &b2));
    }

    #[test]
    fn million_deep_document_is_an_error_not_an_abort() {
        // Before the iterative rewrite this overflowed the thread stack and
        // aborted the whole process; now it must surface as XQB0040.
        let n = 1_000_000;
        let mut xml = String::with_capacity(n * 8);
        for _ in 0..n {
            xml.push_str("<a>");
        }
        xml.push('x');
        for _ in 0..n {
            xml.push_str("</a>");
        }
        let mut s = Store::new();
        let err = parse_document(&mut s, &xml).unwrap_err();
        assert_eq!(err.code, "XQB0040");
    }

    #[test]
    fn xml_depth_limit_is_configurable() {
        let mut s = Store::new();
        let err = parse_document_with_limit(&mut s, "<a><b><c/></b></a>", 2).unwrap_err();
        assert_eq!(err.code, "XQB0040");
        assert!(parse_document_with_limit(&mut s, "<a><b><c/></b></a>", 3).is_ok());
        // Fragments honour the limit too.
        assert!(parse_fragment_with_limit(&mut s, "<a><b/></a><c><d/></c>", 2).is_ok());
        assert_eq!(
            parse_fragment_with_limit(&mut s, "<a><b><c/></b></a>", 2)
                .unwrap_err()
                .code,
            "XQB0040"
        );
    }

    #[test]
    fn deep_but_legal_document_round_trips() {
        // Depth well past the old recursive parser's comfort zone but under
        // the default limit: must parse and serialize correctly.
        let n = 2000;
        let mut xml = String::new();
        for _ in 0..n {
            xml.push_str("<d>");
        }
        xml.push('x');
        for _ in 0..n {
            xml.push_str("</d>");
        }
        let mut s = Store::new();
        let doc = parse_document(&mut s, &xml).unwrap();
        assert_eq!(serialize(&s, doc).unwrap(), xml);
        // The pretty serializer is iterative too: element-only nesting at
        // this depth must indent, not overflow.
        let pretty = serialize_pretty(&s, doc).unwrap();
        assert!(pretty.starts_with("<d>\n  <d>"));
        assert!(pretty.ends_with("</d>\n</d>"));
    }

    #[test]
    fn prefixed_names() {
        let mut s = Store::new();
        let d = parse_document(&mut s, "<x:a x:k=\"v\"/>").unwrap();
        let a = s.children(d).unwrap()[0];
        assert_eq!(s.name(a).unwrap().unwrap().to_string(), "x:a");
    }
}
