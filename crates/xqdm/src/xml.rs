//! A small well-formed XML parser and serializer.
//!
//! No XML crate exists in the offline dependency set, so we implement the
//! subset the engine needs: elements, attributes, character data, CDATA
//! sections, comments, processing instructions, the five predefined
//! entities and numeric character references. DTDs, namespaces-as-URIs and
//! encodings other than UTF-8 are out of scope (the paper works with
//! well-formed documents only, §3.2).

use crate::error::{XdmError, XdmResult};
use crate::node::{NodeId, NodeKind};
use crate::qname::QName;
use crate::store::Store;

/// Parse an XML document into `store`, returning the new document node.
pub fn parse_document(store: &mut Store, input: &str) -> XdmResult<NodeId> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        store,
    };
    let doc = p.store.new_document();
    p.skip_misc()?;
    if p.peek() != Some(b'<') {
        return Err(XdmError::parse("expected root element"));
    }
    let root = p.parse_element()?;
    p.store.append_child(doc, root)?;
    p.skip_misc()?;
    if p.pos != p.input.len() {
        return Err(XdmError::parse(format!(
            "trailing content at byte {} after root element",
            p.pos
        )));
    }
    Ok(doc)
}

/// Parse an XML *fragment* (possibly multiple top-level elements and text)
/// into parentless nodes. Useful in tests and the data generator.
pub fn parse_fragment(store: &mut Store, input: &str) -> XdmResult<Vec<NodeId>> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        store,
    };
    let mut out = Vec::new();
    loop {
        match p.peek() {
            None => break,
            Some(b'<') => {
                if p.rest().starts_with(b"<!--") {
                    out.push(p.parse_comment()?);
                } else if p.rest().starts_with(b"<?") {
                    out.push(p.parse_pi()?);
                } else {
                    out.push(p.parse_element()?);
                }
            }
            Some(_) => {
                let text = p.parse_text()?;
                if !text.is_empty() {
                    let t = p.store.new_text(text);
                    out.push(t);
                }
            }
        }
    }
    Ok(out)
}

struct Parser<'a, 's> {
    input: &'a [u8],
    pos: usize,
    store: &'s mut Store,
}

impl<'a, 's> Parser<'a, 's> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn rest(&self) -> &[u8] {
        &self.input[self.pos..]
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> XdmResult<()> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(XdmError::parse(format!(
                "expected \"{s}\" at byte {}",
                self.pos
            )))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skip whitespace, comments, PIs and an optional XML declaration —
    /// the "misc" that may surround the root element.
    fn skip_misc(&mut self) -> XdmResult<()> {
        loop {
            self.skip_ws();
            if self.rest().starts_with(b"<?xml") {
                // XML declaration: scan to "?>".
                self.skip_until("?>")?;
            } else if self.rest().starts_with(b"<!--") {
                self.parse_comment()?;
            } else if self.rest().starts_with(b"<!DOCTYPE") {
                return Err(XdmError::parse("DTDs are not supported"));
            } else if self.rest().starts_with(b"<?") {
                self.parse_pi()?;
            } else {
                return Ok(());
            }
        }
    }

    /// Advance past the next occurrence of `term` (inclusive).
    fn skip_until(&mut self, term: &str) -> XdmResult<()> {
        let bytes = term.as_bytes();
        while self.pos < self.input.len() {
            if self.rest().starts_with(bytes) {
                self.pos += bytes.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(XdmError::parse(format!(
            "unterminated construct, expected \"{term}\""
        )))
    }

    fn parse_name(&mut self) -> XdmResult<QName> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(XdmError::parse(format!("expected a name at byte {start}")));
        }
        let s = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| XdmError::parse("invalid UTF-8 in name"))?;
        QName::parse(s).ok_or_else(|| XdmError::parse(format!("invalid QName \"{s}\"")))
    }

    fn parse_element(&mut self) -> XdmResult<NodeId> {
        self.expect("<")?;
        let name = self.parse_name()?;
        let elem = self.store.new_element(name.clone());
        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.expect("/>")?;
                    return Ok(elem);
                }
                Some(_) => {
                    let aname = self.parse_name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let quote = match self.bump() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(XdmError::parse("expected quoted attribute value")),
                    };
                    let vstart = self.pos;
                    while let Some(c) = self.peek() {
                        if c == quote {
                            break;
                        }
                        if c == b'<' {
                            return Err(XdmError::parse("'<' in attribute value"));
                        }
                        self.pos += 1;
                    }
                    let raw = std::str::from_utf8(&self.input[vstart..self.pos])
                        .map_err(|_| XdmError::parse("invalid UTF-8 in attribute value"))?;
                    let value = decode_entities(raw)?;
                    self.expect(std::str::from_utf8(&[quote]).unwrap())?;
                    let attr = self.store.new_attribute(aname, value);
                    self.store.attach_attribute(elem, attr)?;
                }
                None => return Err(XdmError::parse("unexpected end of input in start tag")),
            }
        }
        // Content.
        loop {
            match self.peek() {
                None => {
                    return Err(XdmError::parse(format!(
                        "unexpected end of input inside <{name}>"
                    )))
                }
                Some(b'<') => {
                    if self.rest().starts_with(b"</") {
                        self.expect("</")?;
                        let close = self.parse_name()?;
                        if close != name {
                            return Err(XdmError::parse(format!(
                                "mismatched end tag </{close}> for <{name}>"
                            )));
                        }
                        self.skip_ws();
                        self.expect(">")?;
                        return Ok(elem);
                    } else if self.rest().starts_with(b"<!--") {
                        let c = self.parse_comment()?;
                        self.store.append_child(elem, c)?;
                    } else if self.rest().starts_with(b"<![CDATA[") {
                        let t = self.parse_cdata()?;
                        self.store.append_child(elem, t)?;
                    } else if self.rest().starts_with(b"<?") {
                        let pi = self.parse_pi()?;
                        self.store.append_child(elem, pi)?;
                    } else {
                        let child = self.parse_element()?;
                        self.store.append_child(elem, child)?;
                    }
                }
                Some(_) => {
                    let text = self.parse_text()?;
                    if !text.is_empty() {
                        let t = self.store.new_text(text);
                        self.store.append_child(elem, t)?;
                    }
                }
            }
        }
    }

    fn parse_text(&mut self) -> XdmResult<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'<' {
                break;
            }
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| XdmError::parse("invalid UTF-8 in text"))?;
        decode_entities(raw)
    }

    fn parse_comment(&mut self) -> XdmResult<NodeId> {
        self.expect("<!--")?;
        let start = self.pos;
        while self.pos < self.input.len() && !self.rest().starts_with(b"-->") {
            self.pos += 1;
        }
        if self.pos >= self.input.len() {
            return Err(XdmError::parse("unterminated comment"));
        }
        let content = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| XdmError::parse("invalid UTF-8 in comment"))?
            .to_string();
        self.expect("-->")?;
        Ok(self.store.new_comment(content))
    }

    fn parse_cdata(&mut self) -> XdmResult<NodeId> {
        self.expect("<![CDATA[")?;
        let start = self.pos;
        while self.pos < self.input.len() && !self.rest().starts_with(b"]]>") {
            self.pos += 1;
        }
        if self.pos >= self.input.len() {
            return Err(XdmError::parse("unterminated CDATA section"));
        }
        let content = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| XdmError::parse("invalid UTF-8 in CDATA"))?
            .to_string();
        self.expect("]]>")?;
        Ok(self.store.new_text(content))
    }

    fn parse_pi(&mut self) -> XdmResult<NodeId> {
        self.expect("<?")?;
        let target = self.parse_name()?;
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len() && !self.rest().starts_with(b"?>") {
            self.pos += 1;
        }
        if self.pos >= self.input.len() {
            return Err(XdmError::parse("unterminated processing instruction"));
        }
        let content = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| XdmError::parse("invalid UTF-8 in PI"))?
            .to_string();
        self.expect("?>")?;
        Ok(self.store.new_pi(target.to_string(), content))
    }
}

/// Decode the five predefined entities plus numeric character references.
pub fn decode_entities(s: &str) -> XdmResult<String> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let semi = rest
            .find(';')
            .ok_or_else(|| XdmError::parse("unterminated entity reference"))?;
        let ent = &rest[1..semi];
        match ent {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                let cp = u32::from_str_radix(&ent[2..], 16)
                    .map_err(|_| XdmError::parse(format!("bad character reference &{ent};")))?;
                out.push(
                    char::from_u32(cp)
                        .ok_or_else(|| XdmError::parse(format!("invalid code point in &{ent};")))?,
                );
            }
            _ if ent.starts_with('#') => {
                let cp = ent[1..]
                    .parse::<u32>()
                    .map_err(|_| XdmError::parse(format!("bad character reference &{ent};")))?;
                out.push(
                    char::from_u32(cp)
                        .ok_or_else(|| XdmError::parse(format!("invalid code point in &{ent};")))?,
                );
            }
            _ => return Err(XdmError::parse(format!("unknown entity &{ent};"))),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Escape character data for serialization.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape an attribute value (double-quote delimited).
pub fn escape_attribute(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Serialize the subtree rooted at `node` to XML text.
pub fn serialize(store: &Store, node: NodeId) -> XdmResult<String> {
    let mut out = String::new();
    serialize_into(store, node, &mut out)?;
    Ok(out)
}

/// Serialize with indentation: element-only content is broken across
/// lines and indented two spaces per level; mixed content (any text
/// child) is left verbatim, as XML indentation there would change the
/// document's string value.
pub fn serialize_pretty(store: &Store, node: NodeId) -> XdmResult<String> {
    let mut out = String::new();
    pretty_into(store, node, 0, &mut out)?;
    Ok(out)
}

fn pretty_into(store: &Store, node: NodeId, depth: usize, out: &mut String) -> XdmResult<()> {
    match store.kind(node)? {
        NodeKind::Document { children } => {
            for (i, &c) in children.iter().enumerate() {
                if i > 0 {
                    out.push('\n');
                }
                pretty_into(store, c, depth, out)?;
            }
        }
        NodeKind::Element { .. } => {
            let children = store.children(node)?.to_vec();
            let has_text = children
                .iter()
                .any(|&c| matches!(store.kind(c), Ok(NodeKind::Text { .. })));
            if children.is_empty() || has_text {
                // Leaf or mixed content: single-line, exact.
                serialize_into(store, node, out)?;
                return Ok(());
            }
            // Element-only content: open tag, indented children, close.
            out.push('<');
            out.push_str(&store.name(node)?.expect("element has a name").to_string());
            for &a in store.attributes(node)? {
                if let NodeKind::Attribute { name, value } = store.kind(a)? {
                    out.push(' ');
                    out.push_str(&name.to_string());
                    out.push_str("=\"");
                    out.push_str(&escape_attribute(value));
                    out.push('"');
                }
            }
            out.push('>');
            for &c in &children {
                out.push('\n');
                out.push_str(&"  ".repeat(depth + 1));
                pretty_into(store, c, depth + 1, out)?;
            }
            out.push('\n');
            out.push_str(&"  ".repeat(depth));
            out.push_str("</");
            out.push_str(&store.name(node)?.expect("element has a name").to_string());
            out.push('>');
        }
        _ => serialize_into(store, node, out)?,
    }
    Ok(())
}

fn serialize_into(store: &Store, node: NodeId, out: &mut String) -> XdmResult<()> {
    match store.kind(node)? {
        NodeKind::Document { children } => {
            for &c in children {
                serialize_into(store, c, out)?;
            }
        }
        NodeKind::Element { name, .. } => {
            out.push('<');
            out.push_str(&name.to_string());
            for &a in store.attributes(node)? {
                if let NodeKind::Attribute { name, value } = store.kind(a)? {
                    out.push(' ');
                    out.push_str(&name.to_string());
                    out.push_str("=\"");
                    out.push_str(&escape_attribute(value));
                    out.push('"');
                }
            }
            let children = store.children(node)?.to_vec();
            if children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for c in children {
                    serialize_into(store, c, out)?;
                }
                out.push_str("</");
                out.push_str(&store.name(node)?.unwrap().to_string());
                out.push('>');
            }
        }
        NodeKind::Attribute { name, value } => {
            // A bare attribute serializes as name="value" (useful for debug).
            out.push_str(&name.to_string());
            out.push_str("=\"");
            out.push_str(&escape_attribute(value));
            out.push('"');
        }
        NodeKind::Text { content } => out.push_str(&escape_text(content)),
        NodeKind::Comment { content } => {
            out.push_str("<!--");
            out.push_str(content);
            out.push_str("-->");
        }
        NodeKind::Pi { target, content } => {
            out.push_str("<?");
            out.push_str(target);
            if !content.is_empty() {
                out.push(' ');
                out.push_str(content);
            }
            out.push_str("?>");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(xml: &str) -> String {
        let mut s = Store::new();
        let doc = parse_document(&mut s, xml).unwrap();
        serialize(&s, doc).unwrap()
    }

    #[test]
    fn simple_round_trip() {
        assert_eq!(
            round_trip("<a><b>hi</b><c x=\"1\"/></a>"),
            "<a><b>hi</b><c x=\"1\"/></a>"
        );
    }

    #[test]
    fn xml_declaration_and_misc() {
        let xml = "<?xml version=\"1.0\"?>\n<!-- head --><a/>\n";
        assert_eq!(round_trip(xml), "<a/>");
    }

    #[test]
    fn entities_decode_and_reencode() {
        assert_eq!(
            round_trip("<a>x &lt; y &amp; z</a>"),
            "<a>x &lt; y &amp; z</a>"
        );
        let mut s = Store::new();
        let d = parse_document(&mut s, "<a k=\"&quot;q&quot;\">&#65;&#x42;</a>").unwrap();
        let root = s.children(d).unwrap()[0];
        assert_eq!(s.string_value(root).unwrap(), "AB");
        let attr = s.attribute_by_name(root, "k").unwrap().unwrap();
        assert_eq!(s.string_value(attr).unwrap(), "\"q\"");
    }

    #[test]
    fn cdata_becomes_text() {
        let mut s = Store::new();
        let d = parse_document(&mut s, "<a><![CDATA[<raw&>]]></a>").unwrap();
        let root = s.children(d).unwrap()[0];
        assert_eq!(s.string_value(root).unwrap(), "<raw&>");
        // Serializes escaped.
        assert_eq!(serialize(&s, root).unwrap(), "<a>&lt;raw&amp;&gt;</a>");
    }

    #[test]
    fn comments_and_pis_preserved() {
        assert_eq!(
            round_trip("<a><!--note--><?tgt data?></a>"),
            "<a><!--note--><?tgt data?></a>"
        );
    }

    #[test]
    fn nested_structure() {
        let xml = "<r><p id=\"1\"><n>A</n></p><p id=\"2\"><n>B</n></p></r>";
        let mut s = Store::new();
        let d = parse_document(&mut s, xml).unwrap();
        let r = s.children(d).unwrap()[0];
        assert_eq!(s.children(r).unwrap().len(), 2);
        assert_eq!(s.string_value(r).unwrap(), "AB");
        assert_eq!(serialize(&s, d).unwrap(), xml);
    }

    #[test]
    fn parse_errors() {
        let mut s = Store::new();
        assert!(parse_document(&mut s, "<a><b></a>").is_err()); // mismatched
        assert!(parse_document(&mut s, "<a>").is_err()); // unterminated
        assert!(parse_document(&mut s, "<a/><b/>").is_err()); // two roots
        assert!(parse_document(&mut s, "plain text").is_err()); // no element
        assert!(parse_document(&mut s, "<a>&unknown;</a>").is_err());
        assert!(parse_document(&mut s, "<a k=1/>").is_err()); // unquoted attr
        assert!(parse_document(&mut s, "<!DOCTYPE a><a/>").is_err());
    }

    #[test]
    fn duplicate_attributes_rejected() {
        let mut s = Store::new();
        assert!(parse_document(&mut s, "<a k=\"1\" k=\"2\"/>").is_err());
    }

    #[test]
    fn fragment_parsing() {
        let mut s = Store::new();
        let nodes = parse_fragment(&mut s, "<a/>text<b/>").unwrap();
        assert_eq!(nodes.len(), 3);
        assert!(matches!(s.kind(nodes[1]).unwrap(), NodeKind::Text { .. }));
        for &n in &nodes {
            assert_eq!(s.parent(n).unwrap(), None);
        }
    }

    #[test]
    fn whitespace_text_preserved_inside_elements() {
        let mut s = Store::new();
        let d = parse_document(&mut s, "<a> <b/> </a>").unwrap();
        let a = s.children(d).unwrap()[0];
        assert_eq!(s.children(a).unwrap().len(), 3);
        assert_eq!(s.string_value(a).unwrap(), "  ");
    }

    #[test]
    fn pretty_serialization_indents_element_content() {
        let mut s = Store::new();
        let d = parse_document(&mut s, "<r><a><b>text</b></a><c x=\"1\"/></r>").unwrap();
        assert_eq!(
            serialize_pretty(&s, d).unwrap(),
            "<r>\n  <a>\n    <b>text</b>\n  </a>\n  <c x=\"1\"/>\n</r>"
        );
    }

    #[test]
    fn pretty_serialization_preserves_mixed_content() {
        let mut s = Store::new();
        let d = parse_document(&mut s, "<p>before <em>mid</em> after</p>").unwrap();
        let root = s.children(d).unwrap()[0];
        // Mixed content stays on one line, byte-identical to compact form.
        assert_eq!(
            serialize_pretty(&s, root).unwrap(),
            serialize(&s, root).unwrap()
        );
    }

    #[test]
    fn pretty_round_trips_string_value() {
        let mut s = Store::new();
        let d = parse_document(&mut s, "<r><a><b>xy</b></a></r>").unwrap();
        let pretty = serialize_pretty(&s, d).unwrap();
        let mut s2 = Store::new();
        let d2 = parse_document(&mut s2, &pretty).unwrap();
        // Indentation adds whitespace-only text nodes but no content text
        // inside the leaves.
        let b1 = s.descendants(d).unwrap();
        let b2 = s2.descendants(d2).unwrap();
        let texts = |s: &Store, ns: &[NodeId]| -> Vec<String> {
            ns.iter()
                .filter_map(|&n| match s.kind(n) {
                    Ok(NodeKind::Text { content }) if !content.trim().is_empty() => {
                        Some(content.clone())
                    }
                    _ => None,
                })
                .collect()
        };
        assert_eq!(texts(&s, &b1), texts(&s2, &b2));
    }

    #[test]
    fn prefixed_names() {
        let mut s = Store::new();
        let d = parse_document(&mut s, "<x:a x:k=\"v\"/>").unwrap();
        let a = s.children(d).unwrap()[0];
        assert_eq!(s.name(a).unwrap().unwrap().to_string(), "x:a");
    }
}
