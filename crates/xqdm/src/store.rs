//! The mutable node store (paper §3.2).
//!
//! The store maps node ids to kind, parent, name and content, and exposes
//! exactly the three groups of operations the paper's semantics needs:
//!
//! 1. **XDM accessors and constructors** — `parent`, `children`,
//!    `attributes`, `node_name`, `string_value`, plus `new_element` & co.;
//! 2. **Update-request applications** — `apply_insert`, `detach` (the
//!    paper's delete-as-detach), `apply_rename`, each a *partial function*
//!    whose preconditions mirror §3.2 (inserted nodes must be parentless,
//!    the insertion anchor must be a child of the parent, no cycles);
//! 3. **Housekeeping the paper flags as the hard parts** (§4.1): document
//!    order over a mutable forest, and garbage accounting for nodes that
//!    are detached and unreachable yet persistent.

use crate::error::{XdmError, XdmResult};
use crate::footprint::{aspect, Capture, CapturedDelta};
use crate::index::{value_hash, IndexPlane};
use crate::node::{NodeData, NodeId, NodeKind};
use crate::pages::Pages;
use crate::qname::QName;
use crate::symbols::{QNameId, Symbols};
use crate::wal::{
    self, BirthKind, CommitReceipt, Cursor, Fnv64, RecoveryReport, RedoOp, SyncMode, Wal,
};
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::path::Path;

/// Where an insertion lands among a parent's children (paper §3.1's
/// `as first into` / `as last into` / `into` / `after` / `before` forms are
/// all resolved by the evaluator to one of these anchors plus a parent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsertAnchor {
    /// Before the first existing child.
    First,
    /// After the last existing child (also the meaning of plain `into`).
    Last,
    /// Immediately after the given sibling (which must be a child of the
    /// insertion parent — a paper precondition).
    After(NodeId),
}

/// Aggregate statistics about a store, used by the detach/GC experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Total slots ever allocated and still alive.
    pub alive: usize,
    /// Alive nodes reachable from the given roots.
    pub reachable: usize,
    /// Alive nodes *not* reachable from the given roots (detached garbage).
    pub garbage: usize,
}

/// Reusable scratch buffers for document-order sorting and the batch
/// step kernels (DESIGN.md §14). The hot loops — `sort_and_dedup` after
/// every path step, the kernels' per-origin gathers — previously
/// allocated fresh buffers per call; an evaluation owns one `Scratch`
/// and threads it through, so steady-state evaluation reuses the same
/// backing allocations. Pinned by an allocation-count assertion in
/// `tests/obs_invariants.rs`.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Keyed-sort workspace: one `(order-key, node)` pair per input node.
    /// Entries are recycled, so each pair's key `Vec` keeps its capacity
    /// across calls.
    keyed: Vec<(Vec<(u64, u64)>, NodeId)>,
    /// Per-origin gather buffer for the batch step kernels.
    pub(crate) gather: Vec<NodeId>,
}

impl Scratch {
    /// Fresh, empty scratch space.
    pub fn new() -> Self {
        Scratch::default()
    }
}

/// A node test pre-resolved against a store's interner, consumed by the
/// batch step kernels and the evaluator's per-node test. Resolution
/// happens once per step (not once per node), so the hot match is pure
/// integer work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTest {
    /// A name test. `None` records an interner miss: the lexical name
    /// appears on no node in this store, so the test matches nothing.
    Name(Option<QNameId>),
    /// `*` — any name on the principal axis.
    Wildcard,
    /// `text()`
    Text,
    /// `node()`
    AnyKind,
    /// `comment()`
    Comment,
    /// `processing-instruction()`
    Pi,
    /// `element()`
    Element,
    /// `attribute()`
    AttributeTest,
    /// `document-node()`
    Document,
}

impl KernelTest {
    /// Resolve a lexical name test. The returned test is only valid
    /// against the same store's interner (ids are per-store).
    pub fn name(symbols: &Symbols, lexical: &str) -> KernelTest {
        KernelTest::Name(symbols.lookup_lexical(lexical))
    }
}

/// One recorded inverse of a primitive store mutation. Entries are replayed
/// in reverse by [`Store::rollback_frame`]; each replay writes fields
/// directly (never through the journaled mutators) so rollback itself
/// records nothing.
#[derive(Debug, Clone)]
enum UndoEntry {
    /// A node was allocated; `reused` says whether the slot came off the
    /// free list (so undo can restore the free list exactly).
    Alloc { id: NodeId, reused: bool },
    /// An element or attribute was renamed; `name` is the previous
    /// (interned) name — symbol ids stay valid forever, the table being
    /// append-only, so the journal can hold them safely.
    Name { id: NodeId, name: QNameId },
    /// A text node's content was replaced.
    Text { id: NodeId, content: String },
    /// An attribute node's value was replaced.
    AttrValue { id: NodeId, value: String },
    /// A node's sibling order key was rewritten.
    Okey { id: NodeId, okey: u64 },
    /// `count` parentless nodes were spliced into `parent`'s children at
    /// `index` (an insert); undo removes them and clears their parents.
    Splice {
        parent: NodeId,
        index: usize,
        count: usize,
    },
    /// `node` was detached from `parent` at `index` (child list, or the
    /// attribute list when `in_attributes`); undo reinserts it.
    Detach {
        node: NodeId,
        parent: NodeId,
        index: usize,
        in_attributes: bool,
    },
    /// A node's parent link alone was rewritten (detach of a node missing
    /// from its parent's lists — degenerate but journaled exactly).
    Parent { id: NodeId, parent: Option<NodeId> },
    /// An attribute was pushed onto `element`'s attribute list; undo pops
    /// it and clears its parent.
    AttrPush { element: NodeId },
    /// A node was reclaimed by `collect_garbage`; `data` is its full
    /// pre-collection state. Boxed so this rare, fat payload does not
    /// inflate the size of every other journal entry.
    Collected { id: NodeId, data: Box<NodeData> },
}

/// The mutable XML store.
#[derive(Debug, Default)]
pub struct Store {
    /// Node slots: COW paged storage ([`crate::pages`]), so
    /// [`Store::snapshot`] forks the whole slot space in O(pages) and
    /// later mutations copy only the pages they touch.
    nodes: Pages,
    /// Slots retired by `collect_garbage`, available for reuse.
    free: Vec<NodeId>,
    /// Undo journal: inverses of every mutation performed while at least
    /// one frame is open (see [`Store::begin_frame`]).
    undo: Vec<UndoEntry>,
    /// Start offsets into `undo`, one per open frame.
    frames: Vec<usize>,
    /// Attached durable redo log (see [`Store::open_durable`]). While
    /// present, every successful mutation records a forward redo op;
    /// [`Store::wal_commit`] makes them durable.
    wal: Option<Box<Wal>>,
    /// Δ capture for optimistic concurrency (DESIGN.md §16). While
    /// present, every successful mutation records its redo op and write
    /// footprint here, and (when read tracing is on) every accessor
    /// records its read footprint; see [`Store::begin_capture`].
    capture: Option<Box<Capture>>,
    /// Interned names: node slots hold [`QNameId`]s/[`crate::SymbolId`]s
    /// into this append-only table (DESIGN.md §14).
    symbols: Symbols,
    /// Secondary indexes (DESIGN.md §17): derived state maintained by
    /// the same mutators the paper's semantics defines, COW-shared
    /// across snapshots like the node pages.
    index: IndexPlane,
}

impl Clone for Store {
    /// A cloned store is an in-memory fork: node slots, free list,
    /// journal state and the symbol table are copied, but the redo log
    /// stays with the original (two writers on one log would interleave
    /// histories).
    fn clone(&self) -> Self {
        Store {
            nodes: self.nodes.clone(),
            free: self.free.clone(),
            undo: self.undo.clone(),
            frames: self.frames.clone(),
            wal: None,
            capture: None,
            symbols: self.symbols.clone(),
            index: self.index.clone(),
        }
    }
}

impl Drop for Store {
    /// Clean shutdown of a durable store: flush any pending redo ops as
    /// a final commit and append a seal record carrying the fingerprint,
    /// so the next recovery can verify it rebuilt the identical store.
    /// Best-effort — a drop mid-unwind (open frames) seals nothing.
    fn drop(&mut self) {
        if self.wal.is_some() && self.frames.is_empty() {
            let _ = self.wal_commit();
            let fp = self.fingerprint();
            if let Some(w) = &mut self.wal {
                if w.dirty_since_open() {
                    let _ = w.seal(fp);
                }
            }
        }
    }
}

/// Journal capacity retained across outermost commits: the journal is
/// cleared on every outermost [`Store::commit_frame`], and any backing
/// allocation beyond this many entries is released too, so a long-lived
/// session's journal memory stays bounded by its largest recent frame,
/// not its largest-ever frame.
const UNDO_RETAIN_CAP: usize = 4096;

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Number of alive nodes.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// True when no alive nodes exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An immutable copy-on-write fork of this store: the snapshot shares
    /// every node page with the live store (O(pages), not O(nodes)), and
    /// later mutations of either side copy only the pages they touch.
    /// Node ids remain valid across the fork, so bindings and values
    /// taken against the live store resolve identically in the snapshot.
    ///
    /// The snapshot is a plain in-memory [`Store`]: no redo log (the log
    /// stays with the writer), no undo journal, clean frame state. The
    /// caller must not be inside an open undo frame — a mid-frame fork
    /// would capture uncommitted mutations as if they were state.
    pub fn snapshot(&self) -> Store {
        assert!(self.frames.is_empty(), "snapshot inside an open undo frame");
        Store {
            nodes: self.nodes.clone(),
            free: self.free.clone(),
            undo: Vec::new(),
            frames: Vec::new(),
            wal: None,
            capture: None,
            symbols: self.symbols.clone(),
            index: self.index.clone(),
        }
    }

    /// How many node pages this store still shares with `other`
    /// (snapshot-COW observability; see [`Store::snapshot`]).
    pub fn shared_pages_with(&self, other: &Store) -> usize {
        self.nodes.shared_pages_with(&other.nodes)
    }

    /// Total node pages backing this store.
    pub fn page_count(&self) -> usize {
        self.nodes.page_count()
    }

    // ------------------------------------------------------------------
    // Undo journal (failure atomicity)
    //
    // Every mutating primitive records its inverse into `undo` while at
    // least one frame is open. `apply_delta` (crate `xqcore`) opens a frame
    // around each snap application so a failed update leaves the store
    // exactly as it was; the engine opens an outer frame around each run so
    // a panic can be unwound to the pre-call store.
    // ------------------------------------------------------------------

    /// Open an undo frame: every subsequent mutation records its inverse
    /// until the frame is closed by [`Store::commit_frame`] or
    /// [`Store::rollback_frame`]. Frames nest; an inner frame's entries are
    /// retained for the enclosing frame when the inner one commits, so an
    /// outer rollback still undoes inner-committed work.
    pub fn begin_frame(&mut self) {
        self.frames.push(self.undo.len());
        if let Some(w) = &mut self.wal {
            w.note_begin_frame();
        }
        if let Some(c) = &mut self.capture {
            c.note_begin_frame();
        }
    }

    /// Close the innermost frame, keeping its effects. O(1) when nested;
    /// the outermost commit frees the accumulated journal. Panics if no
    /// frame is open.
    pub fn commit_frame(&mut self) {
        self.frames
            .pop()
            .expect("commit_frame without an open frame");
        if self.frames.is_empty() {
            self.undo.clear();
            // Bound the journal's retained memory: clear() keeps the
            // backing allocation, so one huge frame would otherwise pin
            // its high-water capacity for the session's lifetime.
            if self.undo.capacity() > UNDO_RETAIN_CAP {
                self.undo.shrink_to(UNDO_RETAIN_CAP);
            }
        }
        if let Some(w) = &mut self.wal {
            w.note_commit_frame();
        }
        if let Some(c) = &mut self.capture {
            c.note_commit_frame();
        }
    }

    /// Close the innermost frame, undoing every mutation made since its
    /// [`Store::begin_frame`] — including mutations of inner frames that
    /// have already committed. The store is restored exactly: node slots,
    /// the free list, parent links, sibling positions and order keys all
    /// return to their pre-frame state. Panics if no frame is open.
    pub fn rollback_frame(&mut self) {
        let mark = self
            .frames
            .pop()
            .expect("rollback_frame without an open frame");
        while self.undo.len() > mark {
            let entry = self.undo.pop().expect("journal shorter than frame mark");
            self.undo_entry(entry);
        }
        // The frame's redo ops never become durable: they are dropped
        // from the in-memory buffer before any commit marker is written.
        if let Some(w) = &mut self.wal {
            w.note_rollback_frame();
        }
        if let Some(c) = &mut self.capture {
            c.note_rollback_frame();
        }
    }

    /// Current backing capacity of the undo journal, in entries (for the
    /// boundedness test pinning [`UNDO_RETAIN_CAP`]).
    pub fn journal_capacity(&self) -> usize {
        self.undo.capacity()
    }

    /// Pre-size the journal for roughly `additional` upcoming entries so a
    /// bulk application does not pay repeated reallocation copies. A no-op
    /// when no frame is open.
    pub fn journal_reserve(&mut self, additional: usize) {
        if self.journaling() {
            self.undo.reserve(additional);
        }
    }

    /// Number of currently open undo frames.
    pub fn frame_depth(&self) -> usize {
        self.frames.len()
    }

    /// Ids allocated since the innermost open frame began (empty when no
    /// frame is open). Used by the engine to sweep constructed-but-orphaned
    /// nodes after a failed run without touching pre-existing garbage.
    pub fn frame_allocations(&self) -> Vec<NodeId> {
        let mark = match self.frames.last() {
            Some(&m) => m,
            None => return Vec::new(),
        };
        self.undo[mark..]
            .iter()
            .filter_map(|e| match e {
                UndoEntry::Alloc { id, .. } => Some(*id),
                _ => None,
            })
            .collect()
    }

    /// Reclaim exactly the nodes of `candidates` that are alive and not
    /// reachable from `roots`. Unlike [`Store::collect_garbage`] this never
    /// touches other unreachable nodes, so pre-existing detached garbage
    /// (observable via [`Store::stats`]) is preserved. Returns the number
    /// of reclaimed slots.
    pub fn reclaim_unreachable(
        &mut self,
        candidates: &[NodeId],
        roots: &[NodeId],
    ) -> XdmResult<usize> {
        let reachable = self.reachable_set(roots)?;
        let journaling = !self.frames.is_empty();
        let logging = self.logging();
        let mut collected = Vec::new();
        let mut reclaimed = 0;
        for &id in candidates {
            let i = id.index();
            if self.nodes.get(i).map(|d| d.alive).unwrap_or(false) && !reachable.contains(&id) {
                let okey = self.nodes[i].okey;
                let dead = NodeData {
                    parent: None,
                    kind: NodeKind::Text {
                        content: String::new(),
                    },
                    alive: false,
                    okey,
                };
                let data = std::mem::replace(&mut self.nodes[i], dead);
                self.index.note_death(&data.kind, id);
                if journaling {
                    self.undo.push(UndoEntry::Collected {
                        id,
                        data: Box::new(data),
                    });
                }
                if logging {
                    collected.push(id);
                }
                self.free.push(id);
                reclaimed += 1;
            }
        }
        if !collected.is_empty() {
            if let Some(c) = &mut self.capture {
                // Reclaiming a base-snapshot node is a whole-store effect
                // for conflict purposes: its slot re-enters the free list
                // and may be re-allocated under a different identity.
                if collected.iter().any(|&id| !c.is_fresh(id)) {
                    c.set_global();
                }
            }
            // The recorded order fixes the replayed free list, hence
            // every future allocation's id.
            self.wal_record(RedoOp::Collect { ids: collected });
        }
        Ok(reclaimed)
    }

    fn journaling(&self) -> bool {
        !self.frames.is_empty()
    }

    /// Replay one journal entry (reverse order is the caller's job). All
    /// writes are direct so nothing is re-recorded.
    fn undo_entry(&mut self, entry: UndoEntry) {
        match entry {
            UndoEntry::Alloc { id, reused } => {
                // Mirror the index before the slot's payload is erased.
                self.index.note_death(&self.nodes[id.index()].kind, id);
                if !reused && id.index() + 1 == self.nodes.len() {
                    self.nodes.pop();
                } else {
                    let d = &mut self.nodes[id.index()];
                    d.alive = false;
                    d.kind = NodeKind::Text {
                        content: String::new(),
                    };
                    d.parent = None;
                    if reused {
                        self.free.push(id);
                    }
                }
            }
            UndoEntry::Name { id, name } => {
                // Mirror the index move (current name → restored name)
                // before the direct write.
                let moved = match &self.nodes[id.index()].kind {
                    NodeKind::Element { name: cur, .. } => Some((*cur, None)),
                    NodeKind::Attribute { name: cur, value } => {
                        Some((*cur, Some(value_hash(value))))
                    }
                    _ => None,
                };
                match moved {
                    Some((cur, None)) => self.index.move_element(cur, name, id),
                    Some((cur, Some(vh))) => {
                        self.index.move_attr((cur, vh), (name, vh), id);
                    }
                    None => {}
                }
                if let NodeKind::Element { name: n, .. } | NodeKind::Attribute { name: n, .. } =
                    &mut self.nodes[id.index()].kind
                {
                    *n = name;
                }
            }
            UndoEntry::Text { id, content } => {
                if let NodeKind::Text { content: c } = &mut self.nodes[id.index()].kind {
                    *c = content;
                }
            }
            UndoEntry::AttrValue { id, value } => {
                let moved = match &self.nodes[id.index()].kind {
                    NodeKind::Attribute { name, value: cur } => {
                        Some((*name, value_hash(cur), value_hash(&value)))
                    }
                    _ => None,
                };
                if let Some((name, from, to)) = moved {
                    self.index.move_attr((name, from), (name, to), id);
                }
                if let NodeKind::Attribute { value: v, .. } = &mut self.nodes[id.index()].kind {
                    *v = value;
                }
            }
            UndoEntry::Okey { id, okey } => {
                self.nodes[id.index()].okey = okey;
            }
            UndoEntry::Splice {
                parent,
                index,
                count,
            } => {
                let removed: Vec<NodeId> = match &mut self.nodes[parent.index()].kind {
                    NodeKind::Document { children } | NodeKind::Element { children, .. } => {
                        children.drain(index..index + count).collect()
                    }
                    _ => Vec::new(),
                };
                for n in removed {
                    self.nodes[n.index()].parent = None;
                }
            }
            UndoEntry::Detach {
                node,
                parent,
                index,
                in_attributes,
            } => {
                match &mut self.nodes[parent.index()].kind {
                    NodeKind::Document { children } if !in_attributes => {
                        children.insert(index, node)
                    }
                    NodeKind::Element { attributes, .. } if in_attributes => {
                        attributes.insert(index, node)
                    }
                    NodeKind::Element { children, .. } => children.insert(index, node),
                    _ => {}
                }
                self.nodes[node.index()].parent = Some(parent);
            }
            UndoEntry::Parent { id, parent } => {
                self.nodes[id.index()].parent = parent;
            }
            UndoEntry::AttrPush { element } => {
                let popped = match &mut self.nodes[element.index()].kind {
                    NodeKind::Element { attributes, .. } => attributes.pop(),
                    _ => None,
                };
                if let Some(a) = popped {
                    self.nodes[a.index()].parent = None;
                }
            }
            UndoEntry::Collected { id, data } => {
                // The slot comes back alive with its full payload:
                // reinstate its index entries.
                self.index.note_birth(&data.kind, id);
                self.nodes[id.index()] = *data;
                if self.free.last() == Some(&id) {
                    self.free.pop();
                } else {
                    self.free.retain(|&f| f != id);
                }
            }
        }
    }

    fn alloc(&mut self, kind: NodeKind) -> NodeId {
        let data = NodeData {
            parent: None,
            kind,
            alive: true,
            okey: 0,
        };
        let (id, reused) = match self.free.pop() {
            Some(id) => {
                self.nodes[id.index()] = data;
                (id, true)
            }
            None => {
                let id = NodeId(self.nodes.len() as u32);
                self.nodes.push(data);
                (id, false)
            }
        };
        self.index.note_birth(&self.nodes[id.index()].kind, id);
        if self.journaling() {
            self.undo.push(UndoEntry::Alloc { id, reused });
        }
        if self.logging() {
            // At birth every container is empty, so the at-alloc kind is
            // the complete forward image. Logged lexically: the on-disk
            // record format predates interning and must not change.
            let kind = self.birth_kind(id);
            self.wal_record(RedoOp::Alloc { id, kind });
        }
        if let Some(c) = &mut self.capture {
            c.note_fresh(id);
        }
        id
    }

    /// The lexical at-birth image of a just-allocated slot (for the redo
    /// log; see [`BirthKind`]).
    fn birth_kind(&self, id: NodeId) -> BirthKind {
        match &self.nodes[id.index()].kind {
            NodeKind::Document { .. } => BirthKind::Document,
            NodeKind::Element { name, .. } => BirthKind::Element {
                name: self.symbols.resolve_qname(*name),
            },
            NodeKind::Attribute { name, value } => BirthKind::Attribute {
                name: self.symbols.resolve_qname(*name),
                value: value.clone(),
            },
            NodeKind::Text { content } => BirthKind::Text {
                content: content.clone(),
            },
            NodeKind::Comment { content } => BirthKind::Comment {
                content: content.clone(),
            },
            NodeKind::Pi { target, content } => BirthKind::Pi {
                target: self.symbols.resolve(*target).to_string(),
                content: content.clone(),
            },
        }
    }

    /// Is any forward-op consumer attached (redo log or Δ capture)?
    fn logging(&self) -> bool {
        self.wal.is_some() || self.capture.is_some()
    }

    /// Append a redo op to the attached log's buffer and/or the Δ
    /// capture (no-op without either).
    fn wal_record(&mut self, op: RedoOp) {
        match (&mut self.capture, &mut self.wal) {
            (Some(c), Some(w)) => {
                c.ops.push(op.clone());
                w.record(op);
            }
            (Some(c), None) => c.ops.push(op),
            (None, Some(w)) => w.record(op),
            (None, None) => {}
        }
    }

    /// Record an evaluator-visible read of `aspects` of `id` (no-op
    /// unless a read-tracing capture is attached). `&self` on purpose:
    /// effect-free parallel regions read through shared `&Store`.
    #[inline]
    fn trace_read(&self, id: NodeId, aspects: u8) {
        if let Some(c) = &self.capture {
            c.trace_read(id, aspects);
        }
    }

    /// Record a write footprint mark for a mutation of `id` (no-op
    /// without a capture; writes to capture-fresh nodes are dropped).
    #[inline]
    fn cap_write(&mut self, id: NodeId, aspects: u8) {
        if let Some(c) = &mut self.capture {
            c.record_write(id, aspects);
        }
    }

    // ------------------------------------------------------------------
    // Δ capture (optimistic concurrency; DESIGN.md §16)
    // ------------------------------------------------------------------

    /// Attach a Δ capture: every subsequent mutation records its redo op
    /// and write footprint; with `trace_reads`, every evaluator-visible
    /// accessor records its read footprint too. Forked transaction
    /// stores capture with read tracing; the live store captures without
    /// it (only committed write footprints are needed there).
    pub fn begin_capture(&mut self, trace_reads: bool) {
        self.capture = Some(Box::new(Capture::new(trace_reads)));
    }

    /// Is a Δ capture attached?
    pub fn capturing(&self) -> bool {
        self.capture.is_some()
    }

    /// Detach the Δ capture, discarding anything recorded.
    pub fn end_capture(&mut self) {
        self.capture = None;
    }

    /// Drain everything recorded since the last take (or since
    /// [`Store::begin_capture`]) into a [`CapturedDelta`], leaving the
    /// capture attached and reset for the next transaction.
    pub fn take_capture(&mut self) -> Option<CapturedDelta> {
        self.capture.as_mut().map(|c| c.take())
    }

    /// Replay a captured Δ onto this store through the regular mutators,
    /// remapping the Δ's fork-local allocations onto fresh live
    /// allocations (classic OCC rebase). Ops referencing base-snapshot
    /// nodes keep their ids — base ids are stable across the fork. Every
    /// mutator precondition is re-validated against the live store; an
    /// error means the Δ does not apply here (the caller treats it as a
    /// conflict and rolls back its enclosing frame). Because the live
    /// free list and the mutator sequence fully determine allocation,
    /// the resulting state is bit-identical to running the transaction
    /// serially at this point in the commit order.
    pub fn apply_captured(&mut self, delta: &CapturedDelta) -> XdmResult<()> {
        let mut map: HashMap<NodeId, NodeId> = HashMap::new();
        fn m(map: &HashMap<NodeId, NodeId>, id: NodeId) -> NodeId {
            map.get(&id).copied().unwrap_or(id)
        }
        for op in &delta.ops {
            match op {
                RedoOp::Alloc { id, kind } => {
                    let got = self.alloc_birth(kind);
                    map.insert(*id, got);
                }
                RedoOp::Insert {
                    seq,
                    parent,
                    anchor,
                } => {
                    let seq: Vec<NodeId> = seq.iter().map(|&n| m(&map, n)).collect();
                    let anchor = match anchor {
                        InsertAnchor::After(p) => InsertAnchor::After(m(&map, *p)),
                        a => *a,
                    };
                    self.apply_insert(&seq, m(&map, *parent), anchor)?;
                }
                RedoOp::AttachAttr { element, attr } => {
                    self.attach_attribute(m(&map, *element), m(&map, *attr))?;
                }
                RedoOp::Detach { node } => self.detach(m(&map, *node))?,
                RedoOp::Rename { node, name } => {
                    self.apply_rename(m(&map, *node), name.clone())?;
                }
                RedoOp::SetText { node, content } => {
                    self.set_text(m(&map, *node), content.clone())?;
                }
                RedoOp::SetAttrValue { node, value } => {
                    self.set_attribute_value(m(&map, *node), value.clone())?;
                }
                RedoOp::Collect { ids } => {
                    let ids: Vec<NodeId> = ids.iter().map(|&n| m(&map, n)).collect();
                    self.kill_slots(&ids)?;
                }
            }
        }
        Ok(())
    }

    fn data(&self, id: NodeId) -> XdmResult<&NodeData> {
        match self.nodes.get(id.index()) {
            Some(d) if d.alive => Ok(d),
            _ => Err(XdmError::dangling(&id.to_string())),
        }
    }

    fn data_mut(&mut self, id: NodeId) -> XdmResult<&mut NodeData> {
        match self.nodes.get_mut(id.index()) {
            Some(d) if d.alive => Ok(d),
            _ => Err(XdmError::dangling(&id.to_string())),
        }
    }

    /// Is `id` an alive node in this store?
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()).map(|d| d.alive).unwrap_or(false)
    }

    // ------------------------------------------------------------------
    // Constructors (XDM constructors, paper §3.2)
    // ------------------------------------------------------------------

    /// Create a new, empty document node.
    pub fn new_document(&mut self) -> NodeId {
        self.alloc(NodeKind::Document {
            children: Vec::new(),
        })
    }

    /// Create a new, parentless element node with no content.
    pub fn new_element(&mut self, name: QName) -> NodeId {
        let name = self.symbols.intern_qname(&name);
        self.alloc(NodeKind::Element {
            name,
            attributes: Vec::new(),
            children: Vec::new(),
        })
    }

    /// Create a new, parentless attribute node.
    pub fn new_attribute(&mut self, name: QName, value: impl Into<String>) -> NodeId {
        let name = self.symbols.intern_qname(&name);
        self.alloc(NodeKind::Attribute {
            name,
            value: value.into(),
        })
    }

    /// Create a new, parentless text node.
    pub fn new_text(&mut self, content: impl Into<String>) -> NodeId {
        self.alloc(NodeKind::Text {
            content: content.into(),
        })
    }

    /// Create a new, parentless comment node.
    pub fn new_comment(&mut self, content: impl Into<String>) -> NodeId {
        self.alloc(NodeKind::Comment {
            content: content.into(),
        })
    }

    /// Create a new, parentless processing-instruction node.
    pub fn new_pi(&mut self, target: impl Into<String>, content: impl Into<String>) -> NodeId {
        let target = self.symbols.intern(&target.into());
        self.alloc(NodeKind::Pi {
            target,
            content: content.into(),
        })
    }

    /// The store's symbol table (read access: name lookups, resolution).
    pub fn symbols(&self) -> &Symbols {
        &self.symbols
    }

    // ------------------------------------------------------------------
    // Secondary indexes (DESIGN.md §17; docs/INDEXES.md)
    // ------------------------------------------------------------------

    /// Is the index plane available to the planner? Maintenance is
    /// unconditional (O(1) per affected mutation); this flag only gates
    /// `,idx` plan selection.
    pub fn index_enabled(&self) -> bool {
        self.index.enabled()
    }

    /// Toggle planner availability of the index plane. A real change
    /// bumps [`Store::index_epoch`], which plan caches fold into their
    /// keys so a cached `,idx` plan never outlives its index.
    pub fn set_indexing(&mut self, on: bool) {
        self.index.set_enabled(on);
    }

    /// The index availability epoch (bumped per toggle).
    pub fn index_epoch(&self) -> u64 {
        self.index.epoch()
    }

    /// Alive element count — the cost gate's selectivity denominator.
    pub fn indexed_elements(&self) -> usize {
        self.index.elements()
    }

    /// Number of alive elements named `name` anywhere in the store
    /// (0 when none — bucket absence *is* an exact answer).
    pub fn index_name_len(&self, name: QNameId) -> usize {
        self.index.name_len(name)
    }

    /// [`Store::index_name_len`] from a lexical name (tests, REPL).
    pub fn index_name_len_lexical(&self, lexical: &str) -> usize {
        match self.symbols.lookup_lexical(lexical) {
            Some(q) => self.index.name_len(q),
            None => 0,
        }
    }

    /// Append every alive element named `name` to `out` — store-global
    /// and unordered; callers filter by containment against their scan
    /// origins and doc-order sort the result. Traces a NAME read per
    /// hit when a read-tracing capture is attached, but planners must
    /// not *select* index scans while tracing: the absence of a match
    /// is an existence read no per-node footprint can express.
    pub fn index_name_nodes(&self, name: QNameId, out: &mut Vec<NodeId>) {
        if let Some(bucket) = self.index.name_bucket(name) {
            for &id in bucket {
                self.trace_read(id, aspect::NAME);
                out.push(id);
            }
        }
    }

    /// Upper bound on the number of alive attributes named `name` with
    /// value `value` (hash-bucket size; collisions inflate it).
    pub fn index_attr_len(&self, name: QNameId, value: &str) -> usize {
        self.index.attr_len(name, value_hash(value))
    }

    /// Append every alive attribute node named `name` whose value
    /// equals `value` *exactly* to `out` (the hash bucket is re-checked
    /// here, so collisions cost a string compare, never a wrong
    /// answer). Same contract and tracing caveats as
    /// [`Store::index_name_nodes`].
    pub fn index_attr_nodes(&self, name: QNameId, value: &str, out: &mut Vec<NodeId>) {
        if let Some(bucket) = self.index.attr_bucket(name, value_hash(value)) {
            for &id in bucket {
                if let Some(NodeData {
                    kind: NodeKind::Attribute { value: v, .. },
                    alive: true,
                    ..
                }) = self.nodes.get(id.index())
                {
                    if v == value {
                        self.trace_read(id, aspect::NAME | aspect::VALUE);
                        out.push(id);
                    }
                }
            }
        }
    }

    /// Is a read-tracing Δ capture attached? The executor refuses
    /// index scans while tracing (see [`Store::index_name_nodes`]) and
    /// falls back to the batch kernels, whose footprints are exact.
    pub fn tracing_reads(&self) -> bool {
        self.capture.as_deref().is_some_and(Capture::is_tracing)
    }

    /// Does the plane hold exactly the entries a from-scratch rebuild
    /// would? The maintenance-equivalence oracle for the proptests.
    pub fn index_verify(&self) -> bool {
        self.index.matches_rebuild(&self.nodes)
    }

    // ------------------------------------------------------------------
    // Accessors
    //
    // The public accessors trace their reads into an attached Δ capture
    // (DESIGN.md §16): each records which *aspect* of the node shaped the
    // answer. Mutator internals use the `_raw` variants — replaying a Δ
    // re-validates preconditions and recomputes splice positions on the
    // live store, so those reads need no validation.
    // ------------------------------------------------------------------

    /// The node's kind and payload.
    pub fn kind(&self, id: NodeId) -> XdmResult<&NodeKind> {
        self.trace_read(
            id,
            aspect::NAME | aspect::VALUE | aspect::CHILDREN | aspect::ATTRS,
        );
        Ok(&self.data(id)?.kind)
    }

    /// The node's parent, if attached.
    pub fn parent(&self, id: NodeId) -> XdmResult<Option<NodeId>> {
        self.trace_read(id, aspect::PARENT);
        Ok(self.data(id)?.parent)
    }

    /// The node's children (empty for non-containers).
    pub fn children(&self, id: NodeId) -> XdmResult<&[NodeId]> {
        self.trace_read(id, aspect::CHILDREN);
        self.children_raw(id)
    }

    fn children_raw(&self, id: NodeId) -> XdmResult<&[NodeId]> {
        Ok(match &self.data(id)?.kind {
            NodeKind::Document { children } | NodeKind::Element { children, .. } => children,
            _ => &[],
        })
    }

    /// The node's attribute nodes (empty for non-elements).
    pub fn attributes(&self, id: NodeId) -> XdmResult<&[NodeId]> {
        self.trace_read(id, aspect::ATTRS);
        self.attributes_raw(id)
    }

    fn attributes_raw(&self, id: NodeId) -> XdmResult<&[NodeId]> {
        Ok(match &self.data(id)?.kind {
            NodeKind::Element { attributes, .. } => attributes,
            _ => &[],
        })
    }

    /// The node's name (elements and attributes; `None` otherwise),
    /// materialized lexically. Hot paths should prefer
    /// [`Store::name_id`], which is alloc-free.
    pub fn name(&self, id: NodeId) -> XdmResult<Option<QName>> {
        Ok(self.name_id(id)?.map(|q| self.symbols.resolve_qname(q)))
    }

    /// The node's interned name (elements and attributes; `None`
    /// otherwise). Within one store, equal ids ⇔ equal lexical names.
    pub fn name_id(&self, id: NodeId) -> XdmResult<Option<QNameId>> {
        self.trace_read(id, aspect::NAME);
        self.name_id_raw(id)
    }

    fn name_id_raw(&self, id: NodeId) -> XdmResult<Option<QNameId>> {
        Ok(match &self.data(id)?.kind {
            NodeKind::Element { name, .. } | NodeKind::Attribute { name, .. } => Some(*name),
            _ => None,
        })
    }

    /// Look up an attribute of `element` by (unprefixed) name; returns
    /// the attribute node. An interner miss means no node anywhere bears
    /// the name, so the attribute list is not even scanned.
    pub fn attribute_by_name(&self, element: NodeId, name: &str) -> XdmResult<Option<NodeId>> {
        let wanted = match self.symbols.lookup(name) {
            Some(s) => s,
            None => {
                // Even an interner miss is a read of the attribute list:
                // a committed Δ attaching this attribute would change the
                // answer, so the miss path must stay validated.
                self.trace_read(element, aspect::ATTRS);
                self.data(element)?; // preserve dangling-id errors
                return Ok(None);
            }
        };
        for &a in self.attributes(element)? {
            if let NodeKind::Attribute { name: n, .. } = self.kind(a)? {
                if n.prefix().is_none() && n.local() == wanted {
                    return Ok(Some(a));
                }
            }
        }
        Ok(None)
    }

    /// The XDM string value: concatenated descendant text for containers,
    /// content for the leaf kinds.
    pub fn string_value(&self, id: NodeId) -> XdmResult<String> {
        self.trace_read(id, aspect::VALUE);
        match &self.data(id)?.kind {
            NodeKind::Attribute { value, .. } => Ok(value.clone()),
            NodeKind::Text { content } | NodeKind::Comment { content } => Ok(content.clone()),
            NodeKind::Pi { content, .. } => Ok(content.clone()),
            NodeKind::Document { .. } | NodeKind::Element { .. } => {
                let mut out = String::new();
                self.collect_text(id, &mut out)?;
                Ok(out)
            }
        }
    }

    /// Concatenate descendant text into `out`. Iterative with an
    /// explicit stack: `string_value` on a pathologically deep document
    /// must error or succeed, never abort the process on stack overflow
    /// (same treatment the parsers and serializers got).
    fn collect_text(&self, id: NodeId, out: &mut String) -> XdmResult<()> {
        let mut stack: Vec<NodeId> = vec![id];
        while let Some(n) = stack.pop() {
            self.trace_read(n, aspect::VALUE | aspect::CHILDREN);
            match &self.data(n)?.kind {
                NodeKind::Text { content } => out.push_str(content),
                NodeKind::Document { children } | NodeKind::Element { children, .. } => {
                    stack.extend(children.iter().rev().copied());
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// The root of the tree containing `id` (follows parent links; a
    /// detached node is its own root).
    pub fn root(&self, id: NodeId) -> XdmResult<NodeId> {
        let mut cur = id;
        while let Some(p) = self.parent(cur)? {
            cur = p;
        }
        Ok(cur)
    }

    /// All descendants of `id` in document (preorder) order, not including
    /// `id` itself. Attributes are *not* descendants (XDM).
    pub fn descendants(&self, id: NodeId) -> XdmResult<Vec<NodeId>> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.children(id)?.iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.children(n)?.iter().rev() {
                stack.push(c);
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Batch step kernels (DESIGN.md §14): one call per path step over a
    // whole batch of origin nodes, with the node test pre-resolved to
    // interned ids so the per-node check is a couple of integer compares.
    // ------------------------------------------------------------------

    /// Does `node` satisfy `test`? `principal_attr` selects the principal
    /// node kind (attribute on the attribute axis, element elsewhere).
    /// Alloc-free: name tests compare interned ids.
    #[inline]
    pub fn kernel_matches(
        &self,
        node: NodeId,
        principal_attr: bool,
        test: KernelTest,
    ) -> XdmResult<bool> {
        // A node's kind *category* is fixed at birth, so kind tests read
        // nothing mutable; only the name comparison does.
        self.trace_read(node, aspect::NAME);
        let kind = &self.data(node)?.kind;
        Ok(match test {
            KernelTest::AnyKind => true,
            KernelTest::Text => matches!(kind, NodeKind::Text { .. }),
            KernelTest::Comment => matches!(kind, NodeKind::Comment { .. }),
            KernelTest::Pi => matches!(kind, NodeKind::Pi { .. }),
            KernelTest::Element => matches!(kind, NodeKind::Element { .. }),
            KernelTest::AttributeTest => matches!(kind, NodeKind::Attribute { .. }),
            KernelTest::Document => matches!(kind, NodeKind::Document { .. }),
            KernelTest::Wildcard => {
                if principal_attr {
                    matches!(kind, NodeKind::Attribute { .. })
                } else {
                    matches!(kind, NodeKind::Element { .. })
                }
            }
            KernelTest::Name(wanted) => {
                let name = match kind {
                    NodeKind::Element { name, .. } if !principal_attr => Some(*name),
                    NodeKind::Attribute { name, .. } if principal_attr => Some(*name),
                    _ => None,
                };
                match (name, wanted) {
                    (Some(n), Some(w)) => n == w,
                    _ => false,
                }
            }
        })
    }

    /// Child-axis kernel: append to `out` every child of every node in
    /// `input` that satisfies `test`. `out` is *not* cleared — callers
    /// own the buffer lifecycle — and is *not* doc-order normalized
    /// (when an input node is an ancestor of another, child batches can
    /// interleave); the driver applies `sort_and_dedup_with` per step.
    pub fn batch_children_into(
        &self,
        input: &[NodeId],
        test: KernelTest,
        out: &mut Vec<NodeId>,
    ) -> XdmResult<()> {
        for &origin in input {
            for &c in self.children(origin)? {
                if self.kernel_matches(c, false, test)? {
                    out.push(c);
                }
            }
        }
        Ok(())
    }

    /// Descendant-axis kernel (`or_self` widens to descendant-or-self).
    /// Uses the scratch gather buffer as the DFS stack, so steady-state
    /// traversal allocates nothing. Same output contract as
    /// [`Store::batch_children_into`].
    pub fn batch_descendants_into(
        &self,
        input: &[NodeId],
        test: KernelTest,
        or_self: bool,
        scratch: &mut Scratch,
        out: &mut Vec<NodeId>,
    ) -> XdmResult<()> {
        let stack = &mut scratch.gather;
        for &origin in input {
            if or_self && self.kernel_matches(origin, false, test)? {
                out.push(origin);
            }
            stack.clear();
            stack.extend(self.children(origin)?.iter().rev());
            while let Some(n) = stack.pop() {
                if self.kernel_matches(n, false, test)? {
                    out.push(n);
                }
                for &c in self.children(n)?.iter().rev() {
                    stack.push(c);
                }
            }
        }
        Ok(())
    }

    /// Attribute-axis kernel: the principal node kind is attribute. Same
    /// output contract as [`Store::batch_children_into`].
    pub fn batch_attributes_into(
        &self,
        input: &[NodeId],
        test: KernelTest,
        out: &mut Vec<NodeId>,
    ) -> XdmResult<()> {
        for &origin in input {
            for &a in self.attributes(origin)? {
                if self.kernel_matches(a, true, test)? {
                    out.push(a);
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Tree building (used during construction/parsing, before any node id
    // escapes into query values; same preconditions as insertion)
    // ------------------------------------------------------------------

    /// Append `child` as the last child of `parent`.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) -> XdmResult<()> {
        self.apply_insert(&[child], parent, InsertAnchor::Last)
    }

    /// Attach `attr` (an attribute node) to `element`.
    ///
    /// Precondition: `attr` is a parentless attribute node, `element` is an
    /// element, and no attribute with the same name is present.
    pub fn attach_attribute(&mut self, element: NodeId, attr: NodeId) -> XdmResult<()> {
        if self.data(attr)?.parent.is_some() {
            return Err(XdmError::precondition("attribute already has a parent"));
        }
        let next_attr_okey = {
            let attrs = self.attributes_raw(element)?;
            match attrs.last() {
                Some(&last) => self.data(last)?.okey.saturating_add(Self::OKEY_STRIDE),
                None => Self::OKEY_STRIDE,
            }
        };
        let attr_name = match &self.data(attr)?.kind {
            NodeKind::Attribute { name, .. } => *name,
            k => {
                return Err(XdmError::precondition(format!(
                    "attach_attribute expects an attribute node, got {}",
                    k.kind_name()
                )))
            }
        };
        for &existing in self.attributes_raw(element)? {
            if self.name_id_raw(existing)? == Some(attr_name) {
                return Err(XdmError::precondition(format!(
                    "duplicate attribute \"{}\"",
                    self.symbols.qname_string(attr_name)
                )));
            }
        }
        match &mut self.data_mut(element)?.kind {
            NodeKind::Element { attributes, .. } => attributes.push(attr),
            k => {
                let k = k.kind_name();
                return Err(XdmError::precondition(format!(
                    "cannot attach attribute to {k} node"
                )));
            }
        }
        if self.journaling() {
            self.undo.push(UndoEntry::AttrPush { element });
        }
        let old_okey = {
            let a = self.data_mut(attr)?;
            a.parent = Some(element);
            std::mem::replace(&mut a.okey, next_attr_okey)
        };
        if self.journaling() {
            self.undo.push(UndoEntry::Okey {
                id: attr,
                okey: old_okey,
            });
        }
        if self.logging() {
            self.wal_record(RedoOp::AttachAttr { element, attr });
        }
        self.cap_write(element, aspect::ATTRS);
        self.cap_write(attr, aspect::PARENT);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Update-request applications (paper §3.2: partial functions on stores)
    // ------------------------------------------------------------------

    /// Apply `insert(nodeseq, nodepar, nodepos)`: splice the nodes of `seq`
    /// into `parent`'s children at `anchor`.
    ///
    /// Preconditions (the paper's, plus cycle safety):
    /// * every node of `seq` is alive, parentless, and not an attribute or
    ///   document node;
    /// * `parent` is a container (document or element);
    /// * an `After(pos)` anchor names a current child of `parent`;
    /// * no node of `seq` is `parent` itself or an ancestor of `parent`.
    pub fn apply_insert(
        &mut self,
        seq: &[NodeId],
        parent: NodeId,
        anchor: InsertAnchor,
    ) -> XdmResult<()> {
        if !self.data(parent)?.kind.is_container() {
            return Err(XdmError::precondition(format!(
                "insertion parent {parent} is a {} node",
                self.data(parent)?.kind.kind_name()
            )));
        }
        // Cycle detection without an eager ancestor walk: a strict
        // ancestor of `parent` necessarily has at least one child (the
        // one on the path down to `parent`), so a childless inserted
        // node can never close a cycle. Fresh nodes — the overwhelming
        // majority of inserts, and every append in a deep-tree build —
        // therefore skip the O(depth) walk entirely; we only collect
        // the ancestor set once some inserted node already has children.
        let mut ancestors: Option<HashSet<NodeId>> = None;
        for &n in seq {
            let d = self.data(n)?;
            if d.parent.is_some() {
                return Err(XdmError::precondition(format!(
                    "inserted node {n} has a parent"
                )));
            }
            let has_children = match &d.kind {
                NodeKind::Attribute { .. } => {
                    return Err(XdmError::precondition(
                        "cannot insert an attribute node as a child",
                    ))
                }
                NodeKind::Document { .. } => {
                    return Err(XdmError::precondition(
                        "cannot insert a document node as a child",
                    ))
                }
                NodeKind::Element { children, .. } => !children.is_empty(),
                _ => false,
            };
            if n == parent {
                return Err(XdmError::precondition(format!(
                    "inserting {n} under {parent} would create a cycle"
                )));
            }
            if has_children {
                if ancestors.is_none() {
                    let mut set = HashSet::new();
                    let mut cur = Some(parent);
                    while let Some(a) = cur {
                        set.insert(a);
                        cur = self.data(a)?.parent;
                    }
                    ancestors = Some(set);
                }
                if ancestors.as_ref().is_some_and(|set| set.contains(&n)) {
                    return Err(XdmError::precondition(format!(
                        "inserting {n} under {parent} would create a cycle"
                    )));
                }
            }
        }
        let index = {
            let children = self.children_raw(parent)?;
            match anchor {
                InsertAnchor::First => 0,
                InsertAnchor::Last => children.len(),
                InsertAnchor::After(pos) => match children.iter().position(|&c| c == pos) {
                    Some(i) => i + 1,
                    None => {
                        return Err(XdmError::precondition(format!(
                            "anchor {pos} is not a child of {parent}"
                        )))
                    }
                },
            }
        };
        match &mut self.data_mut(parent)?.kind {
            NodeKind::Document { children } | NodeKind::Element { children, .. } => {
                children.splice(index..index, seq.iter().copied());
            }
            _ => unreachable!("checked container above"),
        }
        if self.journaling() {
            self.undo.push(UndoEntry::Splice {
                parent,
                index,
                count: seq.len(),
            });
        }
        for &n in seq {
            self.data_mut(n)?.parent = Some(parent);
        }
        self.assign_order_keys(parent, index, seq.len())?;
        if self.logging() {
            // Order keys are not logged: replay re-runs this very method,
            // which recomputes them (and any renumbering) identically.
            self.wal_record(RedoOp::Insert {
                seq: seq.to_vec(),
                parent,
                anchor,
            });
        }
        self.cap_write(parent, aspect::CHILDREN);
        for &n in seq {
            self.cap_write(n, aspect::PARENT);
        }
        Ok(())
    }

    /// Gap spacing for freshly (re)numbered sibling order keys.
    const OKEY_STRIDE: u64 = 1 << 32;

    /// Assign sibling order keys to `count` children of `parent` starting
    /// at `index`, spacing them evenly inside the gap left by their
    /// neighbours; renumber the whole child list when the gap is too
    /// tight (amortized rare).
    fn assign_order_keys(&mut self, parent: NodeId, index: usize, count: usize) -> XdmResult<()> {
        if count == 0 {
            return Ok(());
        }
        let children: Vec<NodeId> = self.children_raw(parent)?.to_vec();
        let lo = if index == 0 {
            0
        } else {
            self.data(children[index - 1])?.okey
        };
        let hi = if index + count == children.len() {
            u64::MAX
        } else {
            self.data(children[index + count])?.okey
        };
        let span = hi - lo;
        let journaling = self.journaling();
        if span <= count as u64 {
            // Gap exhausted: renumber every child with fresh stride.
            for (i, &c) in children.iter().enumerate() {
                let old = std::mem::replace(
                    &mut self.data_mut(c)?.okey,
                    (i as u64 + 1) * Self::OKEY_STRIDE,
                );
                if journaling {
                    self.undo.push(UndoEntry::Okey { id: c, okey: old });
                }
            }
            return Ok(());
        }
        // Cap the step at one stride: bisecting the full remaining span
        // would halve the tail gap on every end-anchored insert and force a
        // full renumber every ~64 appends; with the cap, appends consume the
        // key space linearly and renumbering stays genuinely rare.
        let step = (span / (count as u64 + 1)).min(Self::OKEY_STRIDE);
        for (j, &c) in children[index..index + count].iter().enumerate() {
            let old = std::mem::replace(&mut self.data_mut(c)?.okey, lo + step * (j as u64 + 1));
            if journaling {
                self.undo.push(UndoEntry::Okey { id: c, okey: old });
            }
        }
        Ok(())
    }

    /// Apply `delete(node)` with the paper's **detach** semantics (§3.1):
    /// the node is removed from its parent's child/attribute list but stays
    /// alive and queryable; detaching an already-detached node is a no-op.
    pub fn detach(&mut self, node: NodeId) -> XdmResult<()> {
        let parent = match self.data(node)?.parent {
            Some(p) => p,
            None => return Ok(()),
        };
        // (index, was-in-attribute-list); found first so the undo journal
        // can reinsert the node at its exact position.
        let removed: Option<(usize, bool)> = match &mut self.data_mut(parent)?.kind {
            NodeKind::Document { children } => children.iter().position(|&c| c == node).map(|i| {
                children.remove(i);
                (i, false)
            }),
            NodeKind::Element {
                attributes,
                children,
                ..
            } => {
                if let Some(i) = children.iter().position(|&c| c == node) {
                    children.remove(i);
                    Some((i, false))
                } else {
                    attributes.iter().position(|&a| a == node).map(|i| {
                        attributes.remove(i);
                        (i, true)
                    })
                }
            }
            _ => None,
        };
        self.data_mut(node)?.parent = None;
        if self.journaling() {
            match removed {
                Some((index, in_attributes)) => self.undo.push(UndoEntry::Detach {
                    node,
                    parent,
                    index,
                    in_attributes,
                }),
                None => self.undo.push(UndoEntry::Parent {
                    id: node,
                    parent: Some(parent),
                }),
            }
        }
        if self.logging() {
            self.wal_record(RedoOp::Detach { node });
        }
        self.cap_write(node, aspect::PARENT);
        // Conservative: the entry may have been in either list.
        self.cap_write(parent, aspect::CHILDREN | aspect::ATTRS);
        Ok(())
    }

    /// Apply `rename(node, name)`. Precondition: the node is an element or
    /// attribute.
    pub fn apply_rename(&mut self, node: NodeId, name: QName) -> XdmResult<()> {
        let logged = self.logging().then(|| name.clone());
        let name = self.symbols.intern_qname(&name);
        let old = match &mut self.data_mut(node)?.kind {
            NodeKind::Element { name: n, .. } | NodeKind::Attribute { name: n, .. } => {
                std::mem::replace(n, name)
            }
            k => {
                let k = k.kind_name();
                return Err(XdmError::precondition(format!("cannot rename a {k} node")));
            }
        };
        let moved = match &self.nodes[node.index()].kind {
            NodeKind::Element { .. } => Some(None),
            NodeKind::Attribute { value, .. } => Some(Some(value_hash(value))),
            _ => None,
        };
        match moved {
            Some(None) => self.index.move_element(old, name, node),
            Some(Some(vh)) => self.index.move_attr((old, vh), (name, vh), node),
            None => {}
        }
        if self.journaling() {
            self.undo.push(UndoEntry::Name {
                id: node,
                name: old,
            });
        }
        if let Some(name) = logged {
            self.wal_record(RedoOp::Rename { node, name });
        }
        self.cap_write(node, aspect::NAME);
        Ok(())
    }

    /// Replace the textual content of a text node (used by `replace` on
    /// text, e.g. the paper's counter example `replace {$d/text()} with ...`
    /// goes through insert+delete; this direct setter is used by tests and
    /// the data generator).
    pub fn set_text(&mut self, node: NodeId, content: impl Into<String>) -> XdmResult<()> {
        let content = content.into();
        let logged = self.logging().then(|| content.clone());
        let old = match &mut self.data_mut(node)?.kind {
            NodeKind::Text { content: c } => std::mem::replace(c, content),
            k => {
                let k = k.kind_name();
                return Err(XdmError::precondition(format!("set_text on a {k} node")));
            }
        };
        if self.journaling() {
            self.undo.push(UndoEntry::Text {
                id: node,
                content: old,
            });
        }
        if let Some(content) = logged {
            self.wal_record(RedoOp::SetText { node, content });
        }
        self.cap_write(node, aspect::VALUE);
        Ok(())
    }

    /// Set an attribute node's value.
    pub fn set_attribute_value(&mut self, node: NodeId, value: impl Into<String>) -> XdmResult<()> {
        let value = value.into();
        let logged = self.logging().then(|| value.clone());
        let old = match &mut self.data_mut(node)?.kind {
            NodeKind::Attribute { value: v, .. } => std::mem::replace(v, value),
            k => {
                let k = k.kind_name();
                return Err(XdmError::precondition(format!(
                    "set_attribute_value on a {k} node"
                )));
            }
        };
        let moved = match &self.nodes[node.index()].kind {
            NodeKind::Attribute { name, value: new } => {
                Some((*name, value_hash(&old), value_hash(new)))
            }
            _ => None,
        };
        if let Some((name, from, to)) = moved {
            self.index.move_attr((name, from), (name, to), node);
        }
        if self.journaling() {
            self.undo.push(UndoEntry::AttrValue {
                id: node,
                value: old,
            });
        }
        if let Some(value) = logged {
            self.wal_record(RedoOp::SetAttrValue { node, value });
        }
        self.cap_write(node, aspect::VALUE);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Deep copy (the `copy {}` operator and normalization's implicit copy)
    // ------------------------------------------------------------------

    /// Deep-copy the subtree rooted at `node`, returning the parentless
    /// copy's id. Attributes are copied along with elements.
    pub fn deep_copy(&mut self, node: NodeId) -> XdmResult<NodeId> {
        // A copy observes everything about the source node, and it
        // bypasses the public accessors — trace the read here.
        self.trace_read(
            node,
            aspect::NAME | aspect::VALUE | aspect::CHILDREN | aspect::ATTRS,
        );
        // Names are already interned in this store, so copies alloc with
        // the source's ids directly — no resolve/re-intern round trip.
        let kind = self.data(node)?.kind.clone();
        match kind {
            NodeKind::Document { children } => {
                let copy = self.new_document();
                for c in children {
                    let cc = self.deep_copy(c)?;
                    self.append_child(copy, cc)?;
                }
                Ok(copy)
            }
            NodeKind::Element {
                name,
                attributes,
                children,
            } => {
                let copy = self.alloc(NodeKind::Element {
                    name,
                    attributes: Vec::new(),
                    children: Vec::new(),
                });
                for a in attributes {
                    let ac = self.deep_copy(a)?;
                    self.attach_attribute(copy, ac)?;
                }
                for c in children {
                    let cc = self.deep_copy(c)?;
                    self.append_child(copy, cc)?;
                }
                Ok(copy)
            }
            NodeKind::Attribute { name, value } => {
                Ok(self.alloc(NodeKind::Attribute { name, value }))
            }
            NodeKind::Text { content } => Ok(self.new_text(content)),
            NodeKind::Comment { content } => Ok(self.new_comment(content)),
            NodeKind::Pi { target, content } => Ok(self.alloc(NodeKind::Pi { target, content })),
        }
    }

    // ------------------------------------------------------------------
    // Document order (paper §4.1: "document order maintenance" is one of
    // the two significant data-model challenges)
    // ------------------------------------------------------------------

    /// Compare two nodes in document order. Nodes in different trees are
    /// ordered by their roots' ids (stable, implementation-defined, as the
    /// XDM allows). An attribute sorts after its owner element and before
    /// the element's children, mirroring the XDM rule.
    pub fn cmp_doc_order(&self, a: NodeId, b: NodeId) -> XdmResult<Ordering> {
        if a == b {
            return Ok(Ordering::Equal);
        }
        let ka = self.order_key(a)?;
        let kb = self.order_key(b)?;
        Ok(ka.cmp(&kb))
    }

    /// The document-order key of a node: root id, then for each ancestor
    /// step the pair `(kind-rank, sibling-order-key)`. Attributes rank 0 so
    /// they sort right after their owner element and before its children
    /// (the XDM rule); other nodes rank 1 with their gap-based order key.
    /// O(depth) — no sibling scanning (see [`NodeData::okey`]).
    fn order_key(&self, node: NodeId) -> XdmResult<Vec<(u64, u64)>> {
        let mut key = Vec::new();
        self.order_key_into(node, &mut key)?;
        Ok(key)
    }

    /// [`Store::order_key`] into a caller-owned buffer (cleared first),
    /// so keyed sorting can recycle its key allocations.
    fn order_key_into(&self, node: NodeId, key: &mut Vec<(u64, u64)>) -> XdmResult<()> {
        key.clear();
        let mut cur = node;
        while let Some(p) = self.parent(cur)? {
            let d = self.data(cur)?;
            let rank = if matches!(d.kind, NodeKind::Attribute { .. }) {
                0
            } else {
                1
            };
            key.push((rank, d.okey));
            cur = p;
        }
        key.push((u64::from(cur.0), 0));
        key.reverse();
        Ok(())
    }

    /// The pre-optimization document-order comparison: recomputes sibling
    /// positions by scanning each ancestor's child list — O(depth · fanout)
    /// per comparison. Kept as the baseline for the document-order
    /// maintenance ablation (experiment E9); semantics identical to
    /// [`Store::cmp_doc_order`].
    pub fn cmp_doc_order_scan(&self, a: NodeId, b: NodeId) -> XdmResult<Ordering> {
        if a == b {
            return Ok(Ordering::Equal);
        }
        Ok(self.order_key_scan(a)?.cmp(&self.order_key_scan(b)?))
    }

    fn order_key_scan(&self, node: NodeId) -> XdmResult<Vec<(u64, u64)>> {
        let mut rev: Vec<(u64, u64)> = Vec::new();
        let mut cur = node;
        while let Some(p) = self.parent(cur)? {
            if let Some(i) = self.attributes(p)?.iter().position(|&x| x == cur) {
                rev.push((0, i as u64));
            } else if let Some(i) = self.children(p)?.iter().position(|&x| x == cur) {
                rev.push((1, i as u64));
            } else {
                return Err(XdmError::precondition(format!(
                    "node {cur} has parent {p} but is not among its children/attributes"
                )));
            }
            cur = p;
        }
        let mut key = vec![(u64::from(cur.0), 0)];
        rev.reverse();
        key.extend(rev);
        Ok(key)
    }

    /// Sort a node sequence in document order and remove duplicates (the
    /// `ddo` applied to every path-expression step result). Allocates
    /// fresh scratch space; hot loops should hold a [`Scratch`] and call
    /// [`Store::sort_and_dedup_with`].
    pub fn sort_and_dedup(&self, nodes: &mut Vec<NodeId>) -> XdmResult<()> {
        self.sort_and_dedup_with(nodes, &mut Scratch::new())
    }

    /// [`Store::sort_and_dedup`] reusing the caller's scratch buffers:
    /// in steady state (sequence length not exceeding any prior call's)
    /// this performs no allocation at all.
    pub fn sort_and_dedup_with(
        &self,
        nodes: &mut Vec<NodeId>,
        scratch: &mut Scratch,
    ) -> XdmResult<()> {
        match nodes[..] {
            [] => return Ok(()),
            [n] => {
                // Keep the dangling-id error the keyed path would raise.
                self.data(n)?;
                return Ok(());
            }
            _ => {}
        }
        while scratch.keyed.len() < nodes.len() {
            scratch.keyed.push((Vec::new(), NodeId(0)));
        }
        let keyed = &mut scratch.keyed[..nodes.len()];
        for (slot, &n) in keyed.iter_mut().zip(nodes.iter()) {
            self.order_key_into(n, &mut slot.0)?;
            slot.1 = n;
        }
        // Unstable sort: a node's order key is unique, and duplicates of
        // the same node are bitwise-equal pairs, so instability is
        // unobservable — and unlike the stable sort it allocates no merge
        // buffer, which the steady-state allocation pin relies on.
        keyed.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        nodes.clear();
        for (_, n) in keyed.iter() {
            // Duplicates are adjacent after the sort (a node's key is
            // unique), so dedup is a last-pushed check.
            if nodes.last() != Some(n) {
                nodes.push(*n);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Reachability & garbage (paper §4.1: "garbage collection of persistent
    // but unreachable nodes, resulting from the detach semantics")
    // ------------------------------------------------------------------

    /// Statistics on reachable vs garbage nodes with respect to `roots`.
    pub fn stats(&self, roots: &[NodeId]) -> XdmResult<StoreStats> {
        let reachable = self.reachable_set(roots)?;
        let alive = self.len();
        Ok(StoreStats {
            alive,
            reachable: reachable.len(),
            garbage: alive - reachable.len(),
        })
    }

    fn reachable_set(&self, roots: &[NodeId]) -> XdmResult<HashSet<NodeId>> {
        let mut seen = HashSet::new();
        let mut stack: Vec<NodeId> = Vec::new();
        for &r in roots {
            // Reachability is from the root of each referenced tree: holding
            // any node keeps its whole tree alive (parent links are live).
            stack.push(self.root(r)?);
        }
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            for &c in self.children(n)? {
                stack.push(c);
            }
            for &a in self.attributes(n)? {
                stack.push(a);
            }
        }
        Ok(seen)
    }

    /// Reclaim every alive node not reachable from `roots`. Returns the
    /// number of reclaimed slots. After collection, dereferencing a
    /// reclaimed id yields a dangling-id error; callers must ensure no such
    /// ids are still held (this is the explicit-GC contract the paper's
    /// "beyond the scope" remark leaves open, which we make concrete).
    pub fn collect_garbage(&mut self, roots: &[NodeId]) -> XdmResult<usize> {
        let reachable = self.reachable_set(roots)?;
        let journaling = self.journaling();
        let logging = self.logging();
        let mut collected = Vec::new();
        let mut reclaimed = 0;
        for i in 0..self.nodes.len() {
            let id = NodeId(i as u32);
            if self.nodes[i].alive && !reachable.contains(&id) {
                let okey = self.nodes[i].okey;
                let dead = NodeData {
                    parent: None,
                    kind: NodeKind::Text {
                        content: String::new(),
                    },
                    alive: false,
                    okey,
                };
                let data = std::mem::replace(&mut self.nodes[i], dead);
                self.index.note_death(&data.kind, id);
                if journaling {
                    self.undo.push(UndoEntry::Collected {
                        id,
                        data: Box::new(data),
                    });
                }
                if logging {
                    collected.push(id);
                }
                self.free.push(id);
                reclaimed += 1;
            }
        }
        if !collected.is_empty() {
            if let Some(c) = &mut self.capture {
                // As in reclaim_unreachable: collecting base-snapshot
                // nodes is a whole-store effect for conflict purposes.
                if collected.iter().any(|&id| !c.is_fresh(id)) {
                    c.set_global();
                }
            }
            self.wal_record(RedoOp::Collect { ids: collected });
        }
        Ok(reclaimed)
    }

    // ------------------------------------------------------------------
    // Durability (ISSUE 6; docs/DURABILITY.md). The redo log records the
    // forward image of every committed mutation; replay reconstructs the
    // store — node ids, order keys and free list included — by re-running
    // the same mutators over the same history.
    // ------------------------------------------------------------------

    /// Open (or create) a durable store rooted at `dir`: load the
    /// checkpoint snapshot if one exists (CRC- and fingerprint-verified),
    /// replay the redo log's committed batches, drop any corrupt tail
    /// with a warning, and re-attach the log for appending. See
    /// docs/DURABILITY.md for the recovery algorithm.
    pub fn open_durable(
        dir: impl AsRef<Path>,
        sync: SyncMode,
    ) -> XdmResult<(Store, RecoveryReport)> {
        wal::recover(dir.as_ref(), sync)
    }

    /// Attach a fresh durable log at `dir` to *this* store, persisting
    /// its current contents as the initial checkpoint (the REPL's
    /// `:save`). Any previous store files in `dir` are replaced.
    /// Precondition: no undo frame is open.
    pub fn save_durable(&mut self, dir: impl AsRef<Path>, sync: SyncMode) -> XdmResult<()> {
        if !self.frames.is_empty() {
            return Err(XdmError::precondition(
                "save_durable inside an open undo frame",
            ));
        }
        let w = Wal::open(dir.as_ref(), sync, 0, Some(0))?;
        self.wal = Some(Box::new(w));
        self.checkpoint()?;
        Ok(())
    }

    pub(crate) fn attach_wal(&mut self, wal: Box<Wal>) {
        self.wal = Some(wal);
    }

    /// Detach the durable log, if any: the store becomes purely
    /// in-memory again and the files in the store directory keep their
    /// last committed state.
    pub fn detach_wal(&mut self) {
        self.wal = None;
    }

    /// Is a durable log attached?
    pub fn has_wal(&self) -> bool {
        self.wal.is_some()
    }

    /// The attached store directory, if any.
    pub fn store_dir(&self) -> Option<&Path> {
        self.wal.as_deref().map(Wal::dir)
    }

    /// Set the fsync policy of the attached log (no-op without one).
    pub fn set_durability(&mut self, sync: SyncMode) {
        if let Some(w) = &mut self.wal {
            w.set_sync(sync);
        }
    }

    /// The attached log's fsync policy, if any.
    pub fn durability(&self) -> Option<SyncMode> {
        self.wal.as_deref().map(Wal::sync_mode)
    }

    /// Make every redo op recorded since the last commit durable: flush
    /// them with a commit marker and fsync per the sync policy. Returns
    /// `Ok(None)` when there is nothing to commit, no log is attached,
    /// or an undo frame is still open (an open frame means the ops are
    /// not yet commitment — the paper's §2.3 rule).
    /// Stamp the next WAL commit with an interleaved-committer info
    /// record `(session, base_epoch)` (no-op without a log).
    pub fn wal_note_committer(&mut self, session: u64, base_epoch: u64) {
        if let Some(w) = &mut self.wal {
            w.note_committer(session, base_epoch);
        }
    }

    pub fn wal_commit(&mut self) -> XdmResult<Option<CommitReceipt>> {
        if !self.frames.is_empty() {
            return Ok(None);
        }
        match &mut self.wal {
            Some(w) => w.commit_pending(),
            None => Ok(None),
        }
    }

    /// Is an automatic checkpoint due (commit count since the last one
    /// reached `XQB_CHECKPOINT_EVERY`)?
    pub fn checkpoint_due(&self) -> bool {
        self.wal.as_deref().is_some_and(Wal::checkpoint_due)
    }

    /// Write a compacted checkpoint: commit anything pending, snapshot
    /// the full store (with its fingerprint and the current LSN) to
    /// `checkpoint.tmp`, fsync, rename over `checkpoint.bin`, then
    /// truncate the log — recovery time becomes bounded by data size,
    /// not history length. Returns the snapshot size in bytes, or `None`
    /// when no log is attached or a frame is open.
    pub fn checkpoint(&mut self) -> XdmResult<Option<u64>> {
        if self.wal.is_none() || !self.frames.is_empty() {
            return Ok(None);
        }
        self.wal_commit()?;
        let fp = self.fingerprint();
        let lsn = self.wal.as_deref().map(Wal::lsn).unwrap_or(0);
        let snapshot = self.snapshot_bytes(lsn, fp);
        self.wal
            .as_mut()
            .expect("checked above")
            .install_checkpoint(&snapshot)?;
        Ok(Some(snapshot.len() as u64))
    }

    /// A deterministic 64-bit fingerprint of the observable store state:
    /// every alive slot's id, kind payload, parent link, child order and
    /// attribute order, plus the free list (which fixes future node-id
    /// allocation). Sibling order *keys* are excluded — they are an
    /// implementation detail whose renumbering is invisible; the child
    /// lists already carry the order. FNV-1a, stable across processes
    /// and toolchains — the canonical store hash shared by recovery
    /// verification, the `xqb:fingerprint()` builtin, and the crash
    /// harness.
    pub fn fingerprint(&self) -> u64 {
        // Names hash lexically (resolved through the interner): the
        // fingerprint predates interning and must stay byte-identical.
        fn qname(h: &mut Fnv64, syms: &Symbols, q: QNameId) {
            let (prefix, local) = syms.qname_parts(q);
            match prefix {
                Some(p) => {
                    h.u8(1);
                    h.str(p);
                }
                None => h.u8(0),
            }
            h.str(local);
        }
        fn ids(h: &mut Fnv64, list: &[NodeId]) {
            h.u32(list.len() as u32);
            for n in list {
                h.u32(n.index() as u32);
            }
        }
        let mut h = Fnv64::new();
        for (i, d) in self.nodes.iter().enumerate() {
            if !d.alive {
                continue;
            }
            h.u32(i as u32);
            match d.parent {
                Some(p) => {
                    h.u8(1);
                    h.u32(p.index() as u32);
                }
                None => h.u8(0),
            }
            match &d.kind {
                NodeKind::Document { children } => {
                    h.u8(0);
                    ids(&mut h, children);
                }
                NodeKind::Element {
                    name,
                    attributes,
                    children,
                } => {
                    h.u8(1);
                    qname(&mut h, &self.symbols, *name);
                    ids(&mut h, attributes);
                    ids(&mut h, children);
                }
                NodeKind::Attribute { name, value } => {
                    h.u8(2);
                    qname(&mut h, &self.symbols, *name);
                    h.str(value);
                }
                NodeKind::Text { content } => {
                    h.u8(3);
                    h.str(content);
                }
                NodeKind::Comment { content } => {
                    h.u8(4);
                    h.str(content);
                }
                NodeKind::Pi { target, content } => {
                    h.u8(5);
                    h.str(self.symbols.resolve(*target));
                    h.str(content);
                }
            }
        }
        h.u8(0xFF);
        for f in &self.free {
            h.u32(f.index() as u32);
        }
        h.finish()
    }

    /// Alive document nodes with no parent, in slot order — the roots a
    /// host rebinds after recovery (bindings are per-session state and
    /// do not survive a restart).
    pub fn document_roots(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| {
                let d = &self.nodes[i];
                d.alive && d.parent.is_none() && matches!(d.kind, NodeKind::Document { .. })
            })
            .map(|i| NodeId(i as u32))
            .collect()
    }

    /// Apply one replayed redo op through the regular mutators (the
    /// caller wraps each committed batch in an undo frame so a failing
    /// batch rolls back and is treated as a corrupt tail).
    pub(crate) fn apply_redo(&mut self, op: &RedoOp) -> XdmResult<()> {
        match op {
            RedoOp::Alloc { id, kind } => {
                // Same history ⇒ same free-list state ⇒ alloc reproduces
                // the logged id; a mismatch means the log is corrupt.
                let got = self.alloc_birth(kind);
                if got != *id {
                    return Err(XdmError::new(
                        "XQB0060",
                        format!("redo allocation mismatch: log says {id}, store allocated {got}"),
                    ));
                }
                Ok(())
            }
            RedoOp::Insert {
                seq,
                parent,
                anchor,
            } => self.apply_insert(seq, *parent, *anchor),
            RedoOp::AttachAttr { element, attr } => self.attach_attribute(*element, *attr),
            RedoOp::Detach { node } => self.detach(*node),
            RedoOp::Rename { node, name } => self.apply_rename(*node, name.clone()),
            RedoOp::SetText { node, content } => self.set_text(*node, content.clone()),
            RedoOp::SetAttrValue { node, value } => self.set_attribute_value(*node, value.clone()),
            RedoOp::Collect { ids } => self.kill_slots(ids),
        }
    }

    /// Allocate a slot from a logged at-birth image: the log records
    /// births lexically, so the names are interned back into *this*
    /// store's symbol table first. Shared by redo replay and Δ rebase.
    fn alloc_birth(&mut self, kind: &BirthKind) -> NodeId {
        let kind = match kind {
            BirthKind::Document => NodeKind::Document { children: vec![] },
            BirthKind::Element { name } => NodeKind::Element {
                name: self.symbols.intern_qname(name),
                attributes: vec![],
                children: vec![],
            },
            BirthKind::Attribute { name, value } => NodeKind::Attribute {
                name: self.symbols.intern_qname(name),
                value: value.clone(),
            },
            BirthKind::Text { content } => NodeKind::Text {
                content: content.clone(),
            },
            BirthKind::Comment { content } => NodeKind::Comment {
                content: content.clone(),
            },
            BirthKind::Pi { target, content } => NodeKind::Pi {
                target: self.symbols.intern(target),
                content: content.clone(),
            },
        };
        self.alloc(kind)
    }

    /// Replay of a [`RedoOp::Collect`]: retire exactly `ids`, in order,
    /// mirroring what the recording collection did (including the undo
    /// journal entries, so a failing batch still rolls back exactly).
    fn kill_slots(&mut self, ids: &[NodeId]) -> XdmResult<()> {
        let journaling = self.journaling();
        for &id in ids {
            let i = id.index();
            if !self.nodes.get(i).map(|d| d.alive).unwrap_or(false) {
                return Err(XdmError::new(
                    "XQB0060",
                    format!("redo collect of non-alive slot {id}"),
                ));
            }
            let okey = self.nodes[i].okey;
            let dead = NodeData {
                parent: None,
                kind: NodeKind::Text {
                    content: String::new(),
                },
                alive: false,
                okey,
            };
            let data = std::mem::replace(&mut self.nodes[i], dead);
            self.index.note_death(&data.kind, id);
            if journaling {
                self.undo.push(UndoEntry::Collected {
                    id,
                    data: Box::new(data),
                });
            }
            self.free.push(id);
        }
        Ok(())
    }

    // Checkpoint snapshot format: SNAP_MAGIC, CRC32 of the body, then the
    // body — last LSN, fingerprint, every slot (alive flag, parent, order
    // key, full kind payload including child/attribute lists), and the
    // free list. Unlike the redo log this is a *physical* image: order
    // keys are stored exactly.

    pub(crate) fn snapshot_bytes(&self, last_lsn: u64, fingerprint: u64) -> Vec<u8> {
        use wal::{put_qname, put_str, put_u32, put_u64};
        fn put_ids(out: &mut Vec<u8>, list: &[NodeId]) {
            put_u32(out, list.len() as u32);
            for n in list {
                put_u32(out, n.index() as u32);
            }
        }
        let mut body = Vec::new();
        put_u64(&mut body, last_lsn);
        put_u64(&mut body, fingerprint);
        put_u32(&mut body, self.nodes.len() as u32);
        for d in self.nodes.iter() {
            body.push(u8::from(d.alive));
            match d.parent {
                Some(p) => {
                    body.push(1);
                    put_u32(&mut body, p.index() as u32);
                }
                None => body.push(0),
            }
            put_u64(&mut body, d.okey);
            match &d.kind {
                NodeKind::Document { children } => {
                    body.push(0);
                    put_ids(&mut body, children);
                }
                NodeKind::Element {
                    name,
                    attributes,
                    children,
                } => {
                    body.push(1);
                    put_qname(&mut body, &self.symbols.resolve_qname(*name));
                    put_ids(&mut body, attributes);
                    put_ids(&mut body, children);
                }
                NodeKind::Attribute { name, value } => {
                    body.push(2);
                    put_qname(&mut body, &self.symbols.resolve_qname(*name));
                    put_str(&mut body, value);
                }
                NodeKind::Text { content } => {
                    body.push(3);
                    put_str(&mut body, content);
                }
                NodeKind::Comment { content } => {
                    body.push(4);
                    put_str(&mut body, content);
                }
                NodeKind::Pi { target, content } => {
                    body.push(5);
                    put_str(&mut body, self.symbols.resolve(*target));
                    put_str(&mut body, content);
                }
            }
        }
        put_u32(&mut body, self.free.len() as u32);
        for f in &self.free {
            put_u32(&mut body, f.index() as u32);
        }
        let mut out = Vec::with_capacity(body.len() + 12);
        out.extend_from_slice(wal::SNAP_MAGIC);
        put_u32(&mut out, wal::crc32(&body));
        out.extend_from_slice(&body);
        out
    }

    /// Rebuild a store from a checkpoint snapshot, verifying the CRC and
    /// the embedded fingerprint. Returns the store and the snapshot's
    /// last LSN (replay skips log commits at or below it).
    pub(crate) fn from_snapshot(bytes: &[u8]) -> XdmResult<(Store, u64)> {
        let corrupt = |what: &str| XdmError::new("XQB0060", format!("corrupt checkpoint: {what}"));
        let header = wal::SNAP_MAGIC.len() + 4;
        if bytes.len() < header || &bytes[..wal::SNAP_MAGIC.len()] != wal::SNAP_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let crc = u32::from_le_bytes(
            bytes[wal::SNAP_MAGIC.len()..header]
                .try_into()
                .expect("4 bytes"),
        );
        let body = &bytes[header..];
        if wal::crc32(body) != crc {
            return Err(corrupt("checksum mismatch"));
        }
        let mut c = Cursor::new(body);
        let last_lsn = c.u64()?;
        let fingerprint = c.u64()?;
        let n = c.u32()? as usize;
        if n > body.len() {
            return Err(corrupt("implausible slot count"));
        }
        fn read_ids(c: &mut Cursor<'_>) -> XdmResult<Vec<NodeId>> {
            c.nodes()
        }
        let mut symbols = Symbols::new();
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            let alive = c.u8()? != 0;
            let parent = if c.u8()? == 1 { Some(c.node()?) } else { None };
            let okey = c.u64()?;
            let kind = match c.u8()? {
                0 => NodeKind::Document {
                    children: read_ids(&mut c)?,
                },
                1 => NodeKind::Element {
                    name: symbols.intern_qname(&c.qname()?),
                    attributes: read_ids(&mut c)?,
                    children: read_ids(&mut c)?,
                },
                2 => NodeKind::Attribute {
                    name: symbols.intern_qname(&c.qname()?),
                    value: c.str()?,
                },
                3 => NodeKind::Text { content: c.str()? },
                4 => NodeKind::Comment { content: c.str()? },
                5 => NodeKind::Pi {
                    target: symbols.intern(&c.str()?),
                    content: c.str()?,
                },
                _ => return Err(corrupt("unknown node kind")),
            };
            nodes.push(NodeData {
                parent,
                kind,
                alive,
                okey,
            });
        }
        let free = read_ids(&mut c)?;
        if !c.done() {
            return Err(corrupt("trailing bytes"));
        }
        let nodes = Pages::from_vec(nodes);
        // The plane is derived state: a checkpoint never carries it, so
        // recovery rebuilds it from the slots (rebuild-on-replay).
        let index = IndexPlane::rebuild(&nodes, true, 0);
        let store = Store {
            nodes,
            free,
            undo: Vec::new(),
            frames: Vec::new(),
            symbols,
            wal: None,
            capture: None,
            index,
        };
        if store.fingerprint() != fingerprint {
            return Err(corrupt("fingerprint mismatch"));
        }
        Ok((store, last_lsn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(s: &str) -> QName {
        QName::local(s)
    }

    /// Build `<a><b>hi</b><c x="1"/></a>` and return (store, a, b, c, text).
    fn sample() -> (Store, NodeId, NodeId, NodeId, NodeId) {
        let mut s = Store::new();
        let a = s.new_element(q("a"));
        let b = s.new_element(q("b"));
        let t = s.new_text("hi");
        let c = s.new_element(q("c"));
        let x = s.new_attribute(q("x"), "1");
        s.append_child(b, t).unwrap();
        s.append_child(a, b).unwrap();
        s.append_child(a, c).unwrap();
        s.attach_attribute(c, x).unwrap();
        (s, a, b, c, t)
    }

    #[test]
    fn construction_and_accessors() {
        let (s, a, b, c, t) = sample();
        assert_eq!(s.children(a).unwrap(), &[b, c]);
        assert_eq!(s.parent(b).unwrap(), Some(a));
        assert_eq!(s.parent(a).unwrap(), None);
        assert_eq!(s.name(a).unwrap().unwrap().local, "a");
        assert_eq!(s.string_value(a).unwrap(), "hi");
        assert_eq!(s.string_value(t).unwrap(), "hi");
        let attr = s.attribute_by_name(c, "x").unwrap().unwrap();
        assert_eq!(s.string_value(attr).unwrap(), "1");
        assert_eq!(s.attribute_by_name(c, "nope").unwrap(), None);
    }

    #[test]
    fn insert_anchors() {
        let mut s = Store::new();
        let p = s.new_element(q("p"));
        let c1 = s.new_element(q("c1"));
        let c2 = s.new_element(q("c2"));
        let c3 = s.new_element(q("c3"));
        s.apply_insert(&[c2], p, InsertAnchor::Last).unwrap();
        s.apply_insert(&[c1], p, InsertAnchor::First).unwrap();
        s.apply_insert(&[c3], p, InsertAnchor::After(c2)).unwrap();
        assert_eq!(s.children(p).unwrap(), &[c1, c2, c3]);
    }

    #[test]
    fn insert_sequence_preserves_order() {
        let mut s = Store::new();
        let p = s.new_element(q("p"));
        let xs: Vec<NodeId> = (0..5).map(|i| s.new_element(q(&format!("x{i}")))).collect();
        s.apply_insert(&xs, p, InsertAnchor::Last).unwrap();
        assert_eq!(s.children(p).unwrap(), &xs[..]);
    }

    #[test]
    fn insert_preconditions() {
        let (mut s, a, b, _c, _t) = sample();
        let d = s.new_element(q("d"));
        // b already has a parent.
        assert_eq!(
            s.apply_insert(&[b], d, InsertAnchor::Last)
                .unwrap_err()
                .code,
            "XQB0002"
        );
        // anchor not a child of parent
        assert!(s.apply_insert(&[d], a, InsertAnchor::After(d)).is_err());
        // inserting into a text node
        let t2 = s.new_text("t");
        assert!(s.apply_insert(&[d], t2, InsertAnchor::Last).is_err());
        // attribute as child
        let at = s.new_attribute(q("y"), "2");
        assert!(s.apply_insert(&[at], a, InsertAnchor::Last).is_err());
    }

    #[test]
    fn insert_rejects_cycles() {
        let (mut s, a, b, _c, _t) = sample();
        // detach a's subtree root "a" has no parent; inserting a into b (its
        // own descendant) must fail.
        assert!(s.apply_insert(&[a], b, InsertAnchor::Last).is_err());
        // And self-insertion.
        let e = s.new_element(q("e"));
        assert!(s.apply_insert(&[e], e, InsertAnchor::Last).is_err());
    }

    #[test]
    fn detach_semantics() {
        let (mut s, a, b, c, t) = sample();
        s.detach(b).unwrap();
        assert_eq!(s.children(a).unwrap(), &[c]);
        assert_eq!(s.parent(b).unwrap(), None);
        // Paper §3.1: a detached node can still be queried...
        assert_eq!(s.string_value(b).unwrap(), "hi");
        assert_eq!(s.parent(t).unwrap(), Some(b));
        // ...and inserted somewhere else.
        s.apply_insert(&[b], c, InsertAnchor::Last).unwrap();
        assert_eq!(s.parent(b).unwrap(), Some(c));
        // Detaching a detached node is a no-op.
        let d = s.new_element(q("d"));
        s.detach(d).unwrap();
    }

    #[test]
    fn detach_attribute() {
        let (mut s, _a, _b, c, _t) = sample();
        let x = s.attribute_by_name(c, "x").unwrap().unwrap();
        s.detach(x).unwrap();
        assert_eq!(s.attributes(c).unwrap(), &[]);
        assert_eq!(s.parent(x).unwrap(), None);
        assert_eq!(s.string_value(x).unwrap(), "1");
    }

    #[test]
    fn rename() {
        let (mut s, a, _b, c, t) = sample();
        s.apply_rename(a, q("z")).unwrap();
        assert_eq!(s.name(a).unwrap().unwrap().local, "z");
        let x = s.attribute_by_name(c, "x").unwrap().unwrap();
        s.apply_rename(x, q("y")).unwrap();
        assert_eq!(s.attribute_by_name(c, "y").unwrap(), Some(x));
        assert!(s.apply_rename(t, q("nope")).is_err());
    }

    #[test]
    fn deep_copy_is_detached_and_equal_shaped() {
        let (mut s, a, _b, _c, _t) = sample();
        let copy = s.deep_copy(a).unwrap();
        assert_ne!(copy, a);
        assert_eq!(s.parent(copy).unwrap(), None);
        assert_eq!(s.string_value(copy).unwrap(), "hi");
        assert_eq!(s.children(copy).unwrap().len(), 2);
        // Mutating the copy leaves the original alone.
        let nc = s.children(copy).unwrap()[0];
        s.detach(nc).unwrap();
        assert_eq!(s.children(a).unwrap().len(), 2);
    }

    #[test]
    fn document_order_within_tree() {
        let (s, a, b, c, t) = sample();
        assert_eq!(s.cmp_doc_order(a, b).unwrap(), Ordering::Less);
        assert_eq!(s.cmp_doc_order(b, t).unwrap(), Ordering::Less);
        assert_eq!(s.cmp_doc_order(t, c).unwrap(), Ordering::Less);
        assert_eq!(s.cmp_doc_order(c, c).unwrap(), Ordering::Equal);
        let x = s.attribute_by_name(c, "x").unwrap().unwrap();
        // Attribute after its element.
        assert_eq!(s.cmp_doc_order(c, x).unwrap(), Ordering::Less);
    }

    #[test]
    fn document_order_across_trees_is_stable() {
        let mut s = Store::new();
        let r1 = s.new_element(q("r1"));
        let r2 = s.new_element(q("r2"));
        let o = s.cmp_doc_order(r1, r2).unwrap();
        assert_eq!(o, s.cmp_doc_order(r1, r2).unwrap());
        assert_eq!(o.reverse(), s.cmp_doc_order(r2, r1).unwrap());
    }

    #[test]
    fn order_tracks_mutation() {
        let mut s = Store::new();
        let p = s.new_element(q("p"));
        let c1 = s.new_element(q("c1"));
        let c2 = s.new_element(q("c2"));
        s.append_child(p, c1).unwrap();
        s.append_child(p, c2).unwrap();
        assert_eq!(s.cmp_doc_order(c1, c2).unwrap(), Ordering::Less);
        // Move c1 after c2.
        s.detach(c1).unwrap();
        s.apply_insert(&[c1], p, InsertAnchor::After(c2)).unwrap();
        assert_eq!(s.cmp_doc_order(c1, c2).unwrap(), Ordering::Greater);
    }

    #[test]
    fn sort_and_dedup() {
        let (s, a, b, c, t) = sample();
        let mut v = vec![c, t, a, b, c, a];
        s.sort_and_dedup(&mut v).unwrap();
        assert_eq!(v, vec![a, b, t, c]);
    }

    #[test]
    fn descendants_preorder() {
        let (s, a, b, c, t) = sample();
        assert_eq!(s.descendants(a).unwrap(), vec![b, t, c]);
        assert_eq!(s.descendants(t).unwrap(), Vec::<NodeId>::new());
    }

    #[test]
    fn garbage_accounting_and_collection() {
        let (mut s, a, b, _c, _t) = sample();
        s.detach(b).unwrap();
        // Root set = {a}: b's subtree (b + text) is garbage.
        let st = s.stats(&[a]).unwrap();
        assert_eq!(st.alive, 5);
        assert_eq!(st.reachable, 3);
        assert_eq!(st.garbage, 2);
        // Holding b keeps its subtree alive.
        let st2 = s.stats(&[a, b]).unwrap();
        assert_eq!(st2.garbage, 0);
        let reclaimed = s.collect_garbage(&[a]).unwrap();
        assert_eq!(reclaimed, 2);
        assert!(!s.is_alive(b));
        assert!(s.kind(b).is_err());
        assert_eq!(s.len(), 3);
        // Reclaimed slots are reused rather than growing the arena.
        let n = s.new_element(q("reused"));
        assert!(n.index() < 5, "allocation should reuse a freed slot");
        assert!(s.is_alive(n));
    }

    #[test]
    fn reachability_follows_parents() {
        // Holding an inner node keeps the whole tree (via root()) alive.
        let (mut s, a, b, _c, _t) = sample();
        let st = s.stats(&[b]).unwrap();
        assert_eq!(st.reachable, 5);
        let reclaimed = s.collect_garbage(&[b]).unwrap();
        assert_eq!(reclaimed, 0);
        assert!(s.is_alive(a));
    }

    #[test]
    fn dangling_ids_error() {
        let mut s = Store::new();
        let a = s.new_element(q("a"));
        let b = s.new_element(q("b"));
        s.collect_garbage(&[a]).unwrap();
        assert_eq!(s.kind(b).unwrap_err().code, "XQB0001");
        assert!(s.parent(b).is_err());
        assert!(s.detach(b).is_err());
    }

    #[test]
    fn set_text_and_attribute_value() {
        let (mut s, _a, _b, c, t) = sample();
        s.set_text(t, "bye").unwrap();
        assert_eq!(s.string_value(t).unwrap(), "bye");
        let x = s.attribute_by_name(c, "x").unwrap().unwrap();
        s.set_attribute_value(x, "2").unwrap();
        assert_eq!(s.string_value(x).unwrap(), "2");
        assert!(s.set_text(c, "no").is_err());
        assert!(s.set_attribute_value(t, "no").is_err());
    }

    #[test]
    fn gap_keys_survive_pathological_insertion_order() {
        // Repeatedly insert at the front and in the middle: forces gap
        // splitting and eventually renumbering; order must stay correct.
        let mut s = Store::new();
        let p = s.new_element(q("p"));
        let mut expected: Vec<NodeId> = Vec::new();
        for i in 0..200 {
            let c = s.new_element(q(&format!("c{i}")));
            let at = i % (expected.len() + 1);
            let anchor = if at == 0 {
                InsertAnchor::First
            } else {
                InsertAnchor::After(expected[at - 1])
            };
            s.apply_insert(&[c], p, anchor).unwrap();
            expected.insert(at, c);
        }
        assert_eq!(s.children(p).unwrap(), &expected[..]);
        // Gap keys and the scan baseline must agree on every pair.
        for w in expected.windows(2) {
            assert_eq!(s.cmp_doc_order(w[0], w[1]).unwrap(), Ordering::Less);
            assert_eq!(s.cmp_doc_order_scan(w[0], w[1]).unwrap(), Ordering::Less);
        }
    }

    #[test]
    fn gap_keys_force_renumbering() {
        // Keep inserting right after the first child: halves the gap each
        // time, so ~60 insertions must trigger at least one renumber.
        let mut s = Store::new();
        let p = s.new_element(q("p"));
        let first = s.new_element(q("first"));
        s.append_child(p, first).unwrap();
        for i in 0..100 {
            let c = s.new_element(q(&format!("c{i}")));
            s.apply_insert(&[c], p, InsertAnchor::After(first)).unwrap();
        }
        let children = s.children(p).unwrap().to_vec();
        assert_eq!(children.len(), 101);
        assert_eq!(children[0], first);
        for w in children.windows(2) {
            assert_eq!(s.cmp_doc_order(w[0], w[1]).unwrap(), Ordering::Less);
        }
        // Most-recent insertion is closest to `first`.
        assert_eq!(s.name(children[1]).unwrap().unwrap().local, "c99");
    }

    #[test]
    fn scan_and_gap_order_agree_after_moves() {
        let (mut s, a, b, c, t) = sample();
        s.detach(b).unwrap();
        s.apply_insert(&[b], a, InsertAnchor::After(c)).unwrap();
        for &x in &[a, b, c, t] {
            for &y in &[a, b, c, t] {
                assert_eq!(
                    s.cmp_doc_order(x, y).unwrap(),
                    s.cmp_doc_order_scan(x, y).unwrap(),
                    "disagreement on ({x}, {y})"
                );
            }
        }
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let mut s = Store::new();
        let e = s.new_element(q("e"));
        let a1 = s.new_attribute(q("k"), "1");
        let a2 = s.new_attribute(q("k"), "2");
        s.attach_attribute(e, a1).unwrap();
        assert!(s.attach_attribute(e, a2).is_err());
    }

    /// Observable snapshot of a whole store: every alive node's identity,
    /// kind payload, parent, children, attributes, plus the relative
    /// document order of all alive pairs. Order keys are compared only
    /// relatively (renumbering is an invisible implementation detail).
    fn observable(s: &Store) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let alive: Vec<NodeId> = (0..s.nodes.len() as u32)
            .map(NodeId)
            .filter(|&n| s.is_alive(n))
            .collect();
        for &n in &alive {
            writeln!(
                out,
                "{n}: kind={:?} parent={:?} children={:?} attrs={:?}",
                s.kind(n).unwrap(),
                s.parent(n).unwrap(),
                s.children(n).unwrap(),
                s.attributes(n).unwrap()
            )
            .unwrap();
        }
        for &x in &alive {
            for &y in &alive {
                if s.root(x).unwrap() == s.root(y).unwrap() {
                    writeln!(out, "cmp({x},{y})={:?}", s.cmp_doc_order(x, y).unwrap()).unwrap();
                }
            }
        }
        writeln!(out, "free={:?}", s.free).unwrap();
        out
    }

    #[test]
    fn rollback_restores_every_mutation_kind() {
        let (mut s, a, b, c, t) = sample();
        let before = observable(&s);
        s.begin_frame();
        // One of everything: alloc, insert, detach, rename, text, attr
        // value, attach, deep copy, move.
        let fresh = s.new_element(q("fresh"));
        s.apply_insert(&[fresh], a, InsertAnchor::First).unwrap();
        s.detach(b).unwrap();
        s.apply_rename(c, q("renamed")).unwrap();
        s.set_text(t, "changed").unwrap();
        let x = s.attribute_by_name(c, "x").unwrap();
        // c was renamed but the attribute is found by its own name.
        let x = x.or(s.attribute_by_name(c, "x").unwrap()).unwrap();
        s.set_attribute_value(x, "99").unwrap();
        let extra = s.new_attribute(q("extra"), "v");
        s.attach_attribute(c, extra).unwrap();
        let copy = s.deep_copy(c).unwrap();
        s.append_child(a, copy).unwrap();
        s.rollback_frame();
        assert_eq!(observable(&s), before);
        assert_eq!(s.frame_depth(), 0);
    }

    #[test]
    fn rollback_restores_collected_nodes() {
        let (mut s, a, b, _c, _t) = sample();
        s.detach(b).unwrap();
        let before = observable(&s);
        s.begin_frame();
        assert_eq!(s.collect_garbage(&[a]).unwrap(), 2);
        assert!(!s.is_alive(b));
        s.rollback_frame();
        assert!(s.is_alive(b));
        assert_eq!(observable(&s), before);
        assert_eq!(s.string_value(b).unwrap(), "hi");
    }

    #[test]
    fn rollback_survives_renumbering() {
        // Force an okey renumber inside the frame: the rollback must
        // restore a consistent relative order for the survivors.
        let mut s = Store::new();
        let p = s.new_element(q("p"));
        let first = s.new_element(q("first"));
        let second = s.new_element(q("second"));
        s.append_child(p, first).unwrap();
        s.append_child(p, second).unwrap();
        let before = observable(&s);
        s.begin_frame();
        for i in 0..100 {
            let c = s.new_element(q(&format!("c{i}")));
            s.apply_insert(&[c], p, InsertAnchor::After(first)).unwrap();
        }
        s.rollback_frame();
        assert_eq!(observable(&s), before);
    }

    #[test]
    fn nested_frames_inner_commit_outer_rollback() {
        let (mut s, a, _b, _c, _t) = sample();
        let before = observable(&s);
        s.begin_frame();
        let n1 = s.new_element(q("n1"));
        s.append_child(a, n1).unwrap();
        s.begin_frame();
        let n2 = s.new_element(q("n2"));
        s.append_child(a, n2).unwrap();
        s.commit_frame(); // inner effects survive the inner frame...
        assert!(s.is_alive(n2));
        s.rollback_frame(); // ...but the outer rollback undoes everything.
        assert_eq!(observable(&s), before);
    }

    #[test]
    fn nested_frames_inner_rollback_outer_commit() {
        let (mut s, a, _b, _c, _t) = sample();
        s.begin_frame();
        let n1 = s.new_element(q("n1"));
        s.append_child(a, n1).unwrap();
        s.begin_frame();
        let n2 = s.new_element(q("n2"));
        s.append_child(a, n2).unwrap();
        s.rollback_frame();
        assert!(!s.is_alive(n2));
        s.commit_frame();
        assert!(s.is_alive(n1));
        assert_eq!(s.parent(n1).unwrap(), Some(a));
    }

    #[test]
    fn commit_clears_journal_and_keeps_state() {
        let (mut s, a, _b, _c, _t) = sample();
        s.begin_frame();
        let n = s.new_element(q("n"));
        s.append_child(a, n).unwrap();
        s.commit_frame();
        assert_eq!(s.frame_depth(), 0);
        assert!(
            s.undo.is_empty(),
            "outermost commit should free the journal"
        );
        assert_eq!(s.parent(n).unwrap(), Some(a));
    }

    #[test]
    fn frame_allocations_lists_fresh_nodes() {
        let mut s = Store::new();
        s.begin_frame();
        let a = s.new_element(q("a"));
        let b = s.new_text("t");
        let mut allocs = s.frame_allocations();
        allocs.sort();
        assert_eq!(allocs, vec![a, b]);
        s.commit_frame();
        assert!(s.frame_allocations().is_empty());
    }

    #[test]
    fn rollback_restores_free_list_for_reused_slots() {
        let (mut s, a, b, _c, _t) = sample();
        s.detach(b).unwrap();
        s.collect_garbage(&[a]).unwrap(); // frees b's subtree (2 slots)
        let free_before = s.free.clone();
        s.begin_frame();
        let n = s.new_element(q("reuses-slot"));
        assert!(n.index() < 5, "should reuse a freed slot");
        s.rollback_frame();
        assert_eq!(s.free, free_before);
        assert!(!s.is_alive(n));
    }

    #[test]
    fn string_value_survives_million_deep_chain() {
        // Hostile input: a 1M-element single chain. The old recursive
        // collect_text overflowed the thread stack (an abort, not an
        // error); the iterative rewrite must walk it and find the one
        // text leaf at the bottom.
        let mut s = Store::new();
        let root = s.new_element(q("d"));
        let mut cur = root;
        for _ in 0..1_000_000 {
            let next = s.new_element(q("d"));
            s.append_child(cur, next).unwrap();
            cur = next;
        }
        let leaf = s.new_text("bottom");
        s.append_child(cur, leaf).unwrap();
        assert_eq!(s.string_value(root).unwrap(), "bottom");
    }

    #[test]
    fn reclaim_unreachable_is_targeted() {
        let (mut s, a, b, _c, _t) = sample();
        s.detach(b).unwrap(); // pre-existing garbage: b + its text
        let orphan = s.new_element(q("orphan"));
        let kept = s.new_element(q("kept"));
        s.append_child(a, kept).unwrap();
        let n = s.reclaim_unreachable(&[orphan, kept], &[a]).unwrap();
        assert_eq!(n, 1);
        assert!(!s.is_alive(orphan));
        assert!(s.is_alive(kept));
        // Pre-existing garbage outside the candidate set is untouched.
        assert!(s.is_alive(b));
    }
}
