//! The mutable node store (paper §3.2).
//!
//! The store maps node ids to kind, parent, name and content, and exposes
//! exactly the three groups of operations the paper's semantics needs:
//!
//! 1. **XDM accessors and constructors** — `parent`, `children`,
//!    `attributes`, `node_name`, `string_value`, plus `new_element` & co.;
//! 2. **Update-request applications** — `apply_insert`, `detach` (the
//!    paper's delete-as-detach), `apply_rename`, each a *partial function*
//!    whose preconditions mirror §3.2 (inserted nodes must be parentless,
//!    the insertion anchor must be a child of the parent, no cycles);
//! 3. **Housekeeping the paper flags as the hard parts** (§4.1): document
//!    order over a mutable forest, and garbage accounting for nodes that
//!    are detached and unreachable yet persistent.

use crate::error::{XdmError, XdmResult};
use crate::node::{NodeData, NodeId, NodeKind};
use crate::qname::QName;
use std::cmp::Ordering;
use std::collections::HashSet;

/// Where an insertion lands among a parent's children (paper §3.1's
/// `as first into` / `as last into` / `into` / `after` / `before` forms are
/// all resolved by the evaluator to one of these anchors plus a parent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsertAnchor {
    /// Before the first existing child.
    First,
    /// After the last existing child (also the meaning of plain `into`).
    Last,
    /// Immediately after the given sibling (which must be a child of the
    /// insertion parent — a paper precondition).
    After(NodeId),
}

/// Aggregate statistics about a store, used by the detach/GC experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Total slots ever allocated and still alive.
    pub alive: usize,
    /// Alive nodes reachable from the given roots.
    pub reachable: usize,
    /// Alive nodes *not* reachable from the given roots (detached garbage).
    pub garbage: usize,
}

/// The mutable XML store.
#[derive(Debug, Default, Clone)]
pub struct Store {
    nodes: Vec<NodeData>,
    /// Slots retired by `collect_garbage`, available for reuse.
    free: Vec<NodeId>,
}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Number of alive nodes.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// True when no alive nodes exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn alloc(&mut self, kind: NodeKind) -> NodeId {
        let data = NodeData { parent: None, kind, alive: true, okey: 0 };
        match self.free.pop() {
            Some(id) => {
                self.nodes[id.index()] = data;
                id
            }
            None => {
                let id = NodeId(self.nodes.len() as u32);
                self.nodes.push(data);
                id
            }
        }
    }

    fn data(&self, id: NodeId) -> XdmResult<&NodeData> {
        match self.nodes.get(id.index()) {
            Some(d) if d.alive => Ok(d),
            _ => Err(XdmError::dangling(&id.to_string())),
        }
    }

    fn data_mut(&mut self, id: NodeId) -> XdmResult<&mut NodeData> {
        match self.nodes.get_mut(id.index()) {
            Some(d) if d.alive => Ok(d),
            _ => Err(XdmError::dangling(&id.to_string())),
        }
    }

    /// Is `id` an alive node in this store?
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()).map(|d| d.alive).unwrap_or(false)
    }

    // ------------------------------------------------------------------
    // Constructors (XDM constructors, paper §3.2)
    // ------------------------------------------------------------------

    /// Create a new, empty document node.
    pub fn new_document(&mut self) -> NodeId {
        self.alloc(NodeKind::Document { children: Vec::new() })
    }

    /// Create a new, parentless element node with no content.
    pub fn new_element(&mut self, name: QName) -> NodeId {
        self.alloc(NodeKind::Element { name, attributes: Vec::new(), children: Vec::new() })
    }

    /// Create a new, parentless attribute node.
    pub fn new_attribute(&mut self, name: QName, value: impl Into<String>) -> NodeId {
        self.alloc(NodeKind::Attribute { name, value: value.into() })
    }

    /// Create a new, parentless text node.
    pub fn new_text(&mut self, content: impl Into<String>) -> NodeId {
        self.alloc(NodeKind::Text { content: content.into() })
    }

    /// Create a new, parentless comment node.
    pub fn new_comment(&mut self, content: impl Into<String>) -> NodeId {
        self.alloc(NodeKind::Comment { content: content.into() })
    }

    /// Create a new, parentless processing-instruction node.
    pub fn new_pi(&mut self, target: impl Into<String>, content: impl Into<String>) -> NodeId {
        self.alloc(NodeKind::Pi { target: target.into(), content: content.into() })
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The node's kind and payload.
    pub fn kind(&self, id: NodeId) -> XdmResult<&NodeKind> {
        Ok(&self.data(id)?.kind)
    }

    /// The node's parent, if attached.
    pub fn parent(&self, id: NodeId) -> XdmResult<Option<NodeId>> {
        Ok(self.data(id)?.parent)
    }

    /// The node's children (empty for non-containers).
    pub fn children(&self, id: NodeId) -> XdmResult<&[NodeId]> {
        Ok(match &self.data(id)?.kind {
            NodeKind::Document { children } | NodeKind::Element { children, .. } => children,
            _ => &[],
        })
    }

    /// The node's attribute nodes (empty for non-elements).
    pub fn attributes(&self, id: NodeId) -> XdmResult<&[NodeId]> {
        Ok(match &self.data(id)?.kind {
            NodeKind::Element { attributes, .. } => attributes,
            _ => &[],
        })
    }

    /// The node's name (elements and attributes; `None` otherwise).
    pub fn name(&self, id: NodeId) -> XdmResult<Option<&QName>> {
        Ok(match &self.data(id)?.kind {
            NodeKind::Element { name, .. } | NodeKind::Attribute { name, .. } => Some(name),
            _ => None,
        })
    }

    /// Look up an attribute of `element` by name; returns the attribute node.
    pub fn attribute_by_name(&self, element: NodeId, name: &str) -> XdmResult<Option<NodeId>> {
        for &a in self.attributes(element)? {
            if let NodeKind::Attribute { name: n, .. } = self.kind(a)? {
                if n.local == name && n.prefix.is_none() {
                    return Ok(Some(a));
                }
            }
        }
        Ok(None)
    }

    /// The XDM string value: concatenated descendant text for containers,
    /// content for the leaf kinds.
    pub fn string_value(&self, id: NodeId) -> XdmResult<String> {
        match &self.data(id)?.kind {
            NodeKind::Attribute { value, .. } => Ok(value.clone()),
            NodeKind::Text { content } | NodeKind::Comment { content } => Ok(content.clone()),
            NodeKind::Pi { content, .. } => Ok(content.clone()),
            NodeKind::Document { .. } | NodeKind::Element { .. } => {
                let mut out = String::new();
                self.collect_text(id, &mut out)?;
                Ok(out)
            }
        }
    }

    fn collect_text(&self, id: NodeId, out: &mut String) -> XdmResult<()> {
        match &self.data(id)?.kind {
            NodeKind::Text { content } => out.push_str(content),
            NodeKind::Document { children } | NodeKind::Element { children, .. } => {
                for &c in children {
                    self.collect_text(c, out)?;
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// The root of the tree containing `id` (follows parent links; a
    /// detached node is its own root).
    pub fn root(&self, id: NodeId) -> XdmResult<NodeId> {
        let mut cur = id;
        while let Some(p) = self.parent(cur)? {
            cur = p;
        }
        Ok(cur)
    }

    /// All descendants of `id` in document (preorder) order, not including
    /// `id` itself. Attributes are *not* descendants (XDM).
    pub fn descendants(&self, id: NodeId) -> XdmResult<Vec<NodeId>> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.children(id)?.iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.children(n)?.iter().rev() {
                stack.push(c);
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Tree building (used during construction/parsing, before any node id
    // escapes into query values; same preconditions as insertion)
    // ------------------------------------------------------------------

    /// Append `child` as the last child of `parent`.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) -> XdmResult<()> {
        self.apply_insert(&[child], parent, InsertAnchor::Last)
    }

    /// Attach `attr` (an attribute node) to `element`.
    ///
    /// Precondition: `attr` is a parentless attribute node, `element` is an
    /// element, and no attribute with the same name is present.
    pub fn attach_attribute(&mut self, element: NodeId, attr: NodeId) -> XdmResult<()> {
        if self.data(attr)?.parent.is_some() {
            return Err(XdmError::precondition("attribute already has a parent"));
        }
        let next_attr_okey = {
            let attrs = self.attributes(element)?;
            match attrs.last() {
                Some(&last) => self.data(last)?.okey.saturating_add(Self::OKEY_STRIDE),
                None => Self::OKEY_STRIDE,
            }
        };
        let attr_name = match self.kind(attr)? {
            NodeKind::Attribute { name, .. } => name.clone(),
            k => {
                return Err(XdmError::precondition(format!(
                    "attach_attribute expects an attribute node, got {}",
                    k.kind_name()
                )))
            }
        };
        for &existing in self.attributes(element)? {
            if self.name(existing)? == Some(&attr_name) {
                return Err(XdmError::precondition(format!(
                    "duplicate attribute \"{attr_name}\""
                )));
            }
        }
        match &mut self.data_mut(element)?.kind {
            NodeKind::Element { attributes, .. } => attributes.push(attr),
            k => {
                let k = k.kind_name();
                return Err(XdmError::precondition(format!(
                    "cannot attach attribute to {k} node"
                )));
            }
        }
        let a = self.data_mut(attr)?;
        a.parent = Some(element);
        a.okey = next_attr_okey;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Update-request applications (paper §3.2: partial functions on stores)
    // ------------------------------------------------------------------

    /// Apply `insert(nodeseq, nodepar, nodepos)`: splice the nodes of `seq`
    /// into `parent`'s children at `anchor`.
    ///
    /// Preconditions (the paper's, plus cycle safety):
    /// * every node of `seq` is alive, parentless, and not an attribute or
    ///   document node;
    /// * `parent` is a container (document or element);
    /// * an `After(pos)` anchor names a current child of `parent`;
    /// * no node of `seq` is `parent` itself or an ancestor of `parent`.
    pub fn apply_insert(
        &mut self,
        seq: &[NodeId],
        parent: NodeId,
        anchor: InsertAnchor,
    ) -> XdmResult<()> {
        if !self.kind(parent)?.is_container() {
            return Err(XdmError::precondition(format!(
                "insertion parent {parent} is a {} node",
                self.kind(parent)?.kind_name()
            )));
        }
        // Ancestor set of parent, for cycle detection.
        let mut ancestors = HashSet::new();
        let mut cur = Some(parent);
        while let Some(n) = cur {
            ancestors.insert(n);
            cur = self.parent(n)?;
        }
        for &n in seq {
            let d = self.data(n)?;
            if d.parent.is_some() {
                return Err(XdmError::precondition(format!("inserted node {n} has a parent")));
            }
            match d.kind {
                NodeKind::Attribute { .. } => {
                    return Err(XdmError::precondition(
                        "cannot insert an attribute node as a child",
                    ))
                }
                NodeKind::Document { .. } => {
                    return Err(XdmError::precondition(
                        "cannot insert a document node as a child",
                    ))
                }
                _ => {}
            }
            if ancestors.contains(&n) {
                return Err(XdmError::precondition(format!(
                    "inserting {n} under {parent} would create a cycle"
                )));
            }
        }
        let index = {
            let children = self.children(parent)?;
            match anchor {
                InsertAnchor::First => 0,
                InsertAnchor::Last => children.len(),
                InsertAnchor::After(pos) => match children.iter().position(|&c| c == pos) {
                    Some(i) => i + 1,
                    None => {
                        return Err(XdmError::precondition(format!(
                            "anchor {pos} is not a child of {parent}"
                        )))
                    }
                },
            }
        };
        match &mut self.data_mut(parent)?.kind {
            NodeKind::Document { children } | NodeKind::Element { children, .. } => {
                children.splice(index..index, seq.iter().copied());
            }
            _ => unreachable!("checked container above"),
        }
        for &n in seq {
            self.data_mut(n)?.parent = Some(parent);
        }
        self.assign_order_keys(parent, index, seq.len())?;
        Ok(())
    }

    /// Gap spacing for freshly (re)numbered sibling order keys.
    const OKEY_STRIDE: u64 = 1 << 32;

    /// Assign sibling order keys to `count` children of `parent` starting
    /// at `index`, spacing them evenly inside the gap left by their
    /// neighbours; renumber the whole child list when the gap is too
    /// tight (amortized rare).
    fn assign_order_keys(&mut self, parent: NodeId, index: usize, count: usize) -> XdmResult<()> {
        if count == 0 {
            return Ok(());
        }
        let children: Vec<NodeId> = self.children(parent)?.to_vec();
        let lo = if index == 0 { 0 } else { self.data(children[index - 1])?.okey };
        let hi = if index + count == children.len() {
            u64::MAX
        } else {
            self.data(children[index + count])?.okey
        };
        let span = hi - lo;
        if span <= count as u64 {
            // Gap exhausted: renumber every child with fresh stride.
            for (i, &c) in children.iter().enumerate() {
                self.data_mut(c)?.okey = (i as u64 + 1) * Self::OKEY_STRIDE;
            }
            return Ok(());
        }
        let step = span / (count as u64 + 1);
        for (j, &c) in children[index..index + count].iter().enumerate() {
            self.data_mut(c)?.okey = lo + step * (j as u64 + 1);
        }
        Ok(())
    }

    /// Apply `delete(node)` with the paper's **detach** semantics (§3.1):
    /// the node is removed from its parent's child/attribute list but stays
    /// alive and queryable; detaching an already-detached node is a no-op.
    pub fn detach(&mut self, node: NodeId) -> XdmResult<()> {
        let parent = match self.data(node)?.parent {
            Some(p) => p,
            None => return Ok(()),
        };
        match &mut self.data_mut(parent)?.kind {
            NodeKind::Document { children } => children.retain(|&c| c != node),
            NodeKind::Element { attributes, children, .. } => {
                children.retain(|&c| c != node);
                attributes.retain(|&a| a != node);
            }
            _ => {}
        }
        self.data_mut(node)?.parent = None;
        Ok(())
    }

    /// Apply `rename(node, name)`. Precondition: the node is an element or
    /// attribute.
    pub fn apply_rename(&mut self, node: NodeId, name: QName) -> XdmResult<()> {
        match &mut self.data_mut(node)?.kind {
            NodeKind::Element { name: n, .. } | NodeKind::Attribute { name: n, .. } => {
                *n = name;
                Ok(())
            }
            k => {
                let k = k.kind_name();
                Err(XdmError::precondition(format!("cannot rename a {k} node")))
            }
        }
    }

    /// Replace the textual content of a text node (used by `replace` on
    /// text, e.g. the paper's counter example `replace {$d/text()} with ...`
    /// goes through insert+delete; this direct setter is used by tests and
    /// the data generator).
    pub fn set_text(&mut self, node: NodeId, content: impl Into<String>) -> XdmResult<()> {
        match &mut self.data_mut(node)?.kind {
            NodeKind::Text { content: c } => {
                *c = content.into();
                Ok(())
            }
            k => {
                let k = k.kind_name();
                Err(XdmError::precondition(format!("set_text on a {k} node")))
            }
        }
    }

    /// Set an attribute node's value.
    pub fn set_attribute_value(&mut self, node: NodeId, value: impl Into<String>) -> XdmResult<()> {
        match &mut self.data_mut(node)?.kind {
            NodeKind::Attribute { value: v, .. } => {
                *v = value.into();
                Ok(())
            }
            k => {
                let k = k.kind_name();
                Err(XdmError::precondition(format!("set_attribute_value on a {k} node")))
            }
        }
    }

    // ------------------------------------------------------------------
    // Deep copy (the `copy {}` operator and normalization's implicit copy)
    // ------------------------------------------------------------------

    /// Deep-copy the subtree rooted at `node`, returning the parentless
    /// copy's id. Attributes are copied along with elements.
    pub fn deep_copy(&mut self, node: NodeId) -> XdmResult<NodeId> {
        let kind = self.data(node)?.kind.clone();
        match kind {
            NodeKind::Document { children } => {
                let copy = self.new_document();
                for c in children {
                    let cc = self.deep_copy(c)?;
                    self.append_child(copy, cc)?;
                }
                Ok(copy)
            }
            NodeKind::Element { name, attributes, children } => {
                let copy = self.new_element(name);
                for a in attributes {
                    let ac = self.deep_copy(a)?;
                    self.attach_attribute(copy, ac)?;
                }
                for c in children {
                    let cc = self.deep_copy(c)?;
                    self.append_child(copy, cc)?;
                }
                Ok(copy)
            }
            NodeKind::Attribute { name, value } => Ok(self.new_attribute(name, value)),
            NodeKind::Text { content } => Ok(self.new_text(content)),
            NodeKind::Comment { content } => Ok(self.new_comment(content)),
            NodeKind::Pi { target, content } => Ok(self.new_pi(target, content)),
        }
    }

    // ------------------------------------------------------------------
    // Document order (paper §4.1: "document order maintenance" is one of
    // the two significant data-model challenges)
    // ------------------------------------------------------------------

    /// Compare two nodes in document order. Nodes in different trees are
    /// ordered by their roots' ids (stable, implementation-defined, as the
    /// XDM allows). An attribute sorts after its owner element and before
    /// the element's children, mirroring the XDM rule.
    pub fn cmp_doc_order(&self, a: NodeId, b: NodeId) -> XdmResult<Ordering> {
        if a == b {
            return Ok(Ordering::Equal);
        }
        let ka = self.order_key(a)?;
        let kb = self.order_key(b)?;
        Ok(ka.cmp(&kb))
    }

    /// The document-order key of a node: root id, then for each ancestor
    /// step the pair `(kind-rank, sibling-order-key)`. Attributes rank 0 so
    /// they sort right after their owner element and before its children
    /// (the XDM rule); other nodes rank 1 with their gap-based order key.
    /// O(depth) — no sibling scanning (see [`NodeData::okey`]).
    fn order_key(&self, node: NodeId) -> XdmResult<Vec<(u64, u64)>> {
        let mut rev: Vec<(u64, u64)> = Vec::new();
        let mut cur = node;
        while let Some(p) = self.parent(cur)? {
            let d = self.data(cur)?;
            let rank = if matches!(d.kind, NodeKind::Attribute { .. }) { 0 } else { 1 };
            rev.push((rank, d.okey));
            cur = p;
        }
        let mut key = vec![(u64::from(cur.0), 0)];
        rev.reverse();
        key.extend(rev);
        Ok(key)
    }

    /// The pre-optimization document-order comparison: recomputes sibling
    /// positions by scanning each ancestor's child list — O(depth · fanout)
    /// per comparison. Kept as the baseline for the document-order
    /// maintenance ablation (experiment E9); semantics identical to
    /// [`Store::cmp_doc_order`].
    pub fn cmp_doc_order_scan(&self, a: NodeId, b: NodeId) -> XdmResult<Ordering> {
        if a == b {
            return Ok(Ordering::Equal);
        }
        Ok(self.order_key_scan(a)?.cmp(&self.order_key_scan(b)?))
    }

    fn order_key_scan(&self, node: NodeId) -> XdmResult<Vec<(u64, u64)>> {
        let mut rev: Vec<(u64, u64)> = Vec::new();
        let mut cur = node;
        while let Some(p) = self.parent(cur)? {
            if let Some(i) = self.attributes(p)?.iter().position(|&x| x == cur) {
                rev.push((0, i as u64));
            } else if let Some(i) = self.children(p)?.iter().position(|&x| x == cur) {
                rev.push((1, i as u64));
            } else {
                return Err(XdmError::precondition(format!(
                    "node {cur} has parent {p} but is not among its children/attributes"
                )));
            }
            cur = p;
        }
        let mut key = vec![(u64::from(cur.0), 0)];
        rev.reverse();
        key.extend(rev);
        Ok(key)
    }

    /// Sort a node sequence in document order and remove duplicates (the
    /// `ddo` applied to every path-expression step result).
    pub fn sort_and_dedup(&self, nodes: &mut Vec<NodeId>) -> XdmResult<()> {
        let mut keyed: Vec<(Vec<(u64, u64)>, NodeId)> =
            nodes.iter().map(|&n| Ok((self.order_key(n)?, n))).collect::<XdmResult<_>>()?;
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        keyed.dedup_by(|a, b| a.1 == b.1);
        *nodes = keyed.into_iter().map(|(_, n)| n).collect();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Reachability & garbage (paper §4.1: "garbage collection of persistent
    // but unreachable nodes, resulting from the detach semantics")
    // ------------------------------------------------------------------

    /// Statistics on reachable vs garbage nodes with respect to `roots`.
    pub fn stats(&self, roots: &[NodeId]) -> XdmResult<StoreStats> {
        let reachable = self.reachable_set(roots)?;
        let alive = self.len();
        Ok(StoreStats { alive, reachable: reachable.len(), garbage: alive - reachable.len() })
    }

    fn reachable_set(&self, roots: &[NodeId]) -> XdmResult<HashSet<NodeId>> {
        let mut seen = HashSet::new();
        let mut stack: Vec<NodeId> = Vec::new();
        for &r in roots {
            // Reachability is from the root of each referenced tree: holding
            // any node keeps its whole tree alive (parent links are live).
            stack.push(self.root(r)?);
        }
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            for &c in self.children(n)? {
                stack.push(c);
            }
            for &a in self.attributes(n)? {
                stack.push(a);
            }
        }
        Ok(seen)
    }

    /// Reclaim every alive node not reachable from `roots`. Returns the
    /// number of reclaimed slots. After collection, dereferencing a
    /// reclaimed id yields a dangling-id error; callers must ensure no such
    /// ids are still held (this is the explicit-GC contract the paper's
    /// "beyond the scope" remark leaves open, which we make concrete).
    pub fn collect_garbage(&mut self, roots: &[NodeId]) -> XdmResult<usize> {
        let reachable = self.reachable_set(roots)?;
        let mut reclaimed = 0;
        for i in 0..self.nodes.len() {
            let id = NodeId(i as u32);
            if self.nodes[i].alive && !reachable.contains(&id) {
                self.nodes[i].alive = false;
                self.nodes[i].kind = NodeKind::Text { content: String::new() };
                self.nodes[i].parent = None;
                self.free.push(id);
                reclaimed += 1;
            }
        }
        Ok(reclaimed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(s: &str) -> QName {
        QName::local(s)
    }

    /// Build `<a><b>hi</b><c x="1"/></a>` and return (store, a, b, c, text).
    fn sample() -> (Store, NodeId, NodeId, NodeId, NodeId) {
        let mut s = Store::new();
        let a = s.new_element(q("a"));
        let b = s.new_element(q("b"));
        let t = s.new_text("hi");
        let c = s.new_element(q("c"));
        let x = s.new_attribute(q("x"), "1");
        s.append_child(b, t).unwrap();
        s.append_child(a, b).unwrap();
        s.append_child(a, c).unwrap();
        s.attach_attribute(c, x).unwrap();
        (s, a, b, c, t)
    }

    #[test]
    fn construction_and_accessors() {
        let (s, a, b, c, t) = sample();
        assert_eq!(s.children(a).unwrap(), &[b, c]);
        assert_eq!(s.parent(b).unwrap(), Some(a));
        assert_eq!(s.parent(a).unwrap(), None);
        assert_eq!(s.name(a).unwrap().unwrap().local, "a");
        assert_eq!(s.string_value(a).unwrap(), "hi");
        assert_eq!(s.string_value(t).unwrap(), "hi");
        let attr = s.attribute_by_name(c, "x").unwrap().unwrap();
        assert_eq!(s.string_value(attr).unwrap(), "1");
        assert_eq!(s.attribute_by_name(c, "nope").unwrap(), None);
    }

    #[test]
    fn insert_anchors() {
        let mut s = Store::new();
        let p = s.new_element(q("p"));
        let c1 = s.new_element(q("c1"));
        let c2 = s.new_element(q("c2"));
        let c3 = s.new_element(q("c3"));
        s.apply_insert(&[c2], p, InsertAnchor::Last).unwrap();
        s.apply_insert(&[c1], p, InsertAnchor::First).unwrap();
        s.apply_insert(&[c3], p, InsertAnchor::After(c2)).unwrap();
        assert_eq!(s.children(p).unwrap(), &[c1, c2, c3]);
    }

    #[test]
    fn insert_sequence_preserves_order() {
        let mut s = Store::new();
        let p = s.new_element(q("p"));
        let xs: Vec<NodeId> = (0..5).map(|i| s.new_element(q(&format!("x{i}")))).collect();
        s.apply_insert(&xs, p, InsertAnchor::Last).unwrap();
        assert_eq!(s.children(p).unwrap(), &xs[..]);
    }

    #[test]
    fn insert_preconditions() {
        let (mut s, a, b, _c, _t) = sample();
        let d = s.new_element(q("d"));
        // b already has a parent.
        assert_eq!(
            s.apply_insert(&[b], d, InsertAnchor::Last).unwrap_err().code,
            "XQB0002"
        );
        // anchor not a child of parent
        assert!(s.apply_insert(&[d], a, InsertAnchor::After(d)).is_err());
        // inserting into a text node
        let t2 = s.new_text("t");
        assert!(s.apply_insert(&[d], t2, InsertAnchor::Last).is_err());
        // attribute as child
        let at = s.new_attribute(q("y"), "2");
        assert!(s.apply_insert(&[at], a, InsertAnchor::Last).is_err());
    }

    #[test]
    fn insert_rejects_cycles() {
        let (mut s, a, b, _c, _t) = sample();
        // detach a's subtree root "a" has no parent; inserting a into b (its
        // own descendant) must fail.
        assert!(s.apply_insert(&[a], b, InsertAnchor::Last).is_err());
        // And self-insertion.
        let e = s.new_element(q("e"));
        assert!(s.apply_insert(&[e], e, InsertAnchor::Last).is_err());
    }

    #[test]
    fn detach_semantics() {
        let (mut s, a, b, c, t) = sample();
        s.detach(b).unwrap();
        assert_eq!(s.children(a).unwrap(), &[c]);
        assert_eq!(s.parent(b).unwrap(), None);
        // Paper §3.1: a detached node can still be queried...
        assert_eq!(s.string_value(b).unwrap(), "hi");
        assert_eq!(s.parent(t).unwrap(), Some(b));
        // ...and inserted somewhere else.
        s.apply_insert(&[b], c, InsertAnchor::Last).unwrap();
        assert_eq!(s.parent(b).unwrap(), Some(c));
        // Detaching a detached node is a no-op.
        let d = s.new_element(q("d"));
        s.detach(d).unwrap();
    }

    #[test]
    fn detach_attribute() {
        let (mut s, _a, _b, c, _t) = sample();
        let x = s.attribute_by_name(c, "x").unwrap().unwrap();
        s.detach(x).unwrap();
        assert_eq!(s.attributes(c).unwrap(), &[]);
        assert_eq!(s.parent(x).unwrap(), None);
        assert_eq!(s.string_value(x).unwrap(), "1");
    }

    #[test]
    fn rename() {
        let (mut s, a, _b, c, t) = sample();
        s.apply_rename(a, q("z")).unwrap();
        assert_eq!(s.name(a).unwrap().unwrap().local, "z");
        let x = s.attribute_by_name(c, "x").unwrap().unwrap();
        s.apply_rename(x, q("y")).unwrap();
        assert_eq!(s.attribute_by_name(c, "y").unwrap(), Some(x));
        assert!(s.apply_rename(t, q("nope")).is_err());
    }

    #[test]
    fn deep_copy_is_detached_and_equal_shaped() {
        let (mut s, a, _b, _c, _t) = sample();
        let copy = s.deep_copy(a).unwrap();
        assert_ne!(copy, a);
        assert_eq!(s.parent(copy).unwrap(), None);
        assert_eq!(s.string_value(copy).unwrap(), "hi");
        assert_eq!(s.children(copy).unwrap().len(), 2);
        // Mutating the copy leaves the original alone.
        let nc = s.children(copy).unwrap()[0];
        s.detach(nc).unwrap();
        assert_eq!(s.children(a).unwrap().len(), 2);
    }

    #[test]
    fn document_order_within_tree() {
        let (s, a, b, c, t) = sample();
        assert_eq!(s.cmp_doc_order(a, b).unwrap(), Ordering::Less);
        assert_eq!(s.cmp_doc_order(b, t).unwrap(), Ordering::Less);
        assert_eq!(s.cmp_doc_order(t, c).unwrap(), Ordering::Less);
        assert_eq!(s.cmp_doc_order(c, c).unwrap(), Ordering::Equal);
        let x = s.attribute_by_name(c, "x").unwrap().unwrap();
        // Attribute after its element.
        assert_eq!(s.cmp_doc_order(c, x).unwrap(), Ordering::Less);
    }

    #[test]
    fn document_order_across_trees_is_stable() {
        let mut s = Store::new();
        let r1 = s.new_element(q("r1"));
        let r2 = s.new_element(q("r2"));
        let o = s.cmp_doc_order(r1, r2).unwrap();
        assert_eq!(o, s.cmp_doc_order(r1, r2).unwrap());
        assert_eq!(o.reverse(), s.cmp_doc_order(r2, r1).unwrap());
    }

    #[test]
    fn order_tracks_mutation() {
        let mut s = Store::new();
        let p = s.new_element(q("p"));
        let c1 = s.new_element(q("c1"));
        let c2 = s.new_element(q("c2"));
        s.append_child(p, c1).unwrap();
        s.append_child(p, c2).unwrap();
        assert_eq!(s.cmp_doc_order(c1, c2).unwrap(), Ordering::Less);
        // Move c1 after c2.
        s.detach(c1).unwrap();
        s.apply_insert(&[c1], p, InsertAnchor::After(c2)).unwrap();
        assert_eq!(s.cmp_doc_order(c1, c2).unwrap(), Ordering::Greater);
    }

    #[test]
    fn sort_and_dedup() {
        let (s, a, b, c, t) = sample();
        let mut v = vec![c, t, a, b, c, a];
        s.sort_and_dedup(&mut v).unwrap();
        assert_eq!(v, vec![a, b, t, c]);
    }

    #[test]
    fn descendants_preorder() {
        let (s, a, b, c, t) = sample();
        assert_eq!(s.descendants(a).unwrap(), vec![b, t, c]);
        assert_eq!(s.descendants(t).unwrap(), Vec::<NodeId>::new());
    }

    #[test]
    fn garbage_accounting_and_collection() {
        let (mut s, a, b, _c, _t) = sample();
        s.detach(b).unwrap();
        // Root set = {a}: b's subtree (b + text) is garbage.
        let st = s.stats(&[a]).unwrap();
        assert_eq!(st.alive, 5);
        assert_eq!(st.reachable, 3);
        assert_eq!(st.garbage, 2);
        // Holding b keeps its subtree alive.
        let st2 = s.stats(&[a, b]).unwrap();
        assert_eq!(st2.garbage, 0);
        let reclaimed = s.collect_garbage(&[a]).unwrap();
        assert_eq!(reclaimed, 2);
        assert!(!s.is_alive(b));
        assert!(s.kind(b).is_err());
        assert_eq!(s.len(), 3);
        // Reclaimed slots are reused rather than growing the arena.
        let n = s.new_element(q("reused"));
        assert!(n.index() < 5, "allocation should reuse a freed slot");
        assert!(s.is_alive(n));
    }

    #[test]
    fn reachability_follows_parents() {
        // Holding an inner node keeps the whole tree (via root()) alive.
        let (mut s, a, b, _c, _t) = sample();
        let st = s.stats(&[b]).unwrap();
        assert_eq!(st.reachable, 5);
        let reclaimed = s.collect_garbage(&[b]).unwrap();
        assert_eq!(reclaimed, 0);
        assert!(s.is_alive(a));
    }

    #[test]
    fn dangling_ids_error() {
        let mut s = Store::new();
        let a = s.new_element(q("a"));
        let b = s.new_element(q("b"));
        s.collect_garbage(&[a]).unwrap();
        assert_eq!(s.kind(b).unwrap_err().code, "XQB0001");
        assert!(s.parent(b).is_err());
        assert!(s.detach(b).is_err());
    }

    #[test]
    fn set_text_and_attribute_value() {
        let (mut s, _a, _b, c, t) = sample();
        s.set_text(t, "bye").unwrap();
        assert_eq!(s.string_value(t).unwrap(), "bye");
        let x = s.attribute_by_name(c, "x").unwrap().unwrap();
        s.set_attribute_value(x, "2").unwrap();
        assert_eq!(s.string_value(x).unwrap(), "2");
        assert!(s.set_text(c, "no").is_err());
        assert!(s.set_attribute_value(t, "no").is_err());
    }

    #[test]
    fn gap_keys_survive_pathological_insertion_order() {
        // Repeatedly insert at the front and in the middle: forces gap
        // splitting and eventually renumbering; order must stay correct.
        let mut s = Store::new();
        let p = s.new_element(q("p"));
        let mut expected: Vec<NodeId> = Vec::new();
        for i in 0..200 {
            let c = s.new_element(q(&format!("c{i}")));
            let at = i % (expected.len() + 1);
            let anchor = if at == 0 {
                InsertAnchor::First
            } else {
                InsertAnchor::After(expected[at - 1])
            };
            s.apply_insert(&[c], p, anchor).unwrap();
            expected.insert(at, c);
        }
        assert_eq!(s.children(p).unwrap(), &expected[..]);
        // Gap keys and the scan baseline must agree on every pair.
        for w in expected.windows(2) {
            assert_eq!(s.cmp_doc_order(w[0], w[1]).unwrap(), Ordering::Less);
            assert_eq!(s.cmp_doc_order_scan(w[0], w[1]).unwrap(), Ordering::Less);
        }
    }

    #[test]
    fn gap_keys_force_renumbering() {
        // Keep inserting right after the first child: halves the gap each
        // time, so ~60 insertions must trigger at least one renumber.
        let mut s = Store::new();
        let p = s.new_element(q("p"));
        let first = s.new_element(q("first"));
        s.append_child(p, first).unwrap();
        for i in 0..100 {
            let c = s.new_element(q(&format!("c{i}")));
            s.apply_insert(&[c], p, InsertAnchor::After(first)).unwrap();
        }
        let children = s.children(p).unwrap().to_vec();
        assert_eq!(children.len(), 101);
        assert_eq!(children[0], first);
        for w in children.windows(2) {
            assert_eq!(s.cmp_doc_order(w[0], w[1]).unwrap(), Ordering::Less);
        }
        // Most-recent insertion is closest to `first`.
        assert_eq!(s.name(children[1]).unwrap().unwrap().local, "c99");
    }

    #[test]
    fn scan_and_gap_order_agree_after_moves() {
        let (mut s, a, b, c, t) = sample();
        s.detach(b).unwrap();
        s.apply_insert(&[b], a, InsertAnchor::After(c)).unwrap();
        for &x in &[a, b, c, t] {
            for &y in &[a, b, c, t] {
                assert_eq!(
                    s.cmp_doc_order(x, y).unwrap(),
                    s.cmp_doc_order_scan(x, y).unwrap(),
                    "disagreement on ({x}, {y})"
                );
            }
        }
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let mut s = Store::new();
        let e = s.new_element(q("e"));
        let a1 = s.new_attribute(q("k"), "1");
        let a2 = s.new_attribute(q("k"), "2");
        s.attach_attribute(e, a1).unwrap();
        assert!(s.attach_attribute(e, a2).is_err());
    }
}
