//! Atomic values and their XPath 2.0 operational semantics.
//!
//! The paper works with untyped (well-formed) documents, so the atomic type
//! lattice we need is small: strings, booleans, integers, doubles, and
//! `xs:untypedAtomic` (what atomization of an untyped node produces). The
//! comparison and arithmetic rules below follow the XPath 2.0 rules for that
//! fragment, including the asymmetric treatment of untyped operands in
//! general vs. value comparisons.

use crate::error::{XdmError, XdmResult};
use std::cmp::Ordering;
use std::fmt;

/// An atomic value in the XQuery! data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Atomic {
    /// `xs:string`
    String(String),
    /// `xs:boolean`
    Boolean(bool),
    /// `xs:integer`
    Integer(i64),
    /// `xs:double` (also used for decimal literals; see crate docs)
    Double(f64),
    /// `xs:untypedAtomic` — produced by atomizing nodes in well-formed
    /// (schema-less) documents.
    Untyped(String),
}

impl Atomic {
    /// The name of the value's type, as used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Atomic::String(_) => "xs:string",
            Atomic::Boolean(_) => "xs:boolean",
            Atomic::Integer(_) => "xs:integer",
            Atomic::Double(_) => "xs:double",
            Atomic::Untyped(_) => "xs:untypedAtomic",
        }
    }

    /// Is this a numeric value (`xs:integer` or `xs:double`)?
    pub fn is_numeric(&self) -> bool {
        matches!(self, Atomic::Integer(_) | Atomic::Double(_))
    }

    /// The string value (`fn:string` applied to the atomic value).
    pub fn string_value(&self) -> String {
        match self {
            Atomic::String(s) | Atomic::Untyped(s) => s.clone(),
            Atomic::Boolean(b) => b.to_string(),
            Atomic::Integer(i) => i.to_string(),
            Atomic::Double(d) => format_double(*d),
        }
    }

    /// Cast to `xs:double` (`fn:number` semantics: failure yields `NaN` only
    /// at the caller's discretion; here we return an error and let `fn:number`
    /// map it to NaN).
    pub fn to_double(&self) -> XdmResult<f64> {
        match self {
            Atomic::Integer(i) => Ok(*i as f64),
            Atomic::Double(d) => Ok(*d),
            Atomic::Boolean(b) => Ok(if *b { 1.0 } else { 0.0 }),
            Atomic::String(s) | Atomic::Untyped(s) => parse_double(s).ok_or_else(|| {
                XdmError::value("FORG0001", format!("cannot cast \"{s}\" to xs:double"))
            }),
        }
    }

    /// Cast to `xs:integer`.
    pub fn to_integer(&self) -> XdmResult<i64> {
        match self {
            Atomic::Integer(i) => Ok(*i),
            Atomic::Double(d) => {
                if d.is_finite() {
                    Ok(*d as i64)
                } else {
                    Err(XdmError::value(
                        "FOCA0002",
                        "cannot cast non-finite double to integer",
                    ))
                }
            }
            Atomic::Boolean(b) => Ok(if *b { 1 } else { 0 }),
            Atomic::String(s) | Atomic::Untyped(s) => s.trim().parse::<i64>().map_err(|_| {
                XdmError::value("FORG0001", format!("cannot cast \"{s}\" to xs:integer"))
            }),
        }
    }

    /// Cast to `xs:boolean` (constructor semantics, not EBV).
    pub fn to_boolean(&self) -> XdmResult<bool> {
        match self {
            Atomic::Boolean(b) => Ok(*b),
            Atomic::Integer(i) => Ok(*i != 0),
            Atomic::Double(d) => Ok(*d != 0.0 && !d.is_nan()),
            Atomic::String(s) | Atomic::Untyped(s) => match s.trim() {
                "true" | "1" => Ok(true),
                "false" | "0" => Ok(false),
                other => Err(XdmError::value(
                    "FORG0001",
                    format!("cannot cast \"{other}\" to xs:boolean"),
                )),
            },
        }
    }

    /// Effective boolean value of a single atomic item (XPath 2.0 §2.4.3).
    pub fn effective_boolean(&self) -> XdmResult<bool> {
        Ok(match self {
            Atomic::Boolean(b) => *b,
            Atomic::String(s) | Atomic::Untyped(s) => !s.is_empty(),
            Atomic::Integer(i) => *i != 0,
            Atomic::Double(d) => *d != 0.0 && !d.is_nan(),
        })
    }
}

/// Format a double the way XPath serialization does for the common cases:
/// integral doubles print without a fractional part, NaN/INF use the XPath
/// spellings.
pub fn format_double(d: f64) -> String {
    if d.is_nan() {
        "NaN".to_string()
    } else if d.is_infinite() {
        if d > 0.0 {
            "INF".to_string()
        } else {
            "-INF".to_string()
        }
    } else if d == d.trunc() && d.abs() < 1e15 {
        format!("{}", d as i64)
    } else {
        format!("{d}")
    }
}

/// Parse an `xs:double` lexical form (accepts XPath's `INF`, `-INF`, `NaN`).
pub fn parse_double(s: &str) -> Option<f64> {
    match s.trim() {
        "INF" => Some(f64::INFINITY),
        "-INF" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        t => t.parse::<f64>().ok(),
    }
}

/// The value-comparison operators (`eq`, `ne`, `lt`, `le`, `gt`, `ge`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CompareOp {
    /// Evaluate the operator on an ordering result.
    pub fn holds(self, ord: Ordering) -> bool {
        match self {
            CompareOp::Eq => ord == Ordering::Equal,
            CompareOp::Ne => ord != Ordering::Equal,
            CompareOp::Lt => ord == Ordering::Less,
            CompareOp::Le => ord != Ordering::Greater,
            CompareOp::Gt => ord == Ordering::Greater,
            CompareOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator's spelling in value-comparison syntax.
    pub fn value_spelling(self) -> &'static str {
        match self {
            CompareOp::Eq => "eq",
            CompareOp::Ne => "ne",
            CompareOp::Lt => "lt",
            CompareOp::Le => "le",
            CompareOp::Gt => "gt",
            CompareOp::Ge => "ge",
        }
    }
}

/// Value comparison between two atomic values (XPath `eq`-family).
///
/// Untyped operands are cast to the other operand's type when that operand
/// is typed; two untyped operands compare as strings.
pub fn value_compare(op: CompareOp, a: &Atomic, b: &Atomic) -> XdmResult<bool> {
    let ord = compare_atomics(a, b, UntypedRule::Value)?;
    match ord {
        Some(o) => Ok(op.holds(o)),
        // NaN comparisons: only `ne` holds.
        None => Ok(op == CompareOp::Ne),
    }
}

/// General comparison between two atomic values (XPath `=`-family): untyped
/// vs numeric casts untyped to double; untyped vs anything else compares as
/// string.
pub fn general_compare(op: CompareOp, a: &Atomic, b: &Atomic) -> XdmResult<bool> {
    let ord = compare_atomics(a, b, UntypedRule::General)?;
    match ord {
        Some(o) => Ok(op.holds(o)),
        None => Ok(op == CompareOp::Ne),
    }
}

/// How untyped operands are coerced during comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UntypedRule {
    /// Value comparisons: untyped is cast to the other operand's type.
    Value,
    /// General comparisons: untyped vs numeric -> double, else string.
    General,
}

/// Compare two atomics; `None` means "unordered" (NaN was involved).
fn compare_atomics(a: &Atomic, b: &Atomic, rule: UntypedRule) -> XdmResult<Option<Ordering>> {
    use Atomic::*;
    match (a, b) {
        (Untyped(x), Untyped(y)) => Ok(Some(x.cmp(y))),
        (Untyped(x), other) if other.is_numeric() => {
            let xv = Atomic::Untyped(x.clone()).to_double()?;
            Ok(cmp_f64(xv, other.to_double()?))
        }
        (other, Untyped(y)) if other.is_numeric() => {
            let yv = Atomic::Untyped(y.clone()).to_double()?;
            Ok(cmp_f64(other.to_double()?, yv))
        }
        (Untyped(x), Boolean(y)) => {
            let xb = match rule {
                UntypedRule::Value | UntypedRule::General => {
                    Atomic::Untyped(x.clone()).to_boolean()?
                }
            };
            Ok(Some(xb.cmp(y)))
        }
        (Boolean(x), Untyped(y)) => {
            let yb = Atomic::Untyped(y.clone()).to_boolean()?;
            Ok(Some(x.cmp(&yb)))
        }
        (Untyped(x), String(y)) | (String(x), Untyped(y)) => Ok(Some(x.cmp(y))),
        (String(x), String(y)) => Ok(Some(x.cmp(y))),
        (Boolean(x), Boolean(y)) => Ok(Some(x.cmp(y))),
        (Integer(x), Integer(y)) => Ok(Some(x.cmp(y))),
        (x, y) if x.is_numeric() && y.is_numeric() => Ok(cmp_f64(x.to_double()?, y.to_double()?)),
        (x, y) => Err(XdmError::type_error(format!(
            "cannot compare {} with {}",
            x.type_name(),
            y.type_name()
        ))),
    }
}

fn cmp_f64(a: f64, b: f64) -> Option<Ordering> {
    a.partial_cmp(&b)
}

/// The arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    IDiv,
    Mod,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "div",
            ArithOp::IDiv => "idiv",
            ArithOp::Mod => "mod",
        };
        f.write_str(s)
    }
}

/// XPath arithmetic on two atomic operands. Untyped operands are cast to
/// double; integer op integer stays integer except for `div`, which always
/// produces a double in our decimal-free fragment.
pub fn arithmetic(op: ArithOp, a: &Atomic, b: &Atomic) -> XdmResult<Atomic> {
    use Atomic::*;
    let (a, b) = (coerce_numeric(a)?, coerce_numeric(b)?);
    match (a, b) {
        (Integer(x), Integer(y)) => match op {
            ArithOp::Add => x
                .checked_add(y)
                .map(Integer)
                .ok_or_else(|| XdmError::value("FOAR0002", "integer overflow in +")),
            ArithOp::Sub => x
                .checked_sub(y)
                .map(Integer)
                .ok_or_else(|| XdmError::value("FOAR0002", "integer overflow in -")),
            ArithOp::Mul => x
                .checked_mul(y)
                .map(Integer)
                .ok_or_else(|| XdmError::value("FOAR0002", "integer overflow in *")),
            ArithOp::Div => {
                if y == 0 {
                    Err(XdmError::value("FOAR0001", "division by zero"))
                } else if x % y == 0 {
                    Ok(Integer(x / y))
                } else {
                    Ok(Double(x as f64 / y as f64))
                }
            }
            ArithOp::IDiv => {
                if y == 0 {
                    Err(XdmError::value("FOAR0001", "integer division by zero"))
                } else {
                    Ok(Integer(x / y))
                }
            }
            ArithOp::Mod => {
                if y == 0 {
                    Err(XdmError::value("FOAR0001", "modulus by zero"))
                } else {
                    Ok(Integer(x % y))
                }
            }
        },
        (x, y) => {
            let (x, y) = (x.to_double()?, y.to_double()?);
            let r = match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => x / y,
                ArithOp::IDiv => {
                    if y == 0.0 {
                        return Err(XdmError::value("FOAR0001", "integer division by zero"));
                    }
                    return Ok(Integer((x / y).trunc() as i64));
                }
                ArithOp::Mod => x % y,
            };
            Ok(Double(r))
        }
    }
}

/// Unary minus.
pub fn negate(a: &Atomic) -> XdmResult<Atomic> {
    match coerce_numeric(a)? {
        Atomic::Integer(i) => i
            .checked_neg()
            .map(Atomic::Integer)
            .ok_or_else(|| XdmError::value("FOAR0002", "integer overflow in unary -")),
        Atomic::Double(d) => Ok(Atomic::Double(-d)),
        _ => unreachable!("coerce_numeric returns numerics only"),
    }
}

/// Coerce an operand of an arithmetic expression to a numeric atomic
/// (untyped -> double per XPath; booleans and strings are type errors).
fn coerce_numeric(a: &Atomic) -> XdmResult<Atomic> {
    match a {
        Atomic::Integer(_) | Atomic::Double(_) => Ok(a.clone()),
        Atomic::Untyped(s) => parse_double(s).map(Atomic::Double).ok_or_else(|| {
            XdmError::value("FORG0001", format!("cannot cast \"{s}\" to xs:double"))
        }),
        other => Err(XdmError::type_error(format!(
            "operand of arithmetic must be numeric, got {}",
            other.type_name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_values() {
        assert_eq!(Atomic::Integer(42).string_value(), "42");
        assert_eq!(Atomic::Boolean(true).string_value(), "true");
        assert_eq!(Atomic::Double(2.5).string_value(), "2.5");
        assert_eq!(Atomic::Double(3.0).string_value(), "3");
        assert_eq!(Atomic::Double(f64::NAN).string_value(), "NaN");
        assert_eq!(Atomic::Double(f64::INFINITY).string_value(), "INF");
    }

    #[test]
    fn untyped_vs_numeric_compares_numerically() {
        // XMark-style: @person = "person12" string compare, @id = 12 numeric.
        assert!(general_compare(
            CompareOp::Eq,
            &Atomic::Untyped("12".into()),
            &Atomic::Integer(12)
        )
        .unwrap());
        assert!(general_compare(
            CompareOp::Lt,
            &Atomic::Untyped("9".into()),
            &Atomic::Integer(12)
        )
        .unwrap());
    }

    #[test]
    fn untyped_vs_untyped_compares_as_string() {
        // "9" > "12" as strings.
        assert!(general_compare(
            CompareOp::Gt,
            &Atomic::Untyped("9".into()),
            &Atomic::Untyped("12".into())
        )
        .unwrap());
    }

    #[test]
    fn untyped_vs_string_compares_as_string() {
        assert!(general_compare(
            CompareOp::Eq,
            &Atomic::Untyped("person12".into()),
            &Atomic::String("person12".into())
        )
        .unwrap());
    }

    #[test]
    fn nan_is_unordered() {
        let nan = Atomic::Double(f64::NAN);
        assert!(!value_compare(CompareOp::Eq, &nan, &nan).unwrap());
        assert!(value_compare(CompareOp::Ne, &nan, &nan).unwrap());
        assert!(!value_compare(CompareOp::Lt, &nan, &Atomic::Double(1.0)).unwrap());
    }

    #[test]
    fn integer_arithmetic_stays_integer() {
        assert_eq!(
            arithmetic(ArithOp::Add, &Atomic::Integer(2), &Atomic::Integer(3)).unwrap(),
            Atomic::Integer(5)
        );
        assert_eq!(
            arithmetic(ArithOp::Mul, &Atomic::Integer(2), &Atomic::Integer(3)).unwrap(),
            Atomic::Integer(6)
        );
        assert_eq!(
            arithmetic(ArithOp::IDiv, &Atomic::Integer(7), &Atomic::Integer(2)).unwrap(),
            Atomic::Integer(3)
        );
        assert_eq!(
            arithmetic(ArithOp::Mod, &Atomic::Integer(7), &Atomic::Integer(2)).unwrap(),
            Atomic::Integer(1)
        );
    }

    #[test]
    fn integer_div_promotes_when_inexact() {
        assert_eq!(
            arithmetic(ArithOp::Div, &Atomic::Integer(6), &Atomic::Integer(3)).unwrap(),
            Atomic::Integer(2)
        );
        assert_eq!(
            arithmetic(ArithOp::Div, &Atomic::Integer(7), &Atomic::Integer(2)).unwrap(),
            Atomic::Double(3.5)
        );
    }

    #[test]
    fn division_by_zero_errors() {
        let e = arithmetic(ArithOp::Div, &Atomic::Integer(1), &Atomic::Integer(0)).unwrap_err();
        assert_eq!(e.code, "FOAR0001");
        let e = arithmetic(ArithOp::IDiv, &Atomic::Integer(1), &Atomic::Integer(0)).unwrap_err();
        assert_eq!(e.code, "FOAR0001");
    }

    #[test]
    fn overflow_is_detected() {
        let e = arithmetic(
            ArithOp::Add,
            &Atomic::Integer(i64::MAX),
            &Atomic::Integer(1),
        )
        .unwrap_err();
        assert_eq!(e.code, "FOAR0002");
        assert_eq!(
            negate(&Atomic::Integer(i64::MIN)).unwrap_err().code,
            "FOAR0002"
        );
    }

    #[test]
    fn untyped_operands_of_arithmetic_become_double() {
        assert_eq!(
            arithmetic(
                ArithOp::Add,
                &Atomic::Untyped("1".into()),
                &Atomic::Integer(2)
            )
            .unwrap(),
            Atomic::Double(3.0)
        );
    }

    #[test]
    fn arithmetic_on_strings_is_a_type_error() {
        let e = arithmetic(
            ArithOp::Add,
            &Atomic::String("a".into()),
            &Atomic::Integer(2),
        )
        .unwrap_err();
        assert_eq!(e.code, "XPTY0004");
    }

    #[test]
    fn effective_boolean_values() {
        assert!(Atomic::String("x".into()).effective_boolean().unwrap());
        assert!(!Atomic::String(String::new()).effective_boolean().unwrap());
        assert!(!Atomic::Double(f64::NAN).effective_boolean().unwrap());
        assert!(Atomic::Integer(-1).effective_boolean().unwrap());
        assert!(!Atomic::Integer(0).effective_boolean().unwrap());
    }

    #[test]
    fn boolean_casts() {
        assert!(Atomic::Untyped("true".into()).to_boolean().unwrap());
        assert!(!Atomic::Untyped("0".into()).to_boolean().unwrap());
        assert!(Atomic::Untyped("yes".into()).to_boolean().is_err());
    }

    #[test]
    fn double_parsing_accepts_xpath_spellings() {
        assert_eq!(parse_double("INF"), Some(f64::INFINITY));
        assert_eq!(parse_double("-INF"), Some(f64::NEG_INFINITY));
        assert!(parse_double("NaN").unwrap().is_nan());
        assert_eq!(parse_double(" 1.5 "), Some(1.5));
        assert_eq!(parse_double("abc"), None);
    }

    #[test]
    fn incomparable_types_error() {
        let e =
            value_compare(CompareOp::Eq, &Atomic::Boolean(true), &Atomic::Integer(1)).unwrap_err();
        assert_eq!(e.code, "XPTY0004");
    }
}
