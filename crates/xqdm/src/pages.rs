//! Copy-on-write paged slot storage for the node store (DESIGN.md §15).
//!
//! The store's node slots used to live in one flat `Vec<NodeData>`, which
//! made forking the store for a concurrent reader an O(store) deep copy.
//! [`Pages`] keeps the same dense u32-indexed address space but splits it
//! into fixed-size pages, each behind an [`Arc`]:
//!
//! * **Snapshot** ([`Pages::clone`]) is O(pages): it copies the page
//!   *table* and bumps one reference count per page. Node ids, and hence
//!   every value and binding that carries them, stay valid across the
//!   fork.
//! * **Mutation after a snapshot** copies only the touched pages
//!   (`Arc::make_mut`): the writer and any number of pinned readers
//!   diverge page-by-page, so a commit costs O(pages touched), not
//!   O(store).
//! * **Reads** are two bounds checks and a shift/mask away from the flat
//!   layout; the batch kernels and the document-order comparator are
//!   unchanged.
//!
//! Retirement is reference counting: when the last snapshot holding an
//! old page drops, the page is freed. There is no epoch list down here —
//! that bookkeeping (pinning, publishing, retiring whole versions) lives
//! in [`crate::version`].

use crate::node::NodeData;
use std::ops::{Index, IndexMut};
use std::sync::Arc;

/// log2 of the page size. 1024 slots ≈ 64 KiB of `NodeData` per page:
/// big enough that the page-table walk is negligible, small enough that
/// a single-element commit after a snapshot copies little.
const PAGE_BITS: usize = 10;
/// Slots per page.
pub(crate) const PAGE_LEN: usize = 1 << PAGE_BITS;
const PAGE_MASK: usize = PAGE_LEN - 1;

/// The COW paged slot array. Cloning shares every page; mutation
/// unshares (copies) exactly the pages it touches.
#[derive(Debug, Clone, Default)]
pub(crate) struct Pages {
    /// All pages except possibly the last hold exactly [`PAGE_LEN`]
    /// slots; the last holds the remainder.
    pages: Vec<Arc<Vec<NodeData>>>,
    /// Total slot count.
    len: usize,
}

impl Pages {
    /// Total number of slots (alive or dead — this is the address-space
    /// size, the paged equivalent of `Vec::len`).
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The slot at `i`, if in range.
    #[inline]
    pub(crate) fn get(&self, i: usize) -> Option<&NodeData> {
        if i >= self.len {
            return None;
        }
        Some(&self.pages[i >> PAGE_BITS][i & PAGE_MASK])
    }

    /// Mutable access to the slot at `i`, unsharing its page first if a
    /// snapshot still holds it.
    #[inline]
    pub(crate) fn get_mut(&mut self, i: usize) -> Option<&mut NodeData> {
        if i >= self.len {
            return None;
        }
        let page = Arc::make_mut(&mut self.pages[i >> PAGE_BITS]);
        Some(&mut page[i & PAGE_MASK])
    }

    /// Append a slot at index `len`.
    pub(crate) fn push(&mut self, data: NodeData) {
        if self.len == self.pages.len() * PAGE_LEN {
            self.pages.push(Arc::new(Vec::with_capacity(PAGE_LEN)));
        }
        let last = self.pages.last_mut().expect("page just ensured");
        let page = Arc::make_mut(last);
        if page.capacity() < PAGE_LEN {
            // A freshly unshared page clones at capacity == len; restore
            // the fixed page capacity so in-page growth never reallocates.
            page.reserve_exact(PAGE_LEN - page.len());
        }
        page.push(data);
        self.len += 1;
    }

    /// Remove and return the highest slot (undo of a fresh allocation).
    pub(crate) fn pop(&mut self) -> Option<NodeData> {
        if self.len == 0 {
            return None;
        }
        let last = self.pages.last_mut().expect("non-empty");
        let data = Arc::make_mut(last).pop().expect("last page non-empty");
        self.len -= 1;
        if self.len == (self.pages.len() - 1) * PAGE_LEN {
            self.pages.pop();
        }
        Some(data)
    }

    /// Iterate every slot in index order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &NodeData> {
        self.pages.iter().flat_map(|p| p.iter())
    }

    /// Build from a flat slot vector (checkpoint recovery).
    pub(crate) fn from_vec(nodes: Vec<NodeData>) -> Pages {
        let len = nodes.len();
        let mut pages = Vec::with_capacity(len.div_ceil(PAGE_LEN));
        let mut nodes = nodes.into_iter();
        loop {
            let mut page = Vec::with_capacity(PAGE_LEN);
            page.extend(nodes.by_ref().take(PAGE_LEN));
            if page.is_empty() {
                break;
            }
            pages.push(Arc::new(page));
        }
        Pages { pages, len }
    }

    /// How many pages `self` and `other` share (same `Arc`). Observability
    /// for the COW contract: a fresh snapshot shares everything; a writer
    /// that touched one node shares all pages but one.
    pub(crate) fn shared_pages_with(&self, other: &Pages) -> usize {
        self.pages
            .iter()
            .zip(other.pages.iter())
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Total page count.
    pub(crate) fn page_count(&self) -> usize {
        self.pages.len()
    }
}

impl Index<usize> for Pages {
    type Output = NodeData;
    #[inline]
    fn index(&self, i: usize) -> &NodeData {
        self.get(i).expect("node slot index out of bounds")
    }
}

impl IndexMut<usize> for Pages {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut NodeData {
        self.get_mut(i).expect("node slot index out of bounds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    fn slot(tag: &str) -> NodeData {
        NodeData {
            parent: None,
            kind: NodeKind::Text {
                content: tag.to_string(),
            },
            alive: true,
            okey: 0,
        }
    }

    fn text(d: &NodeData) -> &str {
        match &d.kind {
            NodeKind::Text { content } => content,
            _ => unreachable!(),
        }
    }

    #[test]
    fn push_index_pop_round_trip() {
        let mut p = Pages::default();
        for i in 0..(PAGE_LEN * 2 + 5) {
            p.push(slot(&i.to_string()));
        }
        assert_eq!(p.len(), PAGE_LEN * 2 + 5);
        assert_eq!(p.page_count(), 3);
        assert_eq!(text(&p[0]), "0");
        assert_eq!(text(&p[PAGE_LEN]), &PAGE_LEN.to_string());
        assert_eq!(text(&p[p.len() - 1]), &(PAGE_LEN * 2 + 4).to_string());
        for _ in 0..6 {
            p.pop().unwrap();
        }
        // Popping across the page boundary drops the emptied page.
        assert_eq!(p.page_count(), 2);
        assert_eq!(p.len(), PAGE_LEN * 2 - 1);
        assert!(p.get(p.len()).is_none());
    }

    #[test]
    fn clone_shares_and_mutation_unshares_one_page() {
        let mut p = Pages::default();
        for i in 0..(PAGE_LEN * 3) {
            p.push(slot(&i.to_string()));
        }
        let snap = p.clone();
        assert_eq!(p.shared_pages_with(&snap), 3);
        p[PAGE_LEN + 1].okey = 42; // touch page 1 only
        assert_eq!(p.shared_pages_with(&snap), 2);
        // The snapshot still sees the pre-mutation value.
        assert_eq!(snap[PAGE_LEN + 1].okey, 0);
        assert_eq!(p[PAGE_LEN + 1].okey, 42);
    }

    #[test]
    fn from_vec_matches_pushes() {
        let v: Vec<NodeData> = (0..(PAGE_LEN + 7)).map(|i| slot(&i.to_string())).collect();
        let a = Pages::from_vec(v.clone());
        let mut b = Pages::default();
        for d in v {
            b.push(d);
        }
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(text(&a[i]), text(&b[i]));
        }
        assert_eq!(a.iter().count(), a.len());
    }

    #[test]
    fn push_after_shared_clone_does_not_disturb_snapshot() {
        let mut p = Pages::default();
        for i in 0..5 {
            p.push(slot(&i.to_string()));
        }
        let snap = p.clone();
        p.push(slot("new"));
        assert_eq!(snap.len(), 5);
        assert_eq!(p.len(), 6);
        assert!(snap.get(5).is_none());
        assert_eq!(text(&p[5]), "new");
    }
}
