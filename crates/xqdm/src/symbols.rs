//! Interned names (DESIGN.md §14).
//!
//! Every element/attribute name and PI target in a store is interned
//! into a store-owned [`Symbols`] table: node slots then carry a 4-byte
//! [`SymbolId`] (or an 8-byte [`QNameId`]) instead of one or two heap
//! `String`s, and name tests in the hot path become integer compares.
//! The table is append-only — symbols are never removed, so ids stay
//! valid across undo rollback and garbage collection — and it is cloned
//! along with the store, keeping cloned stores self-contained.
//!
//! Interning is *not* observable state: `Store::fingerprint()`, the WAL
//! record format and the checkpoint snapshot all serialize lexical
//! names, so a store populated through a different interning history
//! (or none, pre-refactor) hashes and replays identically.

use crate::qname::QName;
use std::collections::HashMap;

/// An interned string: an index into the store's [`Symbols`] table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolId(u32);

impl SymbolId {
    /// Sentinel packed into [`QNameId::prefix`] for "no prefix": never a
    /// valid table index (the table is capped far below `u32::MAX`).
    const NONE: SymbolId = SymbolId(u32::MAX);

    /// The raw table index (debugging; not an API guarantee).
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// An interned qualified name: prefix and local part as symbols. 8 bytes,
/// `Copy`, and — within one store — equal ids iff equal lexical names,
/// so name comparison is a single integer compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QNameId {
    /// Interned prefix, or [`SymbolId::NONE`] when the name has none.
    prefix: SymbolId,
    /// Interned local part.
    local: SymbolId,
}

impl QNameId {
    /// The interned prefix, if the name has one.
    pub fn prefix(self) -> Option<SymbolId> {
        (self.prefix != SymbolId::NONE).then_some(self.prefix)
    }

    /// The interned local part.
    pub fn local(self) -> SymbolId {
        self.local
    }
}

/// The append-only string interner owned by a store.
#[derive(Debug, Clone, Default)]
pub struct Symbols {
    /// Id → string. `Box<str>` keeps each entry one pointer-plus-length.
    strings: Vec<Box<str>>,
    /// String → id (entries duplicate `strings`; the table is small —
    /// distinct names, not nodes — so the doubled storage is cheap and
    /// keeps the implementation free of unsafe self-references).
    map: HashMap<Box<str>, SymbolId>,
}

impl Symbols {
    /// An empty table.
    pub fn new() -> Self {
        Symbols::default()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Intern `s`, returning its (new or existing) id.
    pub fn intern(&mut self, s: &str) -> SymbolId {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = SymbolId(self.strings.len() as u32);
        assert!(id != SymbolId::NONE, "symbol table overflow");
        self.strings.push(s.into());
        self.map.insert(s.into(), id);
        id
    }

    /// The id of `s` if it is already interned. A miss means no node in
    /// the store bears this name — callers can skip scanning entirely —
    /// and, unlike [`Symbols::intern`], a lookup needs only `&self`, so
    /// read-only parallel workers can run name tests over a shared store.
    pub fn lookup(&self, s: &str) -> Option<SymbolId> {
        self.map.get(s).copied()
    }

    /// The string behind `id`.
    ///
    /// Panics on an id from a different store's table that is out of
    /// range; ids are not meant to travel between stores.
    pub fn resolve(&self, id: SymbolId) -> &str {
        &self.strings[id.0 as usize]
    }

    /// Intern both parts of a qualified name.
    pub fn intern_qname(&mut self, q: &QName) -> QNameId {
        QNameId {
            prefix: match &q.prefix {
                Some(p) => self.intern(p),
                None => SymbolId::NONE,
            },
            local: self.intern(&q.local),
        }
    }

    /// The id of `q` if both parts are already interned (`None` means no
    /// node bears this name; see [`Symbols::lookup`]).
    pub fn lookup_qname(&self, q: &QName) -> Option<QNameId> {
        let prefix = match &q.prefix {
            Some(p) => self.lookup(p)?,
            None => SymbolId::NONE,
        };
        Some(QNameId {
            prefix,
            local: self.lookup(&q.local)?,
        })
    }

    /// The id of the lexical name `s` (`local` or `prefix:local`) if it
    /// is already interned.
    pub fn lookup_lexical(&self, s: &str) -> Option<QNameId> {
        match s.split_once(':') {
            Some((p, l)) => Some(QNameId {
                prefix: self.lookup(p)?,
                local: self.lookup(l)?,
            }),
            None => Some(QNameId {
                prefix: SymbolId::NONE,
                local: self.lookup(s)?,
            }),
        }
    }

    /// Materialize the lexical [`QName`] behind `id`.
    pub fn resolve_qname(&self, id: QNameId) -> QName {
        QName {
            prefix: id.prefix().map(|p| self.resolve(p).to_string()),
            local: self.resolve(id.local).to_string(),
        }
    }

    /// The borrowed parts of `id` (no allocation).
    pub fn qname_parts(&self, id: QNameId) -> (Option<&str>, &str) {
        (id.prefix().map(|p| self.resolve(p)), self.resolve(id.local))
    }

    /// Append `id`'s lexical form (`prefix:local`) to `out` without
    /// allocating — the serializer's inner loop.
    pub fn push_qname(&self, id: QNameId, out: &mut String) {
        if let Some(p) = id.prefix() {
            out.push_str(self.resolve(p));
            out.push(':');
        }
        out.push_str(self.resolve(id.local));
    }

    /// Format `id` as a lexical name (error messages and debug output).
    pub fn qname_string(&self, id: QNameId) -> String {
        let mut s = String::new();
        self.push_qname(id, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = Symbols::new();
        let a = t.intern("person");
        let b = t.intern("person");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        assert_eq!(t.resolve(a), "person");
        assert_ne!(t.intern("item"), a);
    }

    #[test]
    fn lookup_misses_without_interning() {
        let mut t = Symbols::new();
        assert_eq!(t.lookup("absent"), None);
        let id = t.intern("present");
        assert_eq!(t.lookup("present"), Some(id));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn qname_round_trip() {
        let mut t = Symbols::new();
        for q in [QName::local("a"), QName::prefixed("x", "a")] {
            let id = t.intern_qname(&q);
            assert_eq!(t.resolve_qname(id), q);
            assert_eq!(t.lookup_qname(&q), Some(id));
            assert_eq!(t.lookup_lexical(&q.to_string()), Some(id));
            assert_eq!(t.qname_string(id), q.to_string());
        }
        // Same local part, different prefix presence: distinct ids.
        assert_ne!(
            t.lookup_qname(&QName::local("a")),
            t.lookup_qname(&QName::prefixed("x", "a"))
        );
    }

    #[test]
    fn qname_parts_borrow() {
        let mut t = Symbols::new();
        let id = t.intern_qname(&QName::prefixed("ns", "k"));
        assert_eq!(t.qname_parts(id), (Some("ns"), "k"));
        let mut out = String::new();
        t.push_qname(id, &mut out);
        assert_eq!(out, "ns:k");
    }

    #[test]
    fn clone_preserves_ids() {
        let mut t = Symbols::new();
        let id = t.intern("stable");
        let u = t.clone();
        assert_eq!(u.lookup("stable"), Some(id));
        assert_eq!(u.resolve(id), "stable");
    }
}
