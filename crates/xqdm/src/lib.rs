//! # xqdm — the XQuery! Data Model
//!
//! This crate implements the store-based XML data model that the XQuery!
//! paper (Ghelli, Ré, Siméon — EDBT 2006, §3.2) builds its semantics on:
//!
//! * a mutable [`Store`] mapping node ids to node kind, parent, name and
//!   content, with the XDM accessors and constructors;
//! * the *applications* of the paper's update requests as store mutation
//!   primitives (`insert`, `delete`-as-detach, `rename`) with the paper's
//!   preconditions;
//! * deep copy (used by the explicit `copy {}` operator and by the implicit
//!   copy that normalization wraps around insertion sources);
//! * document order over a mutable forest, and reachability / garbage
//!   accounting for detached nodes (the two data-model problems §4.1 calls
//!   out);
//! * atomic values, items and sequences with XPath-style atomization,
//!   effective boolean value, and comparison semantics;
//! * a small well-formed XML parser and serializer, since no XML crate is
//!   available in the offline dependency set.
//!
//! Everything here is deliberately independent of the query language: the
//! `xqsyn` / `xqcore` crates sit on top.

pub mod atomic;
pub mod error;
pub mod footprint;
pub(crate) mod index;
pub mod item;
pub mod node;
pub(crate) mod pages;
pub mod qname;
pub mod store;
pub mod symbols;
pub mod version;
pub mod wal;
pub mod xml;

pub use atomic::Atomic;
pub use error::{XdmError, XdmResult};
pub use footprint::{CapturedDelta, Footprint};
pub use item::{Item, Sequence};
pub use node::{NodeId, NodeKind};
pub use qname::QName;
pub use store::{KernelTest, Scratch, Store};
pub use symbols::{QNameId, SymbolId, Symbols};
pub use version::{Pinned, VersionSet};
pub use wal::{CommitReceipt, RecoveryReport, SyncMode};

// Parallel evaluation of effect-free regions (xqcore's DESIGN.md §9
// feature) shares the store across scoped worker threads as `&Store`.
// That is sound only while these types stay plain data — no `Rc`, no
// `Cell`/`RefCell`, no raw pointers. These assertions turn any future
// interior-mutability regression into a compile error at its source.
const _: () = {
    const fn assert_send_sync<T: ?Sized + Send + Sync>() {}
    assert_send_sync::<Store>();
    assert_send_sync::<NodeId>();
    assert_send_sync::<NodeKind>();
    assert_send_sync::<QName>();
    assert_send_sync::<QNameId>();
    assert_send_sync::<SymbolId>();
    assert_send_sync::<Symbols>();
    assert_send_sync::<Atomic>();
    assert_send_sync::<Item>();
    assert_send_sync::<Sequence>();
    assert_send_sync::<XdmError>();
};
