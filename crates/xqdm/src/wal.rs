//! Durable redo log for the store (ISSUE 6; docs/DURABILITY.md).
//!
//! The paper's snap semantics gives every update a well-defined atomic
//! commit point; this module persists exactly those committed transitions.
//! While a durable store is attached, every successful mutation primitive
//! appends one logical [`RedoOp`] to an in-memory buffer; at each engine
//! commit point the buffer is flushed to `wal.log` as length-prefixed,
//! CRC32-checksummed records followed by a commit marker, optionally
//! fsynced ([`SyncMode`]). Rollback of an undo frame truncates the buffer
//! — nothing uncommitted ever reaches the file as a committed batch.
//!
//! Recovery replays the log through the very same store mutators, so
//! order-key assignment, free-list reuse and hence every [`NodeId`] are
//! reproduced bit-for-bit; anything after the last valid commit marker
//! (a torn record, a failed checksum, trailing unmarked ops) is dropped
//! with a warning, never an abort. Periodic checkpoints write a full
//! snapshot (`checkpoint.bin`) and truncate the log so recovery time is
//! bounded by data size, not history length.

use crate::error::{XdmError, XdmResult};
use crate::node::NodeId;
use crate::qname::QName;
use crate::store::{InsertAnchor, Store};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic header of `wal.log`.
pub const LOG_MAGIC: &[u8; 8] = b"XQWAL001";
/// Magic header of `checkpoint.bin`.
pub const SNAP_MAGIC: &[u8; 8] = b"XQSNAP01";
/// Upper bound on a single record's payload; a corrupted length field
/// must not trigger a giant allocation during recovery.
const MAX_RECORD: u32 = 64 << 20;
/// `SyncMode::Batch` fsyncs at most once per this many commits.
const BATCH_EVERY: u64 = 32;

/// When to fsync the redo log (set via `Engine::set_durability`, the
/// `XQB_DURABILITY` env var, or [`Store::open_durable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncMode {
    /// fsync after every commit marker: a completed commit survives both
    /// process crash and OS crash.
    #[default]
    Always,
    /// fsync every [`BATCH_EVERY`] commits (and on seal/checkpoint):
    /// bounded data loss on OS crash, full safety on process crash.
    Batch,
    /// Never fsync explicitly; the OS flushes at its leisure.
    Off,
}

impl SyncMode {
    /// Parse `"always"` / `"batch"` / `"off"` (the `XQB_DURABILITY`
    /// values); `None` for anything else.
    pub fn parse(s: &str) -> Option<SyncMode> {
        match s {
            "always" => Some(SyncMode::Always),
            "batch" => Some(SyncMode::Batch),
            "off" => Some(SyncMode::Off),
            _ => None,
        }
    }
}

impl std::fmt::Display for SyncMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SyncMode::Always => "always",
            SyncMode::Batch => "batch",
            SyncMode::Off => "off",
        })
    }
}

/// One logical redo operation: the forward image of a successful store
/// mutation, at the same granularity as the undo journal. Order keys are
/// deliberately *not* logged — replay goes through the real mutators,
/// which recompute them (and the free list, and therefore every node id)
/// deterministically from the same history.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum RedoOp {
    /// A slot was allocated (`kind` is the at-birth payload: containers
    /// are always born empty).
    Alloc { id: NodeId, kind: BirthKind },
    /// `seq` was spliced into `parent` at `anchor`.
    Insert {
        seq: Vec<NodeId>,
        parent: NodeId,
        anchor: InsertAnchor,
    },
    /// `attr` was pushed onto `element`'s attribute list.
    AttachAttr { element: NodeId, attr: NodeId },
    /// `node` was detached from its parent.
    Detach { node: NodeId },
    /// `node` was renamed to `name`.
    Rename { node: NodeId, name: QName },
    /// A text node's content was replaced.
    SetText { node: NodeId, content: String },
    /// An attribute node's value was replaced.
    SetAttrValue { node: NodeId, value: String },
    /// Garbage collection reclaimed exactly these slots, in this order
    /// (the order fixes the free list, hence future allocation).
    Collect { ids: Vec<NodeId> },
}

/// The *lexical* at-birth payload of an allocated node. Node slots store
/// interned [`crate::symbols::SymbolId`]s, but the log must stay readable
/// without any interner state (and bit-compatible with logs written
/// before interning existed), so the store resolves names when recording
/// an alloc and re-interns them when replaying one. Encodes to exactly
/// the bytes the pre-interning `NodeKind` encoding produced.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum BirthKind {
    Document,
    Element { name: QName },
    Attribute { name: QName, value: String },
    Text { content: String },
    Comment { content: String },
    Pi { target: String, content: String },
}

// ----------------------------------------------------------------------
// CRC32 (IEEE, table-driven — the offline dependency set has no digest
// crate) and FNV-1a 64 for the store fingerprint.
// ----------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    })
}

/// CRC32 (IEEE 802.3) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Incremental FNV-1a 64-bit hasher: fully deterministic across processes
/// and toolchain versions (unlike `DefaultHasher`), which recovery
/// equivalence checks require.
#[derive(Debug, Clone)]
pub(crate) struct Fnv64(u64);

impl Fnv64 {
    pub(crate) fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
    pub(crate) fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= u64::from(x);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    pub(crate) fn u8(&mut self, v: u8) {
        self.bytes(&[v]);
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }
    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }
    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

// ----------------------------------------------------------------------
// Binary encoding helpers (little-endian throughout)
// ----------------------------------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_qname(out: &mut Vec<u8>, q: &QName) {
    match &q.prefix {
        Some(p) => {
            out.push(1);
            put_str(out, p);
        }
        None => out.push(0),
    }
    put_str(out, &q.local);
}

/// A bounds-checked little-endian reader over a record payload.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn corrupt() -> XdmError {
        XdmError::new("XQB0060", "corrupt WAL record payload")
    }

    pub(crate) fn u8(&mut self) -> XdmResult<u8> {
        let b = *self.buf.get(self.pos).ok_or_else(Self::corrupt)?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn u32(&mut self) -> XdmResult<u32> {
        let end = self.pos.checked_add(4).ok_or_else(Self::corrupt)?;
        let b = self.buf.get(self.pos..end).ok_or_else(Self::corrupt)?;
        self.pos = end;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> XdmResult<u64> {
        let end = self.pos.checked_add(8).ok_or_else(Self::corrupt)?;
        let b = self.buf.get(self.pos..end).ok_or_else(Self::corrupt)?;
        self.pos = end;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    pub(crate) fn str(&mut self) -> XdmResult<String> {
        let len = self.u32()? as usize;
        let end = self.pos.checked_add(len).ok_or_else(Self::corrupt)?;
        let b = self.buf.get(self.pos..end).ok_or_else(Self::corrupt)?;
        self.pos = end;
        String::from_utf8(b.to_vec()).map_err(|_| Self::corrupt())
    }

    pub(crate) fn qname(&mut self) -> XdmResult<QName> {
        let prefix = if self.u8()? == 1 {
            Some(self.str()?)
        } else {
            None
        };
        let local = self.str()?;
        Ok(QName { prefix, local })
    }

    pub(crate) fn node(&mut self) -> XdmResult<NodeId> {
        Ok(NodeId(self.u32()?))
    }

    pub(crate) fn nodes(&mut self) -> XdmResult<Vec<NodeId>> {
        let n = self.u32()? as usize;
        // A corrupt count must not preallocate unbounded memory.
        if n > self.buf.len().saturating_sub(self.pos) / 4 + 1 {
            return Err(Self::corrupt());
        }
        (0..n).map(|_| self.node()).collect()
    }
}

fn put_nodes(out: &mut Vec<u8>, ids: &[NodeId]) {
    put_u32(out, ids.len() as u32);
    for id in ids {
        put_u32(out, id.0);
    }
}

// Record payload tags.
const TAG_OP: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_SEAL: u8 = 3;
/// Interleaved-committer info: which server session committed the batch
/// that follows, and against which base epoch it validated (ISSUE 9).
/// Purely diagnostic — replay counts these but applies nothing, and a
/// torn info record drops the tail exactly like any other record.
const TAG_INFO: u8 = 4;

// Op tags (first byte after TAG_OP).
const OP_ALLOC: u8 = 1;
const OP_INSERT: u8 = 2;
const OP_ATTACH_ATTR: u8 = 3;
const OP_DETACH: u8 = 4;
const OP_RENAME: u8 = 5;
const OP_SET_TEXT: u8 = 6;
const OP_SET_ATTR_VALUE: u8 = 7;
const OP_COLLECT: u8 = 8;

// At-birth node kind tags (containers are born empty, so Alloc never
// serializes child/attribute lists; the checkpoint format has its own
// full encoding in store.rs).
const KIND_DOCUMENT: u8 = 0;
const KIND_ELEMENT: u8 = 1;
const KIND_ATTRIBUTE: u8 = 2;
const KIND_TEXT: u8 = 3;
const KIND_COMMENT: u8 = 4;
const KIND_PI: u8 = 5;

impl RedoOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RedoOp::Alloc { id, kind } => {
                out.push(OP_ALLOC);
                put_u32(out, id.0);
                match kind {
                    BirthKind::Document => out.push(KIND_DOCUMENT),
                    BirthKind::Element { name } => {
                        out.push(KIND_ELEMENT);
                        put_qname(out, name);
                    }
                    BirthKind::Attribute { name, value } => {
                        out.push(KIND_ATTRIBUTE);
                        put_qname(out, name);
                        put_str(out, value);
                    }
                    BirthKind::Text { content } => {
                        out.push(KIND_TEXT);
                        put_str(out, content);
                    }
                    BirthKind::Comment { content } => {
                        out.push(KIND_COMMENT);
                        put_str(out, content);
                    }
                    BirthKind::Pi { target, content } => {
                        out.push(KIND_PI);
                        put_str(out, target);
                        put_str(out, content);
                    }
                }
            }
            RedoOp::Insert {
                seq,
                parent,
                anchor,
            } => {
                out.push(OP_INSERT);
                put_u32(out, parent.0);
                match anchor {
                    InsertAnchor::First => out.push(0),
                    InsertAnchor::Last => out.push(1),
                    InsertAnchor::After(n) => {
                        out.push(2);
                        put_u32(out, n.0);
                    }
                }
                put_nodes(out, seq);
            }
            RedoOp::AttachAttr { element, attr } => {
                out.push(OP_ATTACH_ATTR);
                put_u32(out, element.0);
                put_u32(out, attr.0);
            }
            RedoOp::Detach { node } => {
                out.push(OP_DETACH);
                put_u32(out, node.0);
            }
            RedoOp::Rename { node, name } => {
                out.push(OP_RENAME);
                put_u32(out, node.0);
                put_qname(out, name);
            }
            RedoOp::SetText { node, content } => {
                out.push(OP_SET_TEXT);
                put_u32(out, node.0);
                put_str(out, content);
            }
            RedoOp::SetAttrValue { node, value } => {
                out.push(OP_SET_ATTR_VALUE);
                put_u32(out, node.0);
                put_str(out, value);
            }
            RedoOp::Collect { ids } => {
                out.push(OP_COLLECT);
                put_nodes(out, ids);
            }
        }
    }

    fn decode(c: &mut Cursor<'_>) -> XdmResult<RedoOp> {
        let op = match c.u8()? {
            OP_ALLOC => {
                let id = c.node()?;
                let kind = match c.u8()? {
                    KIND_DOCUMENT => BirthKind::Document,
                    KIND_ELEMENT => BirthKind::Element { name: c.qname()? },
                    KIND_ATTRIBUTE => BirthKind::Attribute {
                        name: c.qname()?,
                        value: c.str()?,
                    },
                    KIND_TEXT => BirthKind::Text { content: c.str()? },
                    KIND_COMMENT => BirthKind::Comment { content: c.str()? },
                    KIND_PI => BirthKind::Pi {
                        target: c.str()?,
                        content: c.str()?,
                    },
                    _ => return Err(Cursor::corrupt()),
                };
                RedoOp::Alloc { id, kind }
            }
            OP_INSERT => {
                let parent = c.node()?;
                let anchor = match c.u8()? {
                    0 => InsertAnchor::First,
                    1 => InsertAnchor::Last,
                    2 => InsertAnchor::After(c.node()?),
                    _ => return Err(Cursor::corrupt()),
                };
                RedoOp::Insert {
                    parent,
                    anchor,
                    seq: c.nodes()?,
                }
            }
            OP_ATTACH_ATTR => RedoOp::AttachAttr {
                element: c.node()?,
                attr: c.node()?,
            },
            OP_DETACH => RedoOp::Detach { node: c.node()? },
            OP_RENAME => RedoOp::Rename {
                node: c.node()?,
                name: c.qname()?,
            },
            OP_SET_TEXT => RedoOp::SetText {
                node: c.node()?,
                content: c.str()?,
            },
            OP_SET_ATTR_VALUE => RedoOp::SetAttrValue {
                node: c.node()?,
                value: c.str()?,
            },
            OP_COLLECT => RedoOp::Collect { ids: c.nodes()? },
            _ => return Err(Cursor::corrupt()),
        };
        Ok(op)
    }
}

// ----------------------------------------------------------------------
// The writer
// ----------------------------------------------------------------------

/// Receipt of one durable commit (returned by `Store::wal_commit`; the
/// engine turns these into `engine.wal.*` counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitReceipt {
    /// Log sequence number of the commit marker.
    pub lsn: u64,
    /// Redo records the batch flushed (the marker excluded).
    pub records: u64,
    /// Bytes appended to the log, framing included.
    pub bytes: u64,
    /// Whether this commit fsynced the log.
    pub fsynced: bool,
}

/// What recovery found (returned by [`Store::open_durable`]).
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Committed batches replayed from the log.
    pub replayed_commits: u64,
    /// Redo records applied across those batches.
    pub replayed_records: u64,
    /// Corrupt-tail events: each one dropped a torn/unchecksummable/
    /// unmarked suffix of the log (0 on a clean log).
    pub tail_dropped: u64,
    /// Whether the store was seeded from `checkpoint.bin`.
    pub from_checkpoint: bool,
    /// Interleaved-committer info records seen in the log (written by the
    /// server's concurrent-writer commits; see docs/SERVER.md).
    pub committer_records: u64,
    /// Human-readable warnings, one per graceful degradation.
    pub warnings: Vec<String>,
}

/// The attached redo-log writer. Owned by [`Store`]; never cloned (a
/// cloned store is a fork and gets `wal: None`).
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    file: File,
    sync: SyncMode,
    /// LSN of the last commit marker written.
    lsn: u64,
    /// Ops recorded since the last flushed commit marker.
    pending: Vec<RedoOp>,
    /// Committer info `(session, base_epoch)` to stamp onto the next
    /// commit (set by the server before a concurrent-writer commit).
    pending_info: Option<(u64, u64)>,
    /// `pending.len()` at each open undo frame; rollback truncates.
    marks: Vec<usize>,
    commits_since_sync: u64,
    commits_since_checkpoint: u64,
    /// Checkpoint after this many commits (`XQB_CHECKPOINT_EVERY`;
    /// 0 disables automatic checkpoints).
    checkpoint_every: u64,
    /// Fault injection (`XQB_WAL_CRASH_AT`): abort the process once this
    /// many cumulative log bytes have been written, leaving a genuinely
    /// torn record behind. Counted across truncations, so offsets are
    /// stable even when checkpoints shrink the file.
    crash_after: Option<u64>,
    bytes_written: u64,
    /// Fault injection (`XQB_WAL_CRASH_CHECKPOINT`): 1 aborts between
    /// checkpoint rename and log truncation; 2 aborts mid-snapshot-write.
    crash_checkpoint: u8,
}

fn io_err(context: &str, e: std::io::Error) -> XdmError {
    XdmError::new(
        "XQB0060",
        format!("durable store I/O error ({context}): {e}"),
    )
}

impl Wal {
    /// Path of the redo log inside `dir`.
    pub fn log_path(dir: &Path) -> PathBuf {
        dir.join("wal.log")
    }

    /// Path of the checkpoint snapshot inside `dir`.
    pub fn checkpoint_path(dir: &Path) -> PathBuf {
        dir.join("checkpoint.bin")
    }

    fn env_knobs() -> (u64, Option<u64>, u8) {
        let every = std::env::var("XQB_CHECKPOINT_EVERY")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        let crash_at = std::env::var("XQB_WAL_CRASH_AT")
            .ok()
            .and_then(|v| v.parse().ok());
        let crash_ckpt = std::env::var("XQB_WAL_CRASH_CHECKPOINT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        (every, crash_at, crash_ckpt)
    }

    /// Open (creating or appending to) the log in `dir`; `existing_lsn`
    /// is the last committed LSN recovery observed, and the file is
    /// truncated to `valid_len` first (dropping any corrupt tail so new
    /// records append to a clean prefix).
    pub(crate) fn open(
        dir: &Path,
        sync: SyncMode,
        existing_lsn: u64,
        valid_len: Option<u64>,
    ) -> XdmResult<Wal> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create dir", e))?;
        let path = Self::log_path(dir);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open log", e))?;
        let len = file.metadata().map_err(|e| io_err("stat log", e))?.len();
        let mut start = len;
        if let Some(v) = valid_len {
            if v < len {
                file.set_len(v).map_err(|e| io_err("truncate tail", e))?;
                start = v;
            }
        }
        if start < LOG_MAGIC.len() as u64 {
            file.set_len(0).map_err(|e| io_err("reset log", e))?;
            file.seek(SeekFrom::Start(0))
                .map_err(|e| io_err("seek", e))?;
            file.write_all(LOG_MAGIC)
                .map_err(|e| io_err("write header", e))?;
        } else {
            file.seek(SeekFrom::Start(start))
                .map_err(|e| io_err("seek", e))?;
        }
        let (checkpoint_every, crash_after, crash_checkpoint) = Self::env_knobs();
        Ok(Wal {
            dir: dir.to_path_buf(),
            file,
            sync,
            lsn: existing_lsn,
            pending: Vec::new(),
            pending_info: None,
            marks: Vec::new(),
            commits_since_sync: 0,
            commits_since_checkpoint: 0,
            checkpoint_every,
            crash_after,
            bytes_written: 0,
            crash_checkpoint,
        })
    }

    /// The store directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The last committed log sequence number.
    pub fn lsn(&self) -> u64 {
        self.lsn
    }

    pub(crate) fn set_sync(&mut self, sync: SyncMode) {
        self.sync = sync;
    }

    pub(crate) fn sync_mode(&self) -> SyncMode {
        self.sync
    }

    pub(crate) fn record(&mut self, op: RedoOp) {
        self.pending.push(op);
    }

    /// Stamp the next commit with an interleaved-committer info record.
    pub(crate) fn note_committer(&mut self, session: u64, base_epoch: u64) {
        self.pending_info = Some((session, base_epoch));
    }

    pub(crate) fn note_begin_frame(&mut self) {
        self.marks.push(self.pending.len());
    }

    pub(crate) fn note_commit_frame(&mut self) {
        self.marks.pop();
    }

    pub(crate) fn note_rollback_frame(&mut self) {
        if let Some(mark) = self.marks.pop() {
            self.pending.truncate(mark);
        }
    }

    /// Has anything been appended since this log was opened? (Gates the
    /// shutdown seal: re-opening a store read-only must not dirty it.)
    pub(crate) fn dirty_since_open(&self) -> bool {
        self.bytes_written > 0
    }

    /// Write one framed record, honoring the crash-injection threshold:
    /// if this write would cross `crash_after` cumulative bytes, only the
    /// prefix up to the threshold reaches the file (a genuinely torn
    /// record) and the process aborts.
    fn write_record(&mut self, payload: &[u8]) -> XdmResult<()> {
        let mut framed = Vec::with_capacity(payload.len() + 8);
        put_u32(&mut framed, payload.len() as u32);
        put_u32(&mut framed, crc32(payload));
        framed.extend_from_slice(payload);
        if let Some(limit) = self.crash_after {
            let remaining = limit.saturating_sub(self.bytes_written) as usize;
            if framed.len() > remaining {
                let _ = self.file.write_all(&framed[..remaining]);
                let _ = self.file.sync_data();
                std::process::abort();
            }
        }
        self.file
            .write_all(&framed)
            .map_err(|e| io_err("append record", e))?;
        self.bytes_written += framed.len() as u64;
        Ok(())
    }

    /// Flush pending ops and a commit marker; fsync per the sync mode.
    /// A no-op (returns `None`) when nothing was recorded since the last
    /// marker — read-only runs cost nothing.
    pub(crate) fn commit_pending(&mut self) -> XdmResult<Option<CommitReceipt>> {
        debug_assert!(self.marks.is_empty(), "wal commit inside an open frame");
        if self.pending.is_empty() {
            self.pending_info = None;
            return Ok(None);
        }
        let ops = std::mem::take(&mut self.pending);
        let before = self.bytes_written;
        if let Some((session, base_epoch)) = self.pending_info.take() {
            let mut payload = vec![TAG_INFO];
            put_u64(&mut payload, session);
            put_u64(&mut payload, base_epoch);
            self.write_record(&payload)?;
        }
        for op in &ops {
            let mut payload = vec![TAG_OP];
            op.encode(&mut payload);
            self.write_record(&payload)?;
        }
        self.lsn += 1;
        let mut marker = vec![TAG_COMMIT];
        put_u64(&mut marker, self.lsn);
        self.write_record(&marker)?;
        self.commits_since_sync += 1;
        self.commits_since_checkpoint += 1;
        let fsynced = match self.sync {
            SyncMode::Always => true,
            SyncMode::Batch => self.commits_since_sync >= BATCH_EVERY,
            SyncMode::Off => false,
        };
        if fsynced {
            self.file.sync_data().map_err(|e| io_err("fsync", e))?;
            self.commits_since_sync = 0;
        }
        Ok(Some(CommitReceipt {
            lsn: self.lsn,
            records: ops.len() as u64,
            bytes: self.bytes_written - before,
            fsynced,
        }))
    }

    /// Append a seal record carrying the store fingerprint (written on
    /// clean shutdown; recovery verifies it when present).
    pub(crate) fn seal(&mut self, fingerprint: u64) -> XdmResult<()> {
        debug_assert!(self.pending.is_empty(), "seal with pending ops");
        let mut payload = vec![TAG_SEAL];
        put_u64(&mut payload, fingerprint);
        self.write_record(&payload)?;
        if !matches!(self.sync, SyncMode::Off) {
            self.file.sync_data().map_err(|e| io_err("fsync seal", e))?;
        }
        Ok(())
    }

    /// Is an automatic checkpoint due?
    pub(crate) fn checkpoint_due(&self) -> bool {
        self.checkpoint_every > 0 && self.commits_since_checkpoint >= self.checkpoint_every
    }

    /// Install `snapshot` as the new checkpoint and truncate the log:
    /// write to `checkpoint.tmp`, fsync, rename over `checkpoint.bin`,
    /// then cut the log back to its header. A crash between rename and
    /// truncation is safe: replay skips commits with `lsn ≤` the
    /// snapshot's, so nothing is applied twice.
    pub(crate) fn install_checkpoint(&mut self, snapshot: &[u8]) -> XdmResult<()> {
        debug_assert!(self.pending.is_empty(), "checkpoint with pending ops");
        let tmp = self.dir.join("checkpoint.tmp");
        {
            let mut f = File::create(&tmp).map_err(|e| io_err("create checkpoint.tmp", e))?;
            if self.crash_checkpoint == 2 {
                // Torn snapshot write: half the body, then abort.
                let _ = f.write_all(&snapshot[..snapshot.len() / 2]);
                let _ = f.sync_data();
                std::process::abort();
            }
            f.write_all(snapshot)
                .map_err(|e| io_err("write checkpoint", e))?;
            f.sync_data().map_err(|e| io_err("fsync checkpoint", e))?;
        }
        std::fs::rename(&tmp, Self::checkpoint_path(&self.dir))
            .map_err(|e| io_err("rename checkpoint", e))?;
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        if self.crash_checkpoint == 1 {
            // Crash in the checkpoint-crossing window: snapshot installed,
            // log not yet truncated.
            std::process::abort();
        }
        self.file
            .set_len(LOG_MAGIC.len() as u64)
            .map_err(|e| io_err("truncate log", e))?;
        self.file
            .seek(SeekFrom::Start(LOG_MAGIC.len() as u64))
            .map_err(|e| io_err("seek", e))?;
        if !matches!(self.sync, SyncMode::Off) {
            self.file
                .sync_data()
                .map_err(|e| io_err("fsync truncated log", e))?;
        }
        self.commits_since_checkpoint = 0;
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Recovery
// ----------------------------------------------------------------------

/// Rebuild a store from `dir`: load `checkpoint.bin` if present (its
/// CRC and fingerprint are verified), then replay `wal.log` through the
/// real store mutators, applying each batch only when a valid commit
/// marker follows it. A corrupt tail — torn record, failed checksum,
/// trailing ops with no marker — is dropped with a warning and counted,
/// never an abort. Returns the store (log re-attached for appending),
/// the recovery report.
pub(crate) fn recover(dir: &Path, sync: SyncMode) -> XdmResult<(Store, RecoveryReport)> {
    let mut report = RecoveryReport::default();
    let mut store = Store::new();
    let mut base_lsn = 0u64;

    let ckpt_path = Wal::checkpoint_path(dir);
    if ckpt_path.exists() {
        let bytes = std::fs::read(&ckpt_path).map_err(|e| io_err("read checkpoint", e))?;
        let (s, lsn) = Store::from_snapshot(&bytes)?;
        store = s;
        base_lsn = lsn;
        report.from_checkpoint = true;
    }

    let log_path = Wal::log_path(dir);
    let mut last_lsn = base_lsn;
    let mut valid_len: Option<u64> = None;
    if log_path.exists() {
        let bytes = std::fs::read(&log_path).map_err(|e| io_err("read log", e))?;
        let (applied_lsn, vlen) = replay_log(&bytes, &mut store, base_lsn, &mut report)?;
        last_lsn = applied_lsn;
        valid_len = Some(vlen);
    }

    let wal = Wal::open(dir, sync, last_lsn, valid_len)?;
    store.attach_wal(Box::new(wal));
    Ok((store, report))
}

/// Replay `bytes` (the whole log file) into `store`. Returns the last
/// applied LSN and the byte offset after the last valid record (the
/// length the file should be truncated to before appending).
fn replay_log(
    bytes: &[u8],
    store: &mut Store,
    base_lsn: u64,
    report: &mut RecoveryReport,
) -> XdmResult<(u64, u64)> {
    let drop_tail = |report: &mut RecoveryReport, why: String| {
        report.tail_dropped += 1;
        report.warnings.push(why);
    };

    if bytes.len() < LOG_MAGIC.len() || &bytes[..LOG_MAGIC.len()] != LOG_MAGIC {
        if !bytes.is_empty() {
            drop_tail(
                report,
                format!("redo log header invalid ({} bytes dropped)", bytes.len()),
            );
        }
        return Ok((base_lsn, 0));
    }

    let mut pos = LOG_MAGIC.len();
    let mut valid_len = pos as u64;
    let mut last_lsn = base_lsn;
    // Ops seen since the last commit marker, with the count of records
    // they span (for the warning message).
    let mut batch: Vec<RedoOp> = Vec::new();

    loop {
        if pos == bytes.len() {
            break; // clean end
        }
        if pos + 8 > bytes.len() {
            drop_tail(report, "torn record framing at log tail".to_string());
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len == 0 || len > MAX_RECORD {
            drop_tail(
                report,
                format!("implausible record length {len} at offset {pos}"),
            );
            break;
        }
        let body_start = pos + 8;
        let body_end = match body_start.checked_add(len as usize) {
            Some(e) if e <= bytes.len() => e,
            _ => {
                drop_tail(report, format!("torn record at offset {pos}"));
                break;
            }
        };
        let payload = &bytes[body_start..body_end];
        if crc32(payload) != crc {
            drop_tail(report, format!("checksum mismatch at offset {pos}"));
            break;
        }
        let mut c = Cursor::new(payload);
        let tag = match c.u8() {
            Ok(t) => t,
            Err(_) => {
                drop_tail(report, format!("empty record at offset {pos}"));
                break;
            }
        };
        match tag {
            TAG_OP => match RedoOp::decode(&mut c) {
                Ok(op) if c.done() => batch.push(op),
                _ => {
                    drop_tail(report, format!("undecodable redo op at offset {pos}"));
                    break;
                }
            },
            TAG_COMMIT => {
                let lsn = match c.u64() {
                    Ok(l) if c.done() => l,
                    _ => {
                        drop_tail(report, format!("malformed commit marker at offset {pos}"));
                        break;
                    }
                };
                if lsn <= base_lsn {
                    // Pre-checkpoint commit left behind by a crash between
                    // checkpoint install and log truncation: the snapshot
                    // already contains it.
                    batch.clear();
                } else {
                    store.begin_frame();
                    let n = batch.len() as u64;
                    let mut failed = None;
                    for op in batch.drain(..) {
                        if let Err(e) = store.apply_redo(&op) {
                            failed = Some(e);
                            break;
                        }
                    }
                    match failed {
                        None => {
                            store.commit_frame();
                            report.replayed_commits += 1;
                            report.replayed_records += n;
                            last_lsn = lsn;
                        }
                        Some(e) => {
                            store.rollback_frame();
                            drop_tail(
                                report,
                                format!("redo batch for lsn {lsn} failed to apply: {e}"),
                            );
                            break;
                        }
                    }
                }
                valid_len = body_end as u64;
            }
            TAG_INFO => {
                // session id + base epoch; diagnostic only. Not counted
                // into valid_len on its own: a committer record without
                // its commit marker is an uncommitted prefix.
                match (c.u64(), c.u64()) {
                    (Ok(_), Ok(_)) if c.done() => report.committer_records += 1,
                    _ => {
                        drop_tail(report, format!("malformed committer info at offset {pos}"));
                        break;
                    }
                }
            }
            TAG_SEAL => {
                let fp = match c.u64() {
                    Ok(f) if c.done() => f,
                    _ => {
                        drop_tail(report, format!("malformed seal record at offset {pos}"));
                        break;
                    }
                };
                if !batch.is_empty() {
                    drop_tail(report, "seal record follows unmarked ops".to_string());
                    break;
                }
                if store.fingerprint() != fp {
                    drop_tail(
                        report,
                        format!(
                            "seal fingerprint mismatch at offset {pos}: log says {fp:016x}, \
                             recovered store is {:016x}",
                            store.fingerprint()
                        ),
                    );
                } // state itself is CRC-verified per record; keep it either way
                valid_len = body_end as u64;
            }
            other => {
                drop_tail(
                    report,
                    format!("unknown record tag {other} at offset {pos}"),
                );
                break;
            }
        }
        pos = body_end;
    }

    if !batch.is_empty() {
        drop_tail(
            report,
            format!(
                "{} uncommitted trailing redo op(s) dropped (no commit marker)",
                batch.len()
            ),
        );
    }
    Ok((last_lsn, valid_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sync_mode_parse_roundtrip() {
        for m in [SyncMode::Always, SyncMode::Batch, SyncMode::Off] {
            assert_eq!(SyncMode::parse(&m.to_string()), Some(m));
        }
        assert_eq!(SyncMode::parse("sometimes"), None);
    }

    #[test]
    fn redo_op_encoding_roundtrip() {
        let ops = vec![
            RedoOp::Alloc {
                id: NodeId(7),
                kind: BirthKind::Element {
                    name: QName::prefixed("p", "x"),
                },
            },
            RedoOp::Alloc {
                id: NodeId(8),
                kind: BirthKind::Pi {
                    target: "t".into(),
                    content: "c".into(),
                },
            },
            RedoOp::Insert {
                seq: vec![NodeId(1), NodeId(2)],
                parent: NodeId(0),
                anchor: InsertAnchor::After(NodeId(9)),
            },
            RedoOp::AttachAttr {
                element: NodeId(3),
                attr: NodeId(4),
            },
            RedoOp::Detach { node: NodeId(5) },
            RedoOp::Rename {
                node: NodeId(6),
                name: QName::local("renamed"),
            },
            RedoOp::SetText {
                node: NodeId(1),
                content: "héllo".into(),
            },
            RedoOp::SetAttrValue {
                node: NodeId(2),
                value: String::new(),
            },
            RedoOp::Collect {
                ids: vec![NodeId(2), NodeId(1)],
            },
        ];
        for op in &ops {
            let mut buf = Vec::new();
            op.encode(&mut buf);
            let mut c = Cursor::new(&buf);
            let back = RedoOp::decode(&mut c).unwrap();
            assert!(c.done());
            assert_eq!(&back, op);
        }
    }

    #[test]
    fn cursor_rejects_truncation() {
        let mut buf = Vec::new();
        RedoOp::SetText {
            node: NodeId(1),
            content: "abcdef".into(),
        }
        .encode(&mut buf);
        for cut in 0..buf.len() {
            let mut c = Cursor::new(&buf[..cut]);
            assert!(RedoOp::decode(&mut c).is_err() || !c.done(), "cut at {cut}");
        }
    }

    #[test]
    fn fnv_is_stable() {
        let mut h = Fnv64::new();
        h.str("hello");
        h.u32(42);
        // Pinned: the fingerprint must be deterministic across processes
        // and toolchains (recovery equivalence depends on it).
        let first = h.finish();
        let mut h2 = Fnv64::new();
        h2.str("hello");
        h2.u32(42);
        assert_eq!(first, h2.finish());
        assert_ne!(first, Fnv64::new().finish());
    }
}
