//! Epoch-versioned snapshot publication (DESIGN.md §15).
//!
//! The COW paged store ([`crate::pages`], [`Store::snapshot`]) makes a
//! point-in-time fork cheap; this module adds the lifecycle around those
//! forks that a multi-session server needs:
//!
//! * a **writer** publishes a new version after every commit
//!   ([`VersionSet::publish`] — the new epoch becomes the latest);
//! * **readers** pin the latest version for the duration of one request
//!   ([`VersionSet::pin_latest`] — the returned guard keeps that exact
//!   version alive however many commits land meanwhile);
//! * old versions **retire when unpinned**: a superseded version is
//!   dropped as soon as its pin count reaches zero (and its pages free
//!   once no newer version shares them — that part is plain `Arc`
//!   reference counting inside the store).
//!
//! The set is generic over the snapshot payload so the engine layer can
//! version a store *plus* its session-visible bindings as one unit;
//! `xqdm` itself uses `VersionSet<Store>`.

use std::sync::{Arc, Mutex, MutexGuard};

/// One published version: the payload at a commit point.
struct Version<T> {
    epoch: u64,
    payload: Arc<T>,
    pins: usize,
}

struct Inner<T> {
    /// Live versions in ascending epoch order. The last entry is the
    /// latest and is never retired; earlier entries survive only while
    /// pinned.
    versions: Vec<Version<T>>,
    /// Total versions retired so far (observability).
    retired: u64,
}

impl<T> Inner<T> {
    /// Drop every superseded version whose pin count reached zero (any
    /// unpinned version *between* pinned ones retires too).
    fn retire(&mut self) {
        let latest_epoch = self.versions.last().expect("never empty").epoch;
        let before = self.versions.len();
        self.versions
            .retain(|v| v.pins > 0 || v.epoch == latest_epoch);
        self.retired += (before - self.versions.len()) as u64;
    }
}

/// A set of published snapshot versions with epoch pinning.
///
/// Cheap to share: the handle clones an `Arc`. All operations take one
/// short mutex hold — the payloads themselves are only ever read through
/// `Arc`s outside the lock.
pub struct VersionSet<T> {
    inner: Arc<Mutex<Inner<T>>>,
}

impl<T> Clone for VersionSet<T> {
    fn clone(&self) -> Self {
        VersionSet {
            inner: self.inner.clone(),
        }
    }
}

impl<T> VersionSet<T> {
    /// A set whose initial version (epoch 0) is `initial`.
    pub fn new(initial: T) -> VersionSet<T> {
        VersionSet {
            inner: Arc::new(Mutex::new(Inner {
                versions: vec![Version {
                    epoch: 0,
                    payload: Arc::new(initial),
                    pins: 0,
                }],
                retired: 0,
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Publish `payload` as the new latest version and return its epoch.
    /// Superseded versions with no pins retire immediately.
    pub fn publish(&self, payload: T) -> u64 {
        let mut inner = self.lock();
        let epoch = inner.versions.last().expect("never empty").epoch + 1;
        inner.versions.push(Version {
            epoch,
            payload: Arc::new(payload),
            pins: 0,
        });
        inner.retire();
        epoch
    }

    /// Pin the latest version: the returned guard holds that exact
    /// version (its epoch and payload) until dropped, whatever is
    /// published meanwhile.
    pub fn pin_latest(&self) -> Pinned<T> {
        let mut inner = self.lock();
        let v = inner.versions.last_mut().expect("never empty");
        v.pins += 1;
        Pinned {
            set: self.inner.clone(),
            epoch: v.epoch,
            payload: v.payload.clone(),
        }
    }

    /// The latest published epoch.
    pub fn latest_epoch(&self) -> u64 {
        self.lock().versions.last().expect("never empty").epoch
    }

    /// Total pins currently outstanding across all versions (the
    /// snapshot-pin gauge).
    pub fn pinned(&self) -> usize {
        self.lock().versions.iter().map(|v| v.pins).sum()
    }

    /// Number of versions currently retained (≥ 1; the latest plus any
    /// still-pinned ancestors).
    pub fn retained(&self) -> usize {
        self.lock().versions.len()
    }

    /// Total versions retired since construction.
    pub fn retired(&self) -> u64 {
        self.lock().retired
    }
}

/// A pinned version: keeps one published snapshot alive until dropped.
pub struct Pinned<T> {
    set: Arc<Mutex<Inner<T>>>,
    epoch: u64,
    payload: Arc<T>,
}

impl<T> Pinned<T> {
    /// The pinned epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The pinned payload (also available via `Deref`).
    pub fn payload(&self) -> &Arc<T> {
        &self.payload
    }
}

impl<T> std::ops::Deref for Pinned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.payload
    }
}

impl<T> Clone for Pinned<T> {
    fn clone(&self) -> Self {
        let mut inner = self.set.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = inner.versions.iter_mut().find(|v| v.epoch == self.epoch) {
            v.pins += 1;
        }
        Pinned {
            set: self.set.clone(),
            epoch: self.epoch,
            payload: self.payload.clone(),
        }
    }
}

impl<T> Drop for Pinned<T> {
    fn drop(&mut self) {
        let mut inner = self.set.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = inner.versions.iter_mut().find(|v| v.epoch == self.epoch) {
            v.pins = v.pins.saturating_sub(1);
        }
        if inner.versions.len() > 1 {
            inner.retire();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_advances_epoch_and_retires_unpinned() {
        let set = VersionSet::new(0u32);
        assert_eq!(set.latest_epoch(), 0);
        assert_eq!(set.publish(1), 1);
        assert_eq!(set.publish(2), 2);
        // Nothing pinned: only the latest survives.
        assert_eq!(set.retained(), 1);
        assert_eq!(set.retired(), 2);
        assert_eq!(*set.pin_latest().payload().as_ref(), 2);
    }

    #[test]
    fn pin_holds_version_across_publishes() {
        let set = VersionSet::new(10u32);
        let pin = set.pin_latest();
        assert_eq!(pin.epoch(), 0);
        set.publish(11);
        set.publish(12);
        // The pinned epoch-0 version survives; the unpinned epoch-1
        // version retired on the epoch-2 publish.
        assert_eq!(*pin.payload().as_ref(), 10);
        assert_eq!(set.retained(), 2);
        assert_eq!(set.pinned(), 1);
        drop(pin);
        // Unpinning retires the superseded version.
        assert_eq!(set.retained(), 1);
        assert_eq!(set.pinned(), 0);
        assert_eq!(set.latest_epoch(), 2);
    }

    #[test]
    fn clone_pin_counts_and_releases() {
        let set = VersionSet::new(0u32);
        let a = set.pin_latest();
        let b = a.clone();
        set.publish(1);
        assert_eq!(set.pinned(), 2);
        assert_eq!(set.retained(), 2);
        drop(a);
        assert_eq!(set.retained(), 2, "still pinned by the clone");
        drop(b);
        assert_eq!(set.retained(), 1);
    }
}
