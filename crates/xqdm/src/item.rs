//! Items and sequences.
//!
//! An XQuery value is a flat sequence of items; an item is a node reference
//! or an atomic value. The operations that need to look *through* node
//! references (atomization, effective boolean value, string value,
//! deep-equal) take the [`Store`] explicitly — the same store-threading
//! discipline as the paper's semantic judgment.

use crate::atomic::{general_compare, Atomic, CompareOp};
use crate::error::{XdmError, XdmResult};
use crate::node::{NodeId, NodeKind};
use crate::store::Store;

/// A single item: a node in the store or an atomic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A node reference.
    Node(NodeId),
    /// An atomic value.
    Atomic(Atomic),
}

impl Item {
    /// Convenience constructor for integer items.
    pub fn integer(i: i64) -> Item {
        Item::Atomic(Atomic::Integer(i))
    }

    /// Convenience constructor for string items.
    pub fn string(s: impl Into<String>) -> Item {
        Item::Atomic(Atomic::String(s.into()))
    }

    /// Convenience constructor for boolean items.
    pub fn boolean(b: bool) -> Item {
        Item::Atomic(Atomic::Boolean(b))
    }

    /// Convenience constructor for double items.
    pub fn double(d: f64) -> Item {
        Item::Atomic(Atomic::Double(d))
    }

    /// The node id, if this is a node item.
    pub fn as_node(&self) -> Option<NodeId> {
        match self {
            Item::Node(n) => Some(*n),
            Item::Atomic(_) => None,
        }
    }

    /// Atomize this item: nodes yield their typed value (untypedAtomic of
    /// the string value in our schema-less setting), atomics yield
    /// themselves.
    pub fn atomize(&self, store: &Store) -> XdmResult<Atomic> {
        match self {
            Item::Atomic(a) => Ok(a.clone()),
            Item::Node(n) => Ok(Atomic::Untyped(store.string_value(*n)?)),
        }
    }

    /// The item's string value (`fn:string`).
    pub fn string_value(&self, store: &Store) -> XdmResult<String> {
        match self {
            Item::Atomic(a) => Ok(a.string_value()),
            Item::Node(n) => store.string_value(*n),
        }
    }
}

/// A sequence of items — the universal value shape of XQuery.
///
/// Small-vector layout (DESIGN.md §14): XQuery evaluation is dominated
/// by empty and one-or-two-item values (every arithmetic operand, every
/// predicate result, every path step over a single node), so sequences
/// of up to two items are stored inline and only longer ones spill to a
/// heap `Vec`. The representation is private; the sequence presents
/// itself as a slice (`Deref<Target = [Item]>`) plus `push`/`extend`/
/// iterator impls, so most code is representation-oblivious.
#[derive(Clone, Default)]
pub struct Sequence(Repr);

#[derive(Clone, Default)]
enum Repr {
    #[default]
    Empty,
    One(Item),
    Two([Item; 2]),
    Many(Vec<Item>),
}

impl Sequence {
    /// The empty sequence.
    pub const fn new() -> Sequence {
        Sequence(Repr::Empty)
    }

    /// A singleton sequence.
    pub fn one(item: Item) -> Sequence {
        Sequence(Repr::One(item))
    }

    /// An empty sequence expecting `n` items. Spills straight to the
    /// heap representation past the inline capacity so the fill loop
    /// does not re-box the first two items.
    pub fn with_capacity(n: usize) -> Sequence {
        if n > 2 {
            Sequence(Repr::Many(Vec::with_capacity(n)))
        } else {
            Sequence::new()
        }
    }

    /// View the items as a slice (also available through `Deref`).
    pub fn as_slice(&self) -> &[Item] {
        match &self.0 {
            Repr::Empty => &[],
            Repr::One(item) => std::slice::from_ref(item),
            Repr::Two(pair) => &pair[..],
            Repr::Many(v) => v,
        }
    }

    /// View the items as a mutable slice (length cannot change).
    pub fn as_mut_slice(&mut self) -> &mut [Item] {
        match &mut self.0 {
            Repr::Empty => &mut [],
            Repr::One(item) => std::slice::from_mut(item),
            Repr::Two(pair) => &mut pair[..],
            Repr::Many(v) => v,
        }
    }

    /// Append one item, spilling inline storage to the heap on the
    /// third.
    pub fn push(&mut self, item: Item) {
        self.0 = match std::mem::take(&mut self.0) {
            Repr::Empty => Repr::One(item),
            Repr::One(a) => Repr::Two([a, item]),
            Repr::Two([a, b]) => Repr::Many(vec![a, b, item]),
            Repr::Many(mut v) => {
                v.push(item);
                Repr::Many(v)
            }
        };
    }

    /// Remove and return the last item.
    pub fn pop(&mut self) -> Option<Item> {
        let (next, popped) = match std::mem::take(&mut self.0) {
            Repr::Empty => (Repr::Empty, None),
            Repr::One(a) => (Repr::Empty, Some(a)),
            Repr::Two([a, b]) => (Repr::One(a), Some(b)),
            Repr::Many(mut v) => {
                let last = v.pop();
                (Repr::Many(v), last)
            }
        };
        self.0 = next;
        popped
    }

    /// Drop all items.
    pub fn clear(&mut self) {
        // Keep a spilled Vec's capacity: a cleared sequence is usually
        // about to be refilled to a similar length.
        if let Repr::Many(v) = &mut self.0 {
            v.clear();
        } else {
            self.0 = Repr::Empty;
        }
    }

    /// Convert into a plain `Vec` (allocates only if still inline).
    pub fn into_vec(self) -> Vec<Item> {
        match self.0 {
            Repr::Empty => Vec::new(),
            Repr::One(a) => vec![a],
            Repr::Two([a, b]) => vec![a, b],
            Repr::Many(v) => v,
        }
    }
}

impl std::ops::Deref for Sequence {
    type Target = [Item];
    fn deref(&self) -> &[Item] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for Sequence {
    fn deref_mut(&mut self) -> &mut [Item] {
        self.as_mut_slice()
    }
}

impl std::fmt::Debug for Sequence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl PartialEq for Sequence {
    fn eq(&self, other: &Sequence) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Vec<Item>> for Sequence {
    fn eq(&self, other: &Vec<Item>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Sequence> for Vec<Item> {
    fn eq(&self, other: &Sequence) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<Item>> for Sequence {
    fn from(v: Vec<Item>) -> Sequence {
        match v.len() {
            0 => Sequence::new(),
            1 | 2 => v.into_iter().collect(),
            _ => Sequence(Repr::Many(v)),
        }
    }
}

impl From<Item> for Sequence {
    fn from(item: Item) -> Sequence {
        Sequence::one(item)
    }
}

impl From<Sequence> for Vec<Item> {
    fn from(s: Sequence) -> Vec<Item> {
        s.into_vec()
    }
}

impl FromIterator<Item> for Sequence {
    fn from_iter<I: IntoIterator<Item = Item>>(iter: I) -> Sequence {
        let mut s = Sequence::new();
        s.extend(iter);
        s
    }
}

impl Extend<Item> for Sequence {
    fn extend<I: IntoIterator<Item = Item>>(&mut self, iter: I) {
        let iter = iter.into_iter();
        if let Repr::Many(v) = &mut self.0 {
            v.extend(iter);
            return;
        }
        let (lower, _) = iter.size_hint();
        if self.len() + lower > 2 {
            // Will spill anyway: go to the heap once, with a capacity
            // hint, instead of re-boxing through the inline states.
            let mut v = std::mem::take(self).into_vec();
            v.reserve(lower);
            v.extend(iter);
            self.0 = Repr::Many(v);
        } else {
            for item in iter {
                self.push(item);
            }
        }
    }
}

/// Owned iterator over a [`Sequence`].
pub struct IntoIter(IterRepr);

enum IterRepr {
    Inline(std::array::IntoIter<Item, 2>, u8),
    Many(std::vec::IntoIter<Item>),
}

impl Iterator for IntoIter {
    type Item = Item;
    fn next(&mut self) -> Option<Item> {
        match &mut self.0 {
            IterRepr::Inline(it, live) => {
                if *live == 0 {
                    return None;
                }
                *live -= 1;
                it.next()
            }
            IterRepr::Many(it) => it.next(),
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match &self.0 {
            IterRepr::Inline(_, live) => *live as usize,
            IterRepr::Many(it) => it.len(),
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for IntoIter {}

impl IntoIterator for Sequence {
    type Item = Item;
    type IntoIter = IntoIter;
    fn into_iter(self) -> IntoIter {
        // Dummy fill for the unused inline slot: a cheap no-payload item.
        const PAD: Item = Item::Atomic(Atomic::Boolean(false));
        IntoIter(match self.0 {
            Repr::Empty => IterRepr::Inline([PAD, PAD].into_iter(), 0),
            Repr::One(a) => IterRepr::Inline([a, PAD].into_iter(), 1),
            Repr::Two(pair) => IterRepr::Inline(pair.into_iter(), 2),
            Repr::Many(v) => IterRepr::Many(v.into_iter()),
        })
    }
}

impl<'a> IntoIterator for &'a Sequence {
    type Item = &'a Item;
    type IntoIter = std::slice::Iter<'a, Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<'a> IntoIterator for &'a mut Sequence {
    type Item = &'a mut Item;
    type IntoIter = std::slice::IterMut<'a, Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_mut_slice().iter_mut()
    }
}

/// Build a [`Sequence`] from item expressions, like `vec!` — but small
/// literals stay in the inline representation with no heap allocation.
#[macro_export]
macro_rules! seq {
    () => { $crate::Sequence::new() };
    ($($x:expr),+ $(,)?) => {
        [$($x),+].into_iter().collect::<$crate::Sequence>()
    };
}

/// The empty sequence.
pub fn empty() -> Sequence {
    Sequence::new()
}

/// A singleton sequence.
pub fn singleton(item: Item) -> Sequence {
    Sequence::one(item)
}

/// Atomize a whole sequence.
pub fn atomize(seq: &[Item], store: &Store) -> XdmResult<Vec<Atomic>> {
    seq.iter().map(|i| i.atomize(store)).collect()
}

/// The effective boolean value of a sequence (XPath 2.0 §2.4.3):
/// empty → false; first item a node → true; singleton atomic → its EBV;
/// anything else → type error.
pub fn effective_boolean(seq: &[Item], _store: &Store) -> XdmResult<bool> {
    match seq {
        [] => Ok(false),
        [Item::Node(_), ..] => Ok(true),
        [Item::Atomic(a)] => a.effective_boolean(),
        _ => Err(XdmError::type_error(
            "effective boolean value of a multi-item atomic sequence",
        )),
    }
}

/// Expect at most one item (an "optional" value); error otherwise.
pub fn zero_or_one(seq: Sequence) -> XdmResult<Option<Item>> {
    let mut it = seq.into_iter();
    match (it.next(), it.next()) {
        (None, _) => Ok(None),
        (Some(x), None) => Ok(Some(x)),
        _ => Err(XdmError::type_error("expected at most one item")),
    }
}

/// Expect exactly one item.
pub fn exactly_one(seq: Sequence) -> XdmResult<Item> {
    zero_or_one(seq)?.ok_or_else(|| XdmError::type_error("expected exactly one item, got ()"))
}

/// Expect exactly one node item (the shape the update operators require of
/// their targets — the paper's metavariable `node` is normative).
pub fn exactly_one_node(seq: Sequence) -> XdmResult<NodeId> {
    match exactly_one(seq)? {
        Item::Node(n) => Ok(n),
        Item::Atomic(a) => Err(XdmError::type_error(format!(
            "expected a node, got atomic {}",
            a.type_name()
        ))),
    }
}

/// Expect a sequence of node items (the paper's `nodeseq`).
pub fn all_nodes(seq: &[Item]) -> XdmResult<Vec<NodeId>> {
    seq.iter()
        .map(|i| {
            i.as_node()
                .ok_or_else(|| XdmError::type_error("expected a sequence of nodes"))
        })
        .collect()
}

/// XPath general comparison over sequences: existential semantics — true if
/// any pair from the two sequences satisfies the comparison.
pub fn general_compare_seqs(
    op: CompareOp,
    left: &[Item],
    right: &[Item],
    store: &Store,
) -> XdmResult<bool> {
    let la = atomize(left, store)?;
    let ra = atomize(right, store)?;
    for a in &la {
        for b in &ra {
            if general_compare(op, a, b)? {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

/// `fn:deep-equal` on two sequences: pairwise equality, with nodes compared
/// structurally (name, attributes as a set, children in order) and atomics
/// by value comparison.
pub fn deep_equal(left: &[Item], right: &[Item], store: &Store) -> XdmResult<bool> {
    if left.len() != right.len() {
        return Ok(false);
    }
    for (a, b) in left.iter().zip(right) {
        let eq = match (a, b) {
            (Item::Atomic(x), Item::Atomic(y)) => {
                matches!(crate::atomic::value_compare(CompareOp::Eq, x, y), Ok(true))
            }
            (Item::Node(x), Item::Node(y)) => deep_equal_nodes(*x, *y, store)?,
            _ => false,
        };
        if !eq {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Structural equality of two nodes.
pub fn deep_equal_nodes(a: NodeId, b: NodeId, store: &Store) -> XdmResult<bool> {
    let (ka, kb) = (store.kind(a)?, store.kind(b)?);
    match (ka, kb) {
        (NodeKind::Text { content: x }, NodeKind::Text { content: y }) => Ok(x == y),
        (NodeKind::Comment { content: x }, NodeKind::Comment { content: y }) => Ok(x == y),
        (
            NodeKind::Pi {
                target: tx,
                content: cx,
            },
            NodeKind::Pi {
                target: ty,
                content: cy,
            },
        ) => Ok(tx == ty && cx == cy),
        (
            NodeKind::Attribute {
                name: nx,
                value: vx,
            },
            NodeKind::Attribute {
                name: ny,
                value: vy,
            },
        ) => Ok(nx == ny && vx == vy),
        (NodeKind::Document { .. }, NodeKind::Document { .. })
        | (NodeKind::Element { .. }, NodeKind::Element { .. }) => {
            if store.name(a)? != store.name(b)? {
                return Ok(false);
            }
            // Attributes: set semantics.
            let (aa, ab) = (store.attributes(a)?.to_vec(), store.attributes(b)?.to_vec());
            if aa.len() != ab.len() {
                return Ok(false);
            }
            for &x in &aa {
                let mut found = false;
                for &y in &ab {
                    if deep_equal_nodes(x, y, store)? {
                        found = true;
                        break;
                    }
                }
                if !found {
                    return Ok(false);
                }
            }
            // Children: ordered, ignoring comments/PIs per fn:deep-equal.
            let ca: Vec<NodeId> = significant_children(a, store)?;
            let cb: Vec<NodeId> = significant_children(b, store)?;
            if ca.len() != cb.len() {
                return Ok(false);
            }
            for (&x, &y) in ca.iter().zip(&cb) {
                if !deep_equal_nodes(x, y, store)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        _ => Ok(false),
    }
}

fn significant_children(n: NodeId, store: &Store) -> XdmResult<Vec<NodeId>> {
    Ok(store
        .children(n)?
        .iter()
        .copied()
        .filter(|&c| {
            !matches!(
                store.kind(c),
                Ok(NodeKind::Comment { .. }) | Ok(NodeKind::Pi { .. })
            )
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qname::QName;

    fn q(s: &str) -> QName {
        QName::local(s)
    }

    #[test]
    fn atomize_node_yields_untyped_string_value() {
        let mut s = Store::new();
        let e = s.new_element(q("e"));
        let t = s.new_text("42");
        s.append_child(e, t).unwrap();
        assert_eq!(
            Item::Node(e).atomize(&s).unwrap(),
            Atomic::Untyped("42".into())
        );
        assert_eq!(Item::integer(7).atomize(&s).unwrap(), Atomic::Integer(7));
    }

    #[test]
    fn ebv_rules() {
        let s = Store::new();
        assert!(!effective_boolean(&[], &s).unwrap());
        assert!(effective_boolean(&[Item::boolean(true)], &s).unwrap());
        assert!(!effective_boolean(&[Item::boolean(false)], &s).unwrap());
        assert!(effective_boolean(&[Item::integer(3)], &s).unwrap());
        let err = effective_boolean(&[Item::integer(1), Item::integer(2)], &s).unwrap_err();
        assert_eq!(err.code, "XPTY0004");
    }

    #[test]
    fn ebv_node_first_is_true() {
        let mut s = Store::new();
        let e = s.new_element(q("e"));
        assert!(effective_boolean(&[Item::Node(e), Item::integer(1)], &s).unwrap());
    }

    #[test]
    fn cardinality_helpers() {
        assert_eq!(zero_or_one(crate::seq![]).unwrap(), None);
        assert_eq!(
            zero_or_one(crate::seq![Item::integer(1)]).unwrap(),
            Some(Item::integer(1))
        );
        assert!(zero_or_one(crate::seq![Item::integer(1), Item::integer(2)]).is_err());
        assert!(exactly_one(crate::seq![]).is_err());
        assert!(exactly_one_node(crate::seq![Item::integer(1)]).is_err());
    }

    #[test]
    fn general_comparison_is_existential() {
        let s = Store::new();
        let left = vec![Item::integer(1), Item::integer(5)];
        let right = vec![Item::integer(5), Item::integer(9)];
        assert!(general_compare_seqs(CompareOp::Eq, &left, &right, &s).unwrap());
        assert!(!general_compare_seqs(CompareOp::Eq, &left[..1], &right, &s).unwrap());
        // () = anything is false.
        assert!(!general_compare_seqs(CompareOp::Eq, &[], &right, &s).unwrap());
    }

    #[test]
    fn deep_equal_elements() {
        let mut s = Store::new();
        let mk = |s: &mut Store, val: &str| {
            let e = s.new_element(q("e"));
            let a = s.new_attribute(q("k"), "v");
            let t = s.new_text(val);
            s.attach_attribute(e, a).unwrap();
            s.append_child(e, t).unwrap();
            e
        };
        let e1 = mk(&mut s, "x");
        let e2 = mk(&mut s, "x");
        let e3 = mk(&mut s, "y");
        assert!(deep_equal_nodes(e1, e2, &s).unwrap());
        assert!(!deep_equal_nodes(e1, e3, &s).unwrap());
        // Different node ids but equal structure: deep-equal, not identity.
        assert_ne!(e1, e2);
    }

    #[test]
    fn deep_equal_ignores_comments() {
        let mut s = Store::new();
        let e1 = s.new_element(q("e"));
        let e2 = s.new_element(q("e"));
        let c = s.new_comment("noise");
        s.append_child(e1, c).unwrap();
        assert!(deep_equal_nodes(e1, e2, &s).unwrap());
    }

    #[test]
    fn deep_equal_attribute_order_insensitive() {
        let mut s = Store::new();
        let e1 = s.new_element(q("e"));
        let e2 = s.new_element(q("e"));
        let a1 = s.new_attribute(q("a"), "1");
        let b1 = s.new_attribute(q("b"), "2");
        let a2 = s.new_attribute(q("a"), "1");
        let b2 = s.new_attribute(q("b"), "2");
        s.attach_attribute(e1, a1).unwrap();
        s.attach_attribute(e1, b1).unwrap();
        s.attach_attribute(e2, b2).unwrap();
        s.attach_attribute(e2, a2).unwrap();
        assert!(deep_equal_nodes(e1, e2, &s).unwrap());
    }

    #[test]
    fn deep_equal_sequences() {
        let s = Store::new();
        assert!(deep_equal(&[Item::integer(1)], &[Item::integer(1)], &s).unwrap());
        assert!(!deep_equal(&[Item::integer(1)], &[], &s).unwrap());
        assert!(!deep_equal(&[Item::integer(1)], &[Item::string("1")], &s).unwrap());
    }
}
