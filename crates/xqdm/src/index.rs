//! Secondary indexes over the node store (DESIGN.md §17).
//!
//! The [`IndexPlane`] is derived state maintained *inside* the paper's
//! update semantics: every mutator that changes a node's name, value or
//! liveness updates it in the same call, and every undo-journal replay
//! mirrors the inverse, so the plane is exact across snap rollback, OCC
//! retry and crash recovery (replay re-runs the same mutators; checkpoint
//! load rebuilds from the slots).
//!
//! Three components:
//!
//! * **Element-name index** — `QNameId → {alive element ids}`. Backs the
//!   `//T` descendant scans the planner marks `,idx`.
//! * **Attribute-value hash index** — `(QNameId, fnv64(value)) →
//!   {alive attribute ids}`. Backs `T[@a = "v"]` point lookups; buckets
//!   are keyed by a *hash* of the value, so lookups re-check the exact
//!   value (collisions cost a string compare, never a wrong answer).
//! * **Structural parent index** — the store's parent links themselves,
//!   consumed through the memoized containment checker the executor runs
//!   per scan (an index bucket is store-global; containment filters it
//!   to the scan's origin subtrees).
//!
//! Sharing follows the store's COW discipline: the outer maps and every
//! bucket sit behind [`Arc`]s, so [`crate::Store::snapshot`] forks the
//! whole plane by reference-count bumps and a writer unshares only the
//! buckets it touches (plus, once per fork, the outer map of `Arc`s).
//! The plane is *derived* — it never feeds the store fingerprint or any
//! on-disk format.

use crate::node::{NodeId, NodeKind};
use crate::pages::Pages;
use crate::symbols::QNameId;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// FNV-1a over an attribute value: the bucket key of the value index.
/// Stable across processes (same constants as the store fingerprint).
#[inline]
pub(crate) fn value_hash(value: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in value.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

type Bucket = Arc<HashSet<NodeId>>;

/// The store's secondary-index plane. Cheap to clone (Arc bumps); see
/// the module docs for the COW contract.
#[derive(Debug, Clone)]
pub(crate) struct IndexPlane {
    /// Alive elements by interned name.
    by_name: Arc<HashMap<QNameId, Bucket>>,
    /// Alive attributes by (interned name, value hash).
    by_attr: Arc<HashMap<(QNameId, u64), Bucket>>,
    /// Alive element count — the cost gate's selectivity denominator.
    elements: usize,
    /// Planner availability. Maintenance is unconditional (it is O(1)
    /// per affected mutation); this flag only gates plan selection.
    enabled: bool,
    /// Bumped on every enable/disable toggle; folded into plan-cache
    /// keys so a cached `,idx` plan can never outlive its index.
    epoch: u64,
}

impl Default for IndexPlane {
    fn default() -> Self {
        IndexPlane {
            by_name: Arc::new(HashMap::new()),
            by_attr: Arc::new(HashMap::new()),
            elements: 0,
            enabled: true,
            epoch: 0,
        }
    }
}

fn bucket_insert<K: std::hash::Hash + Eq + Copy>(
    map: &mut Arc<HashMap<K, Bucket>>,
    key: K,
    id: NodeId,
) {
    let map = Arc::make_mut(map);
    Arc::make_mut(map.entry(key).or_default()).insert(id);
}

fn bucket_remove<K: std::hash::Hash + Eq + Copy>(
    map: &mut Arc<HashMap<K, Bucket>>,
    key: K,
    id: NodeId,
) {
    let map = Arc::make_mut(map);
    if let Some(b) = map.get_mut(&key) {
        let set = Arc::make_mut(b);
        set.remove(&id);
        // Empty buckets are dropped so a rebuilt plane compares equal.
        if set.is_empty() {
            map.remove(&key);
        }
    }
}

impl IndexPlane {
    /// Is the plane visible to the planner?
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// Toggle planner availability; bumps the epoch on a real change.
    pub(crate) fn set_enabled(&mut self, on: bool) {
        if self.enabled != on {
            self.enabled = on;
            self.epoch += 1;
        }
    }

    /// The availability epoch (see field docs).
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Alive element count.
    pub(crate) fn elements(&self) -> usize {
        self.elements
    }

    /// A node came alive (allocation, or an undone collection): insert
    /// its index entries.
    pub(crate) fn note_birth(&mut self, kind: &NodeKind, id: NodeId) {
        match kind {
            NodeKind::Element { name, .. } => {
                bucket_insert(&mut self.by_name, *name, id);
                self.elements += 1;
            }
            NodeKind::Attribute { name, value } => {
                bucket_insert(&mut self.by_attr, (*name, value_hash(value)), id);
            }
            _ => {}
        }
    }

    /// A node died (collection, or an undone allocation): remove its
    /// index entries.
    pub(crate) fn note_death(&mut self, kind: &NodeKind, id: NodeId) {
        match kind {
            NodeKind::Element { name, .. } => {
                bucket_remove(&mut self.by_name, *name, id);
                self.elements -= 1;
            }
            NodeKind::Attribute { name, value } => {
                bucket_remove(&mut self.by_attr, (*name, value_hash(value)), id);
            }
            _ => {}
        }
    }

    /// An element was renamed (`from` → `to`).
    pub(crate) fn move_element(&mut self, from: QNameId, to: QNameId, id: NodeId) {
        if from != to {
            bucket_remove(&mut self.by_name, from, id);
            bucket_insert(&mut self.by_name, to, id);
        }
    }

    /// An attribute's bucket key changed (rename or value write).
    pub(crate) fn move_attr(&mut self, from: (QNameId, u64), to: (QNameId, u64), id: NodeId) {
        if from != to {
            bucket_remove(&mut self.by_attr, from, id);
            bucket_insert(&mut self.by_attr, to, id);
        }
    }

    /// Size of a name bucket (0 when absent — which *is* an answer: no
    /// alive element bears the name).
    pub(crate) fn name_len(&self, name: QNameId) -> usize {
        self.by_name.get(&name).map_or(0, |b| b.len())
    }

    /// The name bucket, if any.
    pub(crate) fn name_bucket(&self, name: QNameId) -> Option<&HashSet<NodeId>> {
        self.by_name.get(&name).map(|b| b.as_ref())
    }

    /// Size of a value bucket (hash collisions inflate this by design;
    /// the gate only needs an upper bound).
    pub(crate) fn attr_len(&self, name: QNameId, vh: u64) -> usize {
        self.by_attr.get(&(name, vh)).map_or(0, |b| b.len())
    }

    /// The value bucket, if any. Callers must re-check the exact value.
    pub(crate) fn attr_bucket(&self, name: QNameId, vh: u64) -> Option<&HashSet<NodeId>> {
        self.by_attr.get(&(name, vh)).map(|b| b.as_ref())
    }

    /// Rebuild from scratch over the slot space, preserving the
    /// availability state (checkpoint recovery, and the proptest oracle).
    pub(crate) fn rebuild(nodes: &Pages, enabled: bool, epoch: u64) -> IndexPlane {
        let mut plane = IndexPlane {
            enabled,
            epoch,
            ..IndexPlane::default()
        };
        for (i, d) in nodes.iter().enumerate() {
            if d.alive {
                plane.note_birth(&d.kind, NodeId(i as u32));
            }
        }
        plane
    }

    /// Does this plane hold exactly the entries a from-scratch rebuild
    /// would? (Availability state is ignored — it is not derived.)
    pub(crate) fn matches_rebuild(&self, nodes: &Pages) -> bool {
        let fresh = IndexPlane::rebuild(nodes, self.enabled, self.epoch);
        self.elements == fresh.elements
            && *self.by_name == *fresh.by_name
            && *self.by_attr == *fresh.by_attr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qname::QName;
    use crate::store::Store;

    #[test]
    fn value_hash_is_fnv1a() {
        // Pinned: the empty-string FNV-1a offset basis.
        assert_eq!(value_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(value_hash("a"), value_hash("b"));
    }

    #[test]
    fn maintenance_tracks_births_renames_and_deaths() {
        let mut s = Store::new();
        let a = s.new_element(QName::local("a"));
        let b = s.new_element(QName::local("a"));
        let x = s.new_attribute(QName::local("x"), "1");
        s.append_child(a, b).unwrap();
        s.attach_attribute(b, x).unwrap();
        assert!(s.index_verify());

        s.apply_rename(b, QName::local("c")).unwrap();
        s.set_attribute_value(x, "2").unwrap();
        assert!(s.index_verify());

        // Collect the whole forest away.
        s.detach(b).unwrap();
        s.collect_garbage(&[a]).unwrap();
        assert!(s.index_verify());
    }

    #[test]
    fn rollback_restores_the_plane_exactly() {
        let mut s = Store::new();
        let a = s.new_element(QName::local("a"));
        let x = s.new_attribute(QName::local("x"), "1");
        s.attach_attribute(a, x).unwrap();
        let before = (s.index_name_len_lexical("a"), s.index_name_len_lexical("b"));
        s.begin_frame();
        let b = s.new_element(QName::local("b"));
        s.append_child(a, b).unwrap();
        s.apply_rename(a, QName::local("z")).unwrap();
        s.set_attribute_value(x, "9").unwrap();
        s.detach(b).unwrap();
        s.collect_garbage(&[a]).unwrap();
        s.rollback_frame();
        assert!(s.index_verify());
        let after = (s.index_name_len_lexical("a"), s.index_name_len_lexical("b"));
        assert_eq!(before, after);
    }

    #[test]
    fn toggling_availability_bumps_the_epoch_once_per_change() {
        let mut s = Store::new();
        assert!(s.index_enabled());
        let e0 = s.index_epoch();
        s.set_indexing(true); // no-op
        assert_eq!(s.index_epoch(), e0);
        s.set_indexing(false);
        assert!(!s.index_enabled());
        assert_eq!(s.index_epoch(), e0 + 1);
        s.set_indexing(true);
        assert_eq!(s.index_epoch(), e0 + 2);
    }
}
