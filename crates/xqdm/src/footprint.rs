//! Δ read/write footprints for cross-transaction conflict detection
//! (DESIGN.md §16).
//!
//! The paper's *conflict-detection* snap semantics (§4.1) verifies that
//! the requests of one Δ commute with each other. This module lifts the
//! same idea across transactions: while a session evaluates against its
//! pinned base snapshot, the forked store records
//!
//! * the **redo ops** of every mutation (the same [`RedoOp`]s the WAL
//!   logs), so a validated Δ can be replayed onto the live store;
//! * a **write footprint** — `(node, aspects)` pairs for every mutated
//!   base-snapshot node (writes to nodes the Δ itself allocated are
//!   excluded: no committed transaction can have observed them);
//! * a **read footprint** — `(node, aspects)` pairs for every
//!   evaluator-visible accessor call, again filtered to base nodes.
//!
//! Commit-time validation is classic backward OCC: transaction T
//! conflicts iff T's *read* footprint intersects the *write* footprint of
//! some Δ committed after T's base epoch. Mutator-internal reads (splice
//! index search, precondition checks) are deliberately *not* traced:
//! replaying the ops re-validates every precondition against the live
//! store and recomputes positions, so only reads that shaped the op
//! stream or the response body need validation. That is what lets two
//! blind appends into the same container commute.

use crate::node::NodeId;
use crate::wal::RedoOp;
use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

/// Aspect bits: which facet of a node a read or write touched. Aspect
/// granularity is what keeps sibling tenants independent — a name test
/// over `tenantA` reads only [`aspect::NAME`] of its siblings, so a write
/// inside `tenantB` (children-aspect of `tenantB`) does not conflict.
pub mod aspect {
    /// Element/attribute name (rename).
    pub const NAME: u8 = 1;
    /// Text content / attribute value.
    pub const VALUE: u8 = 1 << 1;
    /// Child list (insert/detach of children).
    pub const CHILDREN: u8 = 1 << 2;
    /// Attribute list (attach/detach of attributes).
    pub const ATTRS: u8 = 1 << 3;
    /// Parent link (attach/detach of the node itself).
    pub const PARENT: u8 = 1 << 4;
    /// Every aspect.
    pub const ALL: u8 = NAME | VALUE | CHILDREN | ATTRS | PARENT;
}

/// A set of `(node, aspects)` marks, plus a *global* flag for the rare
/// whole-store effects (explicit garbage collection of base nodes) that
/// conflict with everything.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    entries: HashMap<NodeId, u8>,
    global: bool,
}

impl Footprint {
    /// An empty footprint.
    pub fn new() -> Footprint {
        Footprint::default()
    }

    /// Mark `aspects` of `id`.
    pub fn record(&mut self, id: NodeId, aspects: u8) {
        *self.entries.entry(id).or_insert(0) |= aspects;
    }

    /// Mark the whole store (conflicts with every non-empty footprint and
    /// with every transaction's validation, even one that read nothing:
    /// a global effect may invalidate node ids themselves).
    pub fn set_global(&mut self) {
        self.global = true;
    }

    /// Did a whole-store effect occur?
    pub fn is_global(&self) -> bool {
        self.global
    }

    /// No marks at all?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && !self.global
    }

    /// Number of marked nodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The aspects marked for `id` (0 when unmarked).
    pub fn aspects(&self, id: NodeId) -> u8 {
        if self.global {
            aspect::ALL
        } else {
            self.entries.get(&id).copied().unwrap_or(0)
        }
    }

    /// Iterate the marked `(node, aspects)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u8)> + '_ {
        self.entries.iter().map(|(&n, &a)| (n, a))
    }

    /// The aspect bits on which `self` (a read footprint) and `other`
    /// (a write footprint) collide: the union over common node ids of
    /// the intersected aspect masks. A global mark on either side
    /// collides on every aspect regardless of the other side's contents —
    /// maximal conservatism for the whole-store effects.
    pub fn conflict_aspects(&self, other: &Footprint) -> u8 {
        if self.global || other.global {
            return aspect::ALL;
        }
        let (small, large) = if self.entries.len() <= other.entries.len() {
            (&self.entries, &other.entries)
        } else {
            (&other.entries, &self.entries)
        };
        let mut bits = 0u8;
        for (id, &a) in small {
            if let Some(&b) = large.get(id) {
                bits |= a & b;
            }
        }
        bits
    }
}

/// Everything one transaction's forked run recorded: the redo ops to
/// replay at commit, and the read/write footprints to validate with.
/// Produced by `Store::take_capture`; consumed by `Store::apply_captured`
/// and the server's commit-time validator.
#[derive(Debug, Clone, Default)]
pub struct CapturedDelta {
    /// The forward ops, in application order (fork-local node ids; the
    /// replay remaps them onto live allocations).
    pub(crate) ops: Vec<RedoOp>,
    pub(crate) reads: Footprint,
    pub(crate) writes: Footprint,
}

impl CapturedDelta {
    /// The read footprint (base-snapshot nodes only).
    pub fn reads(&self) -> &Footprint {
        &self.reads
    }

    /// The write footprint (base-snapshot nodes only).
    pub fn writes(&self) -> &Footprint {
        &self.writes
    }

    /// True when the run mutated nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of recorded redo ops.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }
}

/// The in-store recorder (one per capturing [`crate::Store`]). Mirrors
/// the WAL's pending-ops discipline — frame marks, rollback truncation —
/// and adds the footprints. Reads go through a mutex because effect-free
/// parallel regions share `&Store` across worker threads; the disabled
/// path costs one pointer check per accessor.
#[derive(Debug, Default)]
pub(crate) struct Capture {
    pub(crate) ops: Vec<RedoOp>,
    op_marks: Vec<usize>,
    writes: Vec<(NodeId, u8)>,
    write_marks: Vec<usize>,
    /// Nodes allocated during this capture: their reads and writes are
    /// fork-private, invisible to any committed transaction, and so
    /// excluded from both footprints.
    fresh: HashSet<NodeId>,
    global: bool,
    reads: Mutex<HashMap<NodeId, u8>>,
    trace_reads: bool,
}

impl Capture {
    pub(crate) fn new(trace_reads: bool) -> Capture {
        Capture {
            trace_reads,
            ..Capture::default()
        }
    }

    /// Is read tracing on? (The executor's index-scan gate.)
    #[inline]
    pub(crate) fn is_tracing(&self) -> bool {
        self.trace_reads
    }

    #[inline]
    pub(crate) fn trace_read(&self, id: NodeId, aspects: u8) {
        if self.trace_reads {
            let mut reads = self.reads.lock().unwrap_or_else(|e| e.into_inner());
            *reads.entry(id).or_insert(0) |= aspects;
        }
    }

    #[inline]
    pub(crate) fn record_write(&mut self, id: NodeId, aspects: u8) {
        if !self.fresh.contains(&id) {
            self.writes.push((id, aspects));
        }
    }

    pub(crate) fn note_fresh(&mut self, id: NodeId) {
        self.fresh.insert(id);
    }

    pub(crate) fn is_fresh(&self, id: NodeId) -> bool {
        self.fresh.contains(&id)
    }

    pub(crate) fn set_global(&mut self) {
        self.global = true;
    }

    pub(crate) fn note_begin_frame(&mut self) {
        self.op_marks.push(self.ops.len());
        self.write_marks.push(self.writes.len());
    }

    pub(crate) fn note_commit_frame(&mut self) {
        self.op_marks.pop();
        self.write_marks.pop();
    }

    /// Rolled-back ops and write marks are dropped (they never happened);
    /// reads are kept — a rolled-back branch still influenced control
    /// flow, so its reads must stay validated. Conservative and sound.
    pub(crate) fn note_rollback_frame(&mut self) {
        if let Some(mark) = self.op_marks.pop() {
            self.ops.truncate(mark);
        }
        if let Some(mark) = self.write_marks.pop() {
            self.writes.truncate(mark);
        }
    }

    /// Drain everything recorded since the last take into a
    /// [`CapturedDelta`], resetting the recorder for the next
    /// transaction (the fresh set included: after a commit those nodes
    /// are base-visible to everyone).
    pub(crate) fn take(&mut self) -> CapturedDelta {
        let ops = std::mem::take(&mut self.ops);
        let mut writes = Footprint::new();
        for (id, aspects) in self.writes.drain(..) {
            writes.record(id, aspects);
        }
        if self.global {
            writes.set_global();
        }
        let mut reads = Footprint::new();
        let drained = std::mem::take(&mut *self.reads.lock().unwrap_or_else(|e| e.into_inner()));
        for (id, aspects) in drained {
            if !self.fresh.contains(&id) {
                reads.record(id, aspects);
            }
        }
        self.fresh.clear();
        self.global = false;
        self.op_marks.clear();
        self.write_marks.clear();
        CapturedDelta { ops, reads, writes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_aspects_intersects_per_node() {
        let mut r = Footprint::new();
        r.record(NodeId(1), aspect::CHILDREN);
        r.record(NodeId(2), aspect::NAME);
        let mut w = Footprint::new();
        w.record(NodeId(1), aspect::NAME | aspect::VALUE);
        w.record(NodeId(2), aspect::NAME);
        assert_eq!(r.conflict_aspects(&w), aspect::NAME);
        let mut w2 = Footprint::new();
        w2.record(NodeId(1), aspect::CHILDREN);
        assert_eq!(r.conflict_aspects(&w2), aspect::CHILDREN);
        assert_eq!(r.conflict_aspects(&Footprint::new()), 0);
    }

    #[test]
    fn global_conflicts_with_everything() {
        let mut g = Footprint::new();
        g.set_global();
        assert_eq!(Footprint::new().conflict_aspects(&g), aspect::ALL);
        assert_eq!(g.conflict_aspects(&Footprint::new()), aspect::ALL);
        assert!(!g.is_empty());
        assert_eq!(g.aspects(NodeId(77)), aspect::ALL);
    }

    #[test]
    fn capture_rollback_drops_ops_and_writes_keeps_reads() {
        let mut c = Capture::new(true);
        c.trace_read(NodeId(1), aspect::NAME);
        c.note_begin_frame();
        c.ops.push(RedoOp::Detach { node: NodeId(2) });
        c.record_write(NodeId(2), aspect::PARENT);
        c.trace_read(NodeId(3), aspect::VALUE);
        c.note_rollback_frame();
        let delta = c.take();
        assert!(delta.is_empty());
        assert!(delta.writes().is_empty());
        assert_eq!(delta.reads().aspects(NodeId(1)), aspect::NAME);
        assert_eq!(delta.reads().aspects(NodeId(3)), aspect::VALUE);
    }

    #[test]
    fn fresh_nodes_stay_out_of_footprints() {
        let mut c = Capture::new(true);
        c.note_fresh(NodeId(9));
        c.record_write(NodeId(9), aspect::CHILDREN);
        c.trace_read(NodeId(9), aspect::CHILDREN);
        c.record_write(NodeId(1), aspect::CHILDREN);
        let delta = c.take();
        assert_eq!(delta.writes().aspects(NodeId(9)), 0);
        assert_eq!(delta.reads().aspects(NodeId(9)), 0);
        assert_eq!(delta.writes().aspects(NodeId(1)), aspect::CHILDREN);
        // After take, the fresh set resets: the next transaction's write
        // to node 9 (now base-visible) is footprinted again.
        c.record_write(NodeId(9), aspect::VALUE);
        assert_eq!(c.take().writes().aspects(NodeId(9)), aspect::VALUE);
    }
}
