//! Qualified names.
//!
//! The paper "focuses on well-formed documents" (§3.2) and never exercises
//! namespace resolution, so a [`QName`] here is a possibly-prefixed name
//! without URI binding: `prefix:local` compares by both components.

use std::fmt;

/// A qualified XML name: optional prefix plus local part.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QName {
    /// Optional namespace prefix (`xs` in `xs:integer`). Not resolved to a
    /// URI — see the module docs.
    pub prefix: Option<String>,
    /// The local part of the name.
    pub local: String,
}

impl QName {
    /// A name with no prefix.
    pub fn local(local: impl Into<String>) -> Self {
        QName {
            prefix: None,
            local: local.into(),
        }
    }

    /// A prefixed name.
    pub fn prefixed(prefix: impl Into<String>, local: impl Into<String>) -> Self {
        QName {
            prefix: Some(prefix.into()),
            local: local.into(),
        }
    }

    /// Parse a lexical QName (`local` or `prefix:local`).
    ///
    /// Returns `None` when the string is not a lexically valid QName
    /// (empty parts, more than one colon, or invalid NCName characters).
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.splitn(3, ':');
        let first = parts.next()?;
        match (parts.next(), parts.next()) {
            (None, _) => {
                if is_ncname(first) {
                    Some(QName::local(first))
                } else {
                    None
                }
            }
            (Some(second), None) => {
                if is_ncname(first) && is_ncname(second) {
                    Some(QName::prefixed(first, second))
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

/// Is `s` a valid NCName (no-colon name)? We accept the pragmatic subset:
/// XML letters/digits plus `_`, `-`, `.`, with a non-digit start.
pub fn is_ncname(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.'))
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.prefix {
            Some(p) => write!(f, "{p}:{}", self.local),
            None => write!(f, "{}", self.local),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_local() {
        assert_eq!(QName::parse("foo"), Some(QName::local("foo")));
    }

    #[test]
    fn parse_prefixed() {
        assert_eq!(
            QName::parse("xs:integer"),
            Some(QName::prefixed("xs", "integer"))
        );
    }

    #[test]
    fn parse_rejects_bad_names() {
        assert_eq!(QName::parse(""), None);
        assert_eq!(QName::parse("a:b:c"), None);
        assert_eq!(QName::parse(":b"), None);
        assert_eq!(QName::parse("a:"), None);
        assert_eq!(QName::parse("1abc"), None);
        assert_eq!(QName::parse("a b"), None);
    }

    #[test]
    fn display_round_trips() {
        assert_eq!(QName::local("item").to_string(), "item");
        assert_eq!(QName::prefixed("x", "item").to_string(), "x:item");
    }

    #[test]
    fn ncname_accepts_mid_punctuation() {
        assert!(is_ncname("a-b.c_d9"));
        assert!(!is_ncname("-ab"));
    }
}
