//! Node identifiers and node kinds.
//!
//! A [`NodeId`] is a stable handle into a [`crate::Store`]: the paper's
//! semantics threads node ids through values and pending update lists, so
//! ids must stay valid across arbitrary store mutations (including
//! detachment — the paper's `delete` detaches rather than erases, §3.1).

use crate::symbols::{QNameId, SymbolId};
use std::fmt;

/// A stable identifier for a node in a [`crate::Store`].
///
/// Ids are never invalidated by mutation; only an explicit garbage
/// collection (`Store::collect_garbage`) can retire an unreachable node's
/// slot, after which dereferencing its id reports a dangling-id error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index (useful for hashing / debugging; not an API guarantee).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The kind of a node, with kind-specific payload.
///
/// Names are stored *interned* (DESIGN.md §14): an element slot carries
/// an 8-byte [`QNameId`] instead of up to two heap `String`s, so name
/// tests compare integers and slots stay compact. The owning store's
/// [`crate::Symbols`] table resolves ids back to lexical names; every
/// serialized form (WAL records, checkpoint snapshots, fingerprints)
/// resolves at the byte boundary, keeping the on-disk formats identical
/// to the pre-interning layout.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// A document node (root of a tree loaded from an XML document).
    Document {
        /// Children in document order.
        children: Vec<NodeId>,
    },
    /// An element node.
    Element {
        /// The interned element name.
        name: QNameId,
        /// Attribute nodes (unordered per XDM; we keep insertion order).
        attributes: Vec<NodeId>,
        /// Child nodes in document order.
        children: Vec<NodeId>,
    },
    /// An attribute node.
    Attribute {
        /// The interned attribute name.
        name: QNameId,
        /// The attribute value.
        value: String,
    },
    /// A text node.
    Text {
        /// Character content.
        content: String,
    },
    /// A comment node.
    Comment {
        /// Comment text.
        content: String,
    },
    /// A processing-instruction node.
    Pi {
        /// The interned PI target.
        target: SymbolId,
        /// The PI content.
        content: String,
    },
}

impl NodeKind {
    /// The XDM kind name ("element", "attribute", ...).
    pub fn kind_name(&self) -> &'static str {
        match self {
            NodeKind::Document { .. } => "document",
            NodeKind::Element { .. } => "element",
            NodeKind::Attribute { .. } => "attribute",
            NodeKind::Text { .. } => "text",
            NodeKind::Comment { .. } => "comment",
            NodeKind::Pi { .. } => "processing-instruction",
        }
    }

    /// Can this node kind have children?
    pub fn is_container(&self) -> bool {
        matches!(self, NodeKind::Document { .. } | NodeKind::Element { .. })
    }
}

/// A slot in the store: the node's parent link plus its kind/payload.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct NodeData {
    /// Parent node, `None` for roots and detached nodes.
    pub parent: Option<NodeId>,
    /// Kind and payload.
    pub kind: NodeKind,
    /// False once the slot has been reclaimed by garbage collection.
    pub alive: bool,
    /// Gap-based sibling order key: strictly increasing along each
    /// parent's child list (and, separately, its attribute list). Makes
    /// document-order comparison O(depth) instead of O(depth · fanout) —
    /// the paper's "document order maintenance" problem (§4.1). Keys are
    /// spaced with large gaps at insertion; the rare gap exhaustion
    /// renumbers one child list.
    pub okey: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Symbols;

    #[test]
    fn kind_names() {
        assert_eq!(
            NodeKind::Document { children: vec![] }.kind_name(),
            "document"
        );
        assert_eq!(
            NodeKind::Text {
                content: "x".into()
            }
            .kind_name(),
            "text"
        );
        let mut syms = Symbols::new();
        assert_eq!(
            NodeKind::Pi {
                target: syms.intern("t"),
                content: "c".into()
            }
            .kind_name(),
            "processing-instruction"
        );
    }

    #[test]
    fn containers() {
        assert!(NodeKind::Document { children: vec![] }.is_container());
        assert!(!NodeKind::Comment {
            content: String::new()
        }
        .is_container());
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "n7");
    }
}
