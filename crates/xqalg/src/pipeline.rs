//! The compiled execution pipeline: whole programs (body, prolog
//! variables, declared functions) compiled to plans, runnable behind
//! `xqcore`'s [`CompiledProgram`] seam — this is what the engine executes
//! by default once [`crate::install`] has run.
//!
//! A [`PlannedProgram`] owns one plan per program part. Function bodies
//! whose plan actually optimized something are collected into a
//! [`FnTable`] and installed as the evaluator's function executor for the
//! duration of the run, so a join inside a declared function runs as a
//! hash join no matter where the call site sits. Functions whose bodies
//! compiled to a bare `Iterate` are left to the interpreter — the plan
//! would add indirection without changing a single instruction.

use crate::compile::{compile_structural, Compiler};
use crate::exec;
use crate::plan::QueryPlan;
use std::sync::Arc;
use xqcore::planner::{CompiledProgram, FunctionExecutor, PlanOptions, Planner};
use xqcore::{DynEnv, EffectAnalysis, Evaluator};
use xqdm::item::Sequence;
use xqdm::{Store, XdmResult};
use xqsyn::CoreProgram;

/// Compiled plans for the declared functions that benefited from
/// compilation, consulted by the evaluator on every user-function call.
#[derive(Default)]
pub struct FnTable {
    /// `(name, params, body plan, profile node-id base)` — linear scan;
    /// programs declare few functions and only the optimized ones land
    /// here.
    entries: Vec<(String, Vec<String>, QueryPlan, usize)>,
}

impl FnTable {
    /// No compiled functions at all?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of functions with compiled bodies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

impl FunctionExecutor for FnTable {
    fn try_call(
        &self,
        evaluator: &mut Evaluator,
        store: &mut Store,
        name: &str,
        args: Vec<Sequence>,
    ) -> Result<XdmResult<Sequence>, Vec<Sequence>> {
        let Some((_, params, plan, base)) = self
            .entries
            .iter()
            .find(|(n, p, _, _)| n == name && p.len() == args.len())
        else {
            return Err(args);
        };
        Ok((|| {
            // Same recursion accounting as an interpreted call.
            evaluator.enter_nested()?;
            // Function bodies see only their parameters and globals — a
            // fresh environment, exactly like the interpreter's call rule.
            let mut fenv = DynEnv::new();
            for (p, v) in params.iter().zip(args) {
                fenv.push_var(p.clone(), v);
            }
            let r = exec::execute_at(plan, *base, evaluator, store, &mut fenv);
            evaluator.exit_nested();
            r
        })())
    }
}

/// A whole program compiled to plans: the [`CompiledProgram`] the engine
/// caches and executes.
///
/// Profile node ids are assigned per program section, in pre-order within
/// each plan: the body starts at 0, each prolog variable's plan follows,
/// then each compiled function's — so one flat
/// [`Profile`](xqcore::obs::Profile) covers the whole program.
pub struct PlannedProgram {
    /// `(name, plan, profile node-id base)` per prolog variable.
    variables: Vec<(String, QueryPlan, usize)>,
    body: QueryPlan,
    functions: Arc<FnTable>,
    /// Kept for analyzed re-rendering (effect annotations are part of the
    /// EXPLAIN tree, analyzed or not).
    analysis: EffectAnalysis,
    explain: String,
    optimized: bool,
}

impl PlannedProgram {
    /// The body plan (diagnostics and tests).
    pub fn body_plan(&self) -> &QueryPlan {
        &self.body
    }

    /// Number of declared functions whose bodies compiled to an optimized
    /// plan.
    pub fn compiled_functions(&self) -> usize {
        self.functions.len()
    }
}

impl CompiledProgram for PlannedProgram {
    fn execute(&self, evaluator: &mut Evaluator, store: &mut Store) -> XdmResult<Sequence> {
        if !self.functions.is_empty() {
            evaluator.set_function_executor(Some(self.functions.clone()));
        }
        let result = evaluator.run_in_program_scope(store, |ev, store, env| {
            // Prolog variables in order, then the body — all inside the
            // implicit top-level snap, like `Evaluator::eval_program`.
            for (name, plan, base) in &self.variables {
                let v = exec::execute_at(plan, *base, ev, store, env)?;
                ev.bind_global(name.clone(), v);
            }
            exec::execute_at(&self.body, 0, ev, store, env)
        });
        evaluator.set_function_executor(None);
        result
    }

    fn explain(&self) -> String {
        self.explain.clone()
    }

    fn is_optimized(&self) -> bool {
        self.optimized
    }

    fn explain_analyzed(&self, profile: &xqcore::obs::Profile) -> String {
        // Unlike the plain EXPLAIN (which shows only optimized prolog
        // variables), the analyzed tree shows every variable: each one
        // executed and has counters worth reading.
        let mut out = self.body.render_analyzed(&self.analysis, profile, 0);
        for (name, plan, base) in &self.variables {
            out.push_str(&format!(
                "\n\ndeclare variable ${name}:\n{}",
                plan.render_analyzed(&self.analysis, profile, *base)
            ));
        }
        for (name, params, plan, base) in &self.functions.entries {
            out.push_str(&format!(
                "\n\ndeclare function {}({}):\n{}",
                name,
                params
                    .iter()
                    .map(|p| format!("${p}"))
                    .collect::<Vec<_>>()
                    .join(", "),
                plan.render_analyzed(&self.analysis, profile, *base)
            ));
        }
        out
    }

    fn verify_profile(&self, profile: &xqcore::obs::Profile) -> Result<(), String> {
        self.body.verify_profile(profile, 0)?;
        for (name, plan, base) in &self.variables {
            plan.verify_profile(profile, *base)
                .map_err(|e| format!("declare variable ${name}: {e}"))?;
        }
        for (name, _, plan, base) in &self.functions.entries {
            plan.verify_profile(profile, *base)
                .map_err(|e| format!("declare function {name}: {e}"))?;
        }
        Ok(())
    }
}

/// Compile a whole program: simplify + plan the body, every prolog
/// variable initializer, and every declared function body, with join
/// recognition attempted at each subtree of each part.
pub fn compile_program(program: &CoreProgram) -> PlannedProgram {
    compile_program_opts(program, &PlanOptions::default())
}

/// [`compile_program`] under explicit [`PlanOptions`]: when
/// `index_available` is set, eligible batch steps carry `,idx` hints for
/// the executor's index scans.
pub fn compile_program_opts(program: &CoreProgram, opts: &PlanOptions) -> PlannedProgram {
    assemble(program, opts.index_available, |compiler, core| {
        compiler.compile_simplified(core)
    })
}

/// Compile a whole program to *structural* plans only (see
/// [`compile_structural`]): no rewrites, no function table — declared
/// functions stay interpreted, exactly as a plain interpreted run would
/// treat them. This is the plan `explain_analyze` executes when
/// compilation is disabled.
pub fn compile_structural_program(program: &CoreProgram) -> PlannedProgram {
    assemble(program, false, |_, core| compile_structural(core))
}

/// The shared program-assembly skeleton: plan the body and every prolog
/// variable with `plan_expr`, assign pre-order profile node-id bases
/// (body, then variables, then compiled functions), collect optimized
/// function bodies, and pre-render the plain EXPLAIN text.
fn assemble(
    program: &CoreProgram,
    index_available: bool,
    plan_expr: impl Fn(&Compiler, &xqsyn::core::Core) -> QueryPlan,
) -> PlannedProgram {
    let compiler = Compiler::new(program).with_index(index_available);
    let body = plan_expr(&compiler, &program.body);
    let mut next_base = body.node_count();

    let variables: Vec<(String, QueryPlan, usize)> = program
        .variables
        .iter()
        .map(|(name, init)| {
            let plan = plan_expr(&compiler, init);
            let base = next_base;
            next_base += plan.node_count();
            (name.clone(), plan, base)
        })
        .collect();

    let mut fn_table = FnTable::default();
    let mut fn_explains = Vec::new();
    for f in &program.functions {
        let plan = plan_expr(&compiler, &f.body);
        if plan.is_optimized() {
            fn_explains.push(format!(
                "declare function {}({}):\n{}",
                f.name,
                f.params
                    .iter()
                    .map(|p| format!("${p}"))
                    .collect::<Vec<_>>()
                    .join(", "),
                plan.render_annotated(compiler.analysis()),
            ));
            let base = next_base;
            next_base += plan.node_count();
            fn_table
                .entries
                .push((f.name.clone(), f.params.clone(), plan, base));
        }
    }

    let optimized = body.is_optimized()
        || variables.iter().any(|(_, p, _)| p.is_optimized())
        || !fn_table.is_empty();

    let mut explain = body.render_annotated(compiler.analysis());
    for (name, plan, _) in &variables {
        if plan.is_optimized() {
            explain.push_str(&format!(
                "\n\ndeclare variable ${name}:\n{}",
                plan.render_annotated(compiler.analysis())
            ));
        }
    }
    for fe in fn_explains {
        explain.push_str("\n\n");
        explain.push_str(&fe);
    }

    PlannedProgram {
        variables,
        body,
        functions: Arc::new(fn_table),
        analysis: compiler.into_analysis(),
        explain,
        optimized,
    }
}

/// The [`Planner`] implementation the facade installs as the process-wide
/// default.
pub struct AlgPlanner;

impl Planner for AlgPlanner {
    fn plan(&self, program: &CoreProgram) -> Arc<dyn CompiledProgram> {
        Arc::new(compile_program(program))
    }

    fn plan_opts(&self, program: &CoreProgram, opts: &PlanOptions) -> Arc<dyn CompiledProgram> {
        Arc::new(compile_program_opts(program, opts))
    }

    fn plan_structural(&self, program: &CoreProgram) -> Arc<dyn CompiledProgram> {
        Arc::new(compile_structural_program(program))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_in_function_body_compiles() {
        let program = xqsyn::compile(
            r#"
            declare function pairs($ls, $rs) {
              for $l in $ls/e
              for $r in $rs/e
              where $l/@k = $r/@k
              return <m/>
            };
            pairs($left, $right)"#,
        )
        .unwrap();
        let planned = compile_program(&program);
        assert!(planned.is_optimized());
        assert_eq!(planned.compiled_functions(), 1);
        assert!(planned.explain().contains("declare function pairs"));
        assert!(planned.explain().contains("Join"));
    }

    #[test]
    fn join_in_snap_body_compiles() {
        let program = xqsyn::compile(
            r#"
            snap {
              for $l in $left/e
              for $r in $right/e
              where $l/@k = $r/@k
              return insert { <m/> } into { $out }
            }"#,
        )
        .unwrap();
        let planned = compile_program(&program);
        assert!(planned.is_optimized());
        assert!(matches!(planned.body_plan(), QueryPlan::Snap { .. }));
        assert!(planned.explain().contains("Snap(ordered)"));
        assert!(planned.explain().contains("Join"));
    }

    #[test]
    fn plain_programs_stay_single_iterate() {
        let program = xqsyn::compile("for $i in 1 to 3 return $i * $i").unwrap();
        let planned = compile_program(&program);
        assert!(!planned.is_optimized());
        assert!(matches!(planned.body_plan(), QueryPlan::Iterate(_)));
        assert_eq!(planned.compiled_functions(), 0);
    }
}
