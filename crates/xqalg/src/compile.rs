//! Rule-based plan compilation with side-effect guards (paper §4.2–4.3).
//!
//! Two rewrites, each guarded by the preconditions the paper spells out:
//!
//! 1. **Join recognition** — `for $o in E1 for $i in E2 where K(o) = K(i)
//!    return R` becomes a hash join when
//!    * `E2` is *independent* of `$o` (no free occurrence),
//!    * `E1` and `E2` have no effects and produce no updates (they are
//!      evaluated once instead of once per outer binding — the paper's
//!      cardinality precondition),
//!    * the keys are pure and each depends on exactly one side,
//!    * nothing in the query **applies** updates (`snap`): pending updates
//!      in `R` are fine ("inside an innermost snap ... can be evaluated in
//!      any order"), an inner `snap` kills the rewrite — the paper's "if we
//!      had used a snap insert ... the group-by optimization would be more
//!      difficult to detect".
//! 2. **Outer-join/group-by unnesting** — the §4.3 shape `for $o in E1
//!    let $g := (for $i in E2 where K(o)=K(i) return R) return F` becomes
//!    `MapFromItem{F}(GroupBy[o,{R}](LeftOuterJoin(E1, E2) on K))`, with
//!    the same guards plus purity of `F`'s interaction with the grouped
//!    value (F may mention `$g` freely — it receives exactly the sequence
//!    the nested loop would have produced, in the same order).

use crate::plan::{BatchFilter, BatchPathPlan, BatchStep, GroupByPlan, JoinPlan, QueryPlan};
use std::cell::RefCell;
use xqcore::{Effect, EffectAnalysis};
use xqdm::atomic::{Atomic, CompareOp};
use xqsyn::ast::{Axis, NodeTest};
use xqsyn::core::{Core, CoreProgram};

/// How many `(input, simplified)` pairs [`Compiler::compile_simplified`]
/// memoizes. A program compiles a handful of distinct expressions (body,
/// prolog initializers, function bodies); a small bound suffices.
const SIMPLIFY_MEMO_CAP: usize = 8;

/// The plan compiler: effect analysis + rewrite rules.
pub struct Compiler {
    analysis: EffectAnalysis,
    /// Memo for the simplify pass: re-running `run_program` (or compiling
    /// the same expression twice within one program) does no redundant
    /// rewriting.
    simplified: RefCell<Vec<(Core, Core)>>,
    /// Were the store's secondary indexes available at plan time
    /// ([`xqcore::planner::PlanOptions::index_available`])? Gates the
    /// `,idx` eligibility hints on lowered chains; `false` (the default)
    /// reproduces the pre-index plans exactly.
    index_available: bool,
}

impl Compiler {
    /// A compiler for a program (analyzes its functions once).
    pub fn new(program: &CoreProgram) -> Self {
        Compiler {
            analysis: EffectAnalysis::new(program),
            simplified: RefCell::new(Vec::new()),
            index_available: false,
        }
    }

    /// A compiler with no user functions in scope.
    pub fn empty() -> Self {
        Compiler {
            analysis: EffectAnalysis::empty(),
            simplified: RefCell::new(Vec::new()),
            index_available: false,
        }
    }

    /// Declare whether the target store's secondary indexes are
    /// available (see the field docs).
    pub fn with_index(mut self, available: bool) -> Self {
        self.index_available = available;
        self
    }

    /// The effect analysis (exposed for diagnostics and tests).
    pub fn analysis(&self) -> &EffectAnalysis {
        &self.analysis
    }

    /// Consume the compiler, keeping its effect analysis (a
    /// [`crate::pipeline::PlannedProgram`] holds it for analyzed
    /// re-rendering).
    pub fn into_analysis(self) -> EffectAnalysis {
        self.analysis
    }

    /// Compile a core expression to a plan. Join recognition is attempted
    /// at **every** subtree: first the two join rewrites on the node
    /// itself, then structural recursion through the control operators
    /// (`let`/`for`/`if`/sequence/`snap`) so joins nested inside snap
    /// bodies, let-bound values, and branches are still found. A
    /// structural subtree in which no rewrite fired collapses back to a
    /// single [`QueryPlan::Iterate`] of the original expression — the
    /// per-subtree fallback that keeps unoptimizable code on the strict
    /// interpreted path.
    pub fn compile(&self, core: &Core) -> QueryPlan {
        if let Some(plan) = self.try_outer_join_group_by(core) {
            return plan;
        }
        if let Some(plan) = self.try_join(core) {
            return plan;
        }
        match core {
            Core::Seq(items) if !items.is_empty() => {
                let plans: Vec<QueryPlan> = items.iter().map(|e| self.compile(e)).collect();
                if plans.iter().any(QueryPlan::is_specialized) {
                    return QueryPlan::Seq(plans);
                }
            }
            Core::Let { var, value, body } => {
                let value_plan = self.compile(value);
                let body_plan = self.compile(body);
                if value_plan.is_specialized() || body_plan.is_specialized() {
                    return QueryPlan::Let {
                        var: var.clone(),
                        value: Box::new(value_plan),
                        body: Box::new(body_plan),
                    };
                }
            }
            Core::For {
                var,
                position,
                source,
                body,
            } => {
                let source_plan = self.compile(source);
                let body_plan = self.compile(body);
                if source_plan.is_specialized() || body_plan.is_specialized() {
                    return QueryPlan::For {
                        var: var.clone(),
                        position: position.clone(),
                        source: Box::new(source_plan),
                        body: Box::new(body_plan),
                    };
                }
            }
            Core::If(cond, then, els) => {
                let cond_plan = self.compile(cond);
                let then_plan = self.compile(then);
                let els_plan = self.compile(els);
                if cond_plan.is_specialized()
                    || then_plan.is_specialized()
                    || els_plan.is_specialized()
                {
                    return QueryPlan::If {
                        cond: Box::new(cond_plan),
                        then: Box::new(then_plan),
                        els: Box::new(els_plan),
                    };
                }
            }
            Core::Snap(mode, body) => {
                let body_plan = self.compile(body);
                if body_plan.is_specialized() {
                    return QueryPlan::Snap {
                        mode: *mode,
                        body: Box::new(body_plan),
                    };
                }
            }
            _ => {}
        }
        self.leaf(core)
    }

    /// The leaf fallback: a pure path-step chain lowers to a
    /// [`QueryPlan::BatchPath`] (batch-at-a-time kernels, DESIGN.md §14);
    /// anything else stays a strict [`QueryPlan::Iterate`].
    fn leaf(&self, core: &Core) -> QueryPlan {
        match try_batch_path(core, self.index_available) {
            Some(bp) => QueryPlan::BatchPath(bp),
            None => QueryPlan::Iterate(core.clone()),
        }
    }
    /// Run the guarded syntactic rewriting phase (§4.2) first, then
    /// compile — the full Galax-style pipeline. The simplified form is
    /// memoized per input expression.
    pub fn compile_simplified(&self, core: &Core) -> QueryPlan {
        if let Some((_, cached)) = self
            .simplified
            .borrow()
            .iter()
            .find(|(input, _)| input == core)
        {
            return self.compile(cached);
        }
        let simplified = crate::rewrite::simplify(core, &self.analysis);
        let plan = self.compile(&simplified);
        let mut memo = self.simplified.borrow_mut();
        if memo.len() >= SIMPLIFY_MEMO_CAP {
            memo.remove(0);
        }
        memo.push((core.clone(), simplified));
        plan
    }

    /// Shared guards for both rewrites; returns the (outer_key, inner_key)
    /// pair oriented to (outer, inner).
    #[allow(clippy::too_many_arguments)]
    fn join_guards(
        &self,
        outer_var: &str,
        outer_source: &Core,
        inner_var: &str,
        inner_source: &Core,
        k1: &Core,
        k2: &Core,
        body: &Core,
    ) -> Option<(Core, Core)> {
        // Sources are evaluated once by the join: they must be update-free
        // (cardinality guard) — and snap-free follows from that.
        if !self.analysis.effect(outer_source).cardinality_safe()
            || !self.analysis.effect(inner_source).cardinality_safe()
        {
            return None;
        }
        // Independence: the inner source must not depend on the outer
        // variable (otherwise it is a dependent loop, not a join).
        if inner_source.free_vars().contains(outer_var) {
            return None;
        }
        // The body and keys must not APPLY updates: an inner snap could
        // observe the evaluation order, which the join changes.
        if !self.analysis.effect(body).order_free() {
            return None;
        }
        // Keys: pure, and each mentioning exactly one side.
        if self.analysis.effect(k1) != Effect::Pure || self.analysis.effect(k2) != Effect::Pure {
            return None;
        }
        let (f1, f2) = (k1.free_vars(), k2.free_vars());
        let k1_outer = f1.contains(outer_var);
        let k1_inner = f1.contains(inner_var);
        let k2_outer = f2.contains(outer_var);
        let k2_inner = f2.contains(inner_var);
        match (k1_outer, k1_inner, k2_outer, k2_inner) {
            (true, false, false, true) => Some((k1.clone(), k2.clone())),
            (false, true, true, false) => Some((k2.clone(), k1.clone())),
            _ => None,
        }
    }

    /// Pattern: for $o in E1 return for $i in E2 return if (k = k) then R
    /// else () — the normalized form of the §2.1 for-for-where query.
    fn try_join(&self, core: &Core) -> Option<QueryPlan> {
        let Core::For {
            var: outer_var,
            position: None,
            source: outer_source,
            body,
        } = core
        else {
            return None;
        };
        let Core::For {
            var: inner_var,
            position: None,
            source: inner_source,
            body: inner_body,
        } = body.as_ref()
        else {
            return None;
        };
        let (k1, k2, ret) = match_where_eq(inner_body)?;
        let (outer_key, inner_key) = self.join_guards(
            outer_var,
            outer_source,
            inner_var,
            inner_source,
            k1,
            k2,
            ret,
        )?;
        Some(QueryPlan::HashJoin(batch_join(
            JoinPlan {
                outer_var: outer_var.clone(),
                outer_source: (**outer_source).clone(),
                inner_var: inner_var.clone(),
                inner_source: (**inner_source).clone(),
                outer_key,
                inner_key,
                body: ret.clone(),
                outer_batch: None,
                inner_batch: None,
                outer_key_steps: None,
                inner_key_steps: None,
            },
            self.index_available,
        )))
    }

    /// Pattern: for $o in E1 return let $g := (for $i in E2 return
    /// if (k = k) then R else ()) return F — the §4.3 Q8 variant.
    fn try_outer_join_group_by(&self, core: &Core) -> Option<QueryPlan> {
        let Core::For {
            var: outer_var,
            position: None,
            source: outer_source,
            body,
        } = core
        else {
            return None;
        };
        let Core::Let {
            var: group_var,
            value,
            body: ret,
        } = body.as_ref()
        else {
            return None;
        };
        let Core::For {
            var: inner_var,
            position: None,
            source: inner_source,
            body: inner_body,
        } = value.as_ref()
        else {
            return None;
        };
        let (k1, k2, r) = match_where_eq(inner_body)?;
        let (outer_key, inner_key) =
            self.join_guards(outer_var, outer_source, inner_var, inner_source, k1, k2, r)?;
        // The outer return must not apply updates either (it runs once per
        // outer binding in both plans, but an inner snap would let it
        // observe R's effects mid-join).
        if !self.analysis.effect(ret).order_free() {
            return None;
        }
        Some(QueryPlan::OuterJoinGroupBy(GroupByPlan {
            join: batch_join(
                JoinPlan {
                    outer_var: outer_var.clone(),
                    outer_source: (**outer_source).clone(),
                    inner_var: inner_var.clone(),
                    inner_source: (**inner_source).clone(),
                    outer_key,
                    inner_key,
                    body: r.clone(),
                    outer_batch: None,
                    inner_batch: None,
                    outer_key_steps: None,
                    inner_key_steps: None,
                },
                self.index_available,
            ),
            group_var: group_var.clone(),
            ret: (**ret).clone(),
        }))
    }
}

/// Fill a join's batch lowerings: each source that is a pure step chain,
/// and each key that is a pure step chain rooted at its own side's
/// variable, gets the batch-kernel path at execution time. Purely
/// physical — the join's semantics and guards are untouched.
fn batch_join(mut j: JoinPlan, index_available: bool) -> JoinPlan {
    j.outer_batch = try_batch_path(&j.outer_source, index_available);
    j.inner_batch = try_batch_path(&j.inner_source, index_available);
    j.outer_key_steps = key_steps(&j.outer_key, &j.outer_var);
    j.inner_key_steps = key_steps(&j.inner_key, &j.inner_var);
    j
}

/// The batch lowering of a join key: a pure step chain whose input is
/// exactly the side's loop variable (the probe/build loops then run the
/// kernels straight off each bound node). Keys run per single binding,
/// where an index scan can never beat the direct kernel — no idx hint.
fn key_steps(key: &Core, var: &str) -> Option<Vec<BatchStep>> {
    let bp = try_batch_path(key, false)?;
    (bp.input == Core::Var(var.to_string())).then_some(bp.steps)
}

/// Recognize a path-step chain whose every step has a store kernel
/// (child / descendant / descendant-or-self / attribute axis) and whose
/// predicates are all pure existence paths. Returns the lowered plan, or
/// `None` to stay on the interpreted path. The chain's base can be any
/// expression (it is evaluated once either way); an unsupported step
/// simply becomes part of the base.
fn try_batch_path(core: &Core, index_available: bool) -> Option<BatchPathPlan> {
    // A `DocOrder` wrapper is absorbed: every batch step already
    // doc-order-normalizes its output, so ddo-of-chain ≡ chain.
    let chain = match core {
        Core::DocOrder(inner) => inner,
        other => other,
    };
    let mut steps_rev: Vec<BatchStep> = Vec::new();
    let mut cur = chain;
    while let Core::MapStep {
        base,
        axis: axis @ (Axis::Child | Axis::Descendant | Axis::DescendantOrSelf | Axis::Attribute),
        test,
        predicates,
    } = cur
    {
        let filters: Option<Vec<BatchFilter>> = predicates.iter().map(batch_filter).collect();
        match filters {
            Some(filters) => {
                steps_rev.push(BatchStep {
                    axis: *axis,
                    test: test.clone(),
                    filters,
                });
                cur = base;
            }
            // A non-batchable predicate (positional, general comparison
            // over non-literals, call): this and everything below it
            // stays interpreted as the chain's input.
            None => break,
        }
    }
    if steps_rev.is_empty() {
        return None;
    }
    steps_rev.reverse();
    // Peephole: the `//` desugaring `descendant-or-self::node()/child::T`
    // is exactly `descendant::T` (a node is a person-child of $a-or-below
    // iff it is a person descendant of $a). Fusing drops the step that
    // materializes — and doc-order-sorts — every node under the origin.
    let mut steps: Vec<BatchStep> = Vec::with_capacity(steps_rev.len());
    for s in steps_rev {
        if s.axis == Axis::Child
            && steps.last().is_some_and(|p: &BatchStep| {
                p.axis == Axis::DescendantOrSelf
                    && matches!(p.test, NodeTest::AnyKind)
                    && p.filters.is_empty()
            })
        {
            steps.pop();
            steps.push(BatchStep {
                axis: Axis::Descendant,
                test: s.test,
                filters: s.filters,
            });
        } else {
            steps.push(s);
        }
    }
    let idx = index_available && steps.iter().any(step_idx_eligible);
    Some(BatchPathPlan {
        input: cur.clone(),
        steps,
        core: core.clone(),
        idx,
    })
}

/// Can the secondary indexes serve this step? An element-producing axis
/// with either a name test (element-name index) or an `[@a = "v"]`
/// filter (attribute-value index). The attribute axis is excluded: the
/// value index is keyed by (name, value), never by name alone.
fn step_idx_eligible(step: &BatchStep) -> bool {
    if !matches!(
        step.axis,
        Axis::Child | Axis::Descendant | Axis::DescendantOrSelf
    ) {
        return false;
    }
    matches!(step.test, NodeTest::Name(_))
        || step
            .filters
            .iter()
            .any(|f| matches!(f, BatchFilter::AttrEq { .. }))
}

/// Recognize one admissible predicate: a value filter first (the more
/// specific shape), an existence path otherwise.
fn batch_filter(pred: &Core) -> Option<BatchFilter> {
    if let Some(f) = attr_eq_filter(pred) {
        return Some(f);
    }
    existence_chain(pred).map(BatchFilter::Exists)
}

/// A predicate admissible as a batch existence filter: a pure step chain
/// rooted at the context item. Such predicates always yield nodes (never
/// numbers), so the interpreter's positional semantics degenerate to the
/// non-empty test the kernels apply.
fn existence_chain(pred: &Core) -> Option<Vec<BatchStep>> {
    let bp = try_batch_path(pred, false)?;
    matches!(bp.input, Core::ContextItem).then_some(bp.steps)
}

/// Recognize `[@name = "literal"]` (either operand order): the general
/// comparison of a context-rooted attribute step against a string
/// literal. The attribute atomizes untyped; untyped-vs-string general
/// comparison is exact string equality, so the filter (and the value
/// index behind it) is faithful.
fn attr_eq_filter(pred: &Core) -> Option<BatchFilter> {
    let Core::GeneralComp(CompareOp::Eq, a, b) = pred else {
        return None;
    };
    let build = |name: Option<String>, value: Option<String>| {
        Some(BatchFilter::AttrEq {
            name: name?,
            value: value?,
        })
    };
    build(context_attr_name(a), string_literal(b))
        .or_else(|| build(context_attr_name(b), string_literal(a)))
}

/// `@name` rooted at the context item (a `DocOrder` wrapper absorbed),
/// with no predicates of its own.
fn context_attr_name(core: &Core) -> Option<String> {
    let chain = match core {
        Core::DocOrder(inner) => inner.as_ref(),
        other => other,
    };
    let Core::MapStep {
        base,
        axis: Axis::Attribute,
        test: NodeTest::Name(name),
        predicates,
    } = chain
    else {
        return None;
    };
    (matches!(base.as_ref(), Core::ContextItem) && predicates.is_empty()).then(|| name.clone())
}

/// A string literal constant.
fn string_literal(core: &Core) -> Option<String> {
    match core {
        Core::Const(Atomic::String(s)) => Some(s.clone()),
        _ => None,
    }
}

/// Compile an expression to a *structural* plan: the control operators
/// (`Seq`/`Let`/`For`/`If`/`Snap`) map to plan nodes one-for-one and every
/// other expression stays an [`QueryPlan::Iterate`] leaf — no rewriting,
/// no simplification, no collapse-back. Executing this plan is
/// operator-for-operator identical to interpreting the expression, which
/// is exactly what `explain_analyze` needs in interpreted mode: per-node
/// counters for the evaluation that would have happened anyway.
pub fn compile_structural(core: &Core) -> QueryPlan {
    match core {
        Core::Seq(items) if !items.is_empty() => {
            QueryPlan::Seq(items.iter().map(compile_structural).collect())
        }
        Core::Let { var, value, body } => QueryPlan::Let {
            var: var.clone(),
            value: Box::new(compile_structural(value)),
            body: Box::new(compile_structural(body)),
        },
        Core::For {
            var,
            position,
            source,
            body,
        } => QueryPlan::For {
            var: var.clone(),
            position: position.clone(),
            source: Box::new(compile_structural(source)),
            body: Box::new(compile_structural(body)),
        },
        Core::If(cond, then, els) => QueryPlan::If {
            cond: Box::new(compile_structural(cond)),
            then: Box::new(compile_structural(then)),
            els: Box::new(compile_structural(els)),
        },
        Core::Snap(mode, body) => QueryPlan::Snap {
            mode: *mode,
            body: Box::new(compile_structural(body)),
        },
        _ => QueryPlan::Iterate(core.clone()),
    }
}

/// Match `if (K1 = K2) then R else ()` — a normalized `where` clause with a
/// general equality comparison.
fn match_where_eq(core: &Core) -> Option<(&Core, &Core, &Core)> {
    let Core::If(cond, then, els) = core else {
        return None;
    };
    if !matches!(els.as_ref(), Core::Seq(v) if v.is_empty()) {
        return None;
    }
    let Core::GeneralComp(CompareOp::Eq, k1, k2) = cond.as_ref() else {
        return None;
    };
    Some((k1, k2, then))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqsyn::compile as xq_compile;

    fn plan_for(query: &str) -> QueryPlan {
        let prog = xq_compile(query).expect("parse");
        Compiler::new(&prog).compile(&prog.body)
    }

    const Q_JOIN: &str = r#"
        for $p in $auction//person
        for $t in $auction//closed_auction
        where $t/buyer/@person = $p/@id
        return insert { <buyer person="{$t/buyer/@person}"/> } into { $purchasers }"#;

    const Q8_VARIANT: &str = r#"
        for $p in $auction//person
        let $a :=
          for $t in $auction//closed_auction
          where $t/buyer/@person = $p/@id
          return (insert { <buyer person="{$t/buyer/@person}"/> }
                  into { $purchasers }, $t)
        return <item person="{ $p/name }">{ count($a) }</item>"#;

    #[test]
    fn paper_join_query_compiles_to_hash_join() {
        let plan = plan_for(Q_JOIN);
        match &plan {
            QueryPlan::HashJoin(j) => {
                assert_eq!(j.outer_var, "p");
                assert_eq!(j.inner_var, "t");
                // Keys oriented correctly even though the where-clause
                // wrote them inner-first.
                assert!(j.outer_key.free_vars().contains("p"));
                assert!(j.inner_key.free_vars().contains("t"));
            }
            other => panic!("expected hash join, got {other:?}"),
        }
    }

    #[test]
    fn paper_q8_variant_compiles_to_outer_join_group_by() {
        let plan = plan_for(Q8_VARIANT);
        match &plan {
            QueryPlan::OuterJoinGroupBy(g) => {
                assert_eq!(g.group_var, "a");
                assert_eq!(g.join.outer_var, "p");
            }
            other => panic!("expected outer-join/group-by, got {other:?}"),
        }
        // The §4.3 printout shape.
        let rendered = plan.render();
        assert!(rendered.contains("GroupBy"));
        assert!(rendered.contains("LeftOuterJoin"));
        assert!(rendered.contains("MapFromItem"));
        assert!(rendered.starts_with("Snap {"));
    }

    #[test]
    fn snap_in_body_suppresses_the_rewrite() {
        // §4.3: "if we had used a snap insert at line 5 of the source code,
        // the group-by optimization would be more difficult to detect".
        let q = r#"
            for $p in $auction//person
            let $a :=
              for $t in $auction//closed_auction
              where $t/buyer/@person = $p/@id
              return (snap insert { <buyer/> } into { $purchasers }, $t)
            return <item>{ count($a) }</item>"#;
        // No join — but the path sources still lower to batch chains.
        let plan = plan_for(q);
        assert!(!plan.is_optimized());
        assert!(plan.is_batched());
    }

    #[test]
    fn pending_updates_in_body_do_not_suppress() {
        // The insert (no snap) is fine: pending updates are effect-free.
        assert!(plan_for(Q8_VARIANT).is_optimized());
    }

    #[test]
    fn dependent_inner_source_suppresses() {
        let q = r#"
            for $p in $auction//person
            for $t in $p//closed_auction
            where $t/buyer/@person = $p/@id
            return $t"#;
        assert!(!plan_for(q).is_optimized());
    }

    #[test]
    fn updating_source_suppresses() {
        // A source with updates cannot be evaluated once (cardinality).
        let q = r#"
            for $p in (insert { <x/> } into { $d }, $auction//person)
            for $t in $auction//closed_auction
            where $t/buyer/@person = $p/@id
            return $t"#;
        assert!(!plan_for(q).is_optimized());
    }

    #[test]
    fn cross_side_keys_suppress() {
        // Both keys mention $p: not a proper equi-join.
        let q = r#"
            for $p in $auction//person
            for $t in $auction//closed_auction
            where $p/@id = $p/@name
            return $t"#;
        assert!(!plan_for(q).is_optimized());
    }

    #[test]
    fn non_equality_predicates_suppress() {
        let q = r#"
            for $p in $auction//person
            for $t in $auction//closed_auction
            where $t/buyer/@person < $p/@id
            return $t"#;
        assert!(!plan_for(q).is_optimized());
    }

    #[test]
    fn snap_via_function_call_suppresses() {
        // The effect judgment chases calls (the "monadic rule").
        let q = r#"
            declare function log_it($x) { snap insert { <l/> } into { $log } };
            for $p in $auction//person
            for $t in $auction//closed_auction
            where $t/buyer/@person = $p/@id
            return log_it($t)"#;
        assert!(!plan_for(q).is_optimized());
    }

    #[test]
    fn pure_function_calls_do_not_suppress() {
        let q = r#"
            declare function fmt($x) { <m>{ $x }</m> };
            for $p in $auction//person
            for $t in $auction//closed_auction
            where $t/buyer/@person = $p/@id
            return fmt($t)"#;
        assert!(plan_for(q).is_optimized());
    }

    #[test]
    fn path_chains_lower_to_batch_steps() {
        // A pure child/descendant chain becomes one BatchPath leaf whose
        // steps mirror the source path left-to-right.
        let plan = plan_for("$auction//person/name");
        match &plan {
            QueryPlan::BatchPath(bp) => {
                // `//` desugars to descendant-or-self::node()/child::*,
                // which the peephole fuses back to one descendant step.
                assert_eq!(bp.steps.len(), 2);
                assert!(matches!(bp.steps[0].axis, Axis::Descendant));
                assert!(matches!(bp.steps[1].axis, Axis::Child));
                assert!(bp.steps.iter().all(|s| s.filters.is_empty()));
            }
            other => panic!("expected batch path, got {other:?}"),
        }
        assert!(plan.is_batched());
        assert!(!plan.is_optimized());
    }

    #[test]
    fn existence_predicates_become_batch_filters() {
        let plan = plan_for("$auction//person[address/city]");
        match &plan {
            QueryPlan::BatchPath(bp) => {
                assert_eq!(bp.steps.len(), 1);
                assert!(matches!(bp.steps[0].axis, Axis::Descendant));
                assert_eq!(bp.steps[0].filters.len(), 1);
                match &bp.steps[0].filters[0] {
                    BatchFilter::Exists(chain) => assert_eq!(chain.len(), 2),
                    other => panic!("expected existence filter, got {other:?}"),
                }
            }
            other => panic!("expected batch path, got {other:?}"),
        }
    }

    #[test]
    fn value_predicates_become_attr_eq_filters() {
        // Both operand orders recognize, and a non-literal comparison
        // falls back to the interpreted input.
        for q in [
            r#"$auction//person[@id = "person0"]"#,
            r#"$auction//person["person0" = @id]"#,
        ] {
            let plan = plan_for(q);
            let QueryPlan::BatchPath(bp) = &plan else {
                panic!("expected batch path for {q}, got {plan:?}");
            };
            assert_eq!(bp.steps.len(), 1);
            assert_eq!(
                bp.steps[0].filters,
                vec![BatchFilter::AttrEq {
                    name: "id".into(),
                    value: "person0".into(),
                }]
            );
        }
        // `@id = @ref` names no literal: not a value filter, and not an
        // existence path either — the predicated step stays interpreted.
        let plan = plan_for("$auction//person[@id = @ref]");
        assert!(
            !matches!(&plan, QueryPlan::BatchPath(bp) if bp.steps.len() > 0
                && !bp.steps[0].filters.is_empty()),
            "non-literal comparison must not lower to a filter: {plan:?}"
        );
    }

    #[test]
    fn index_hints_require_availability() {
        let prog = xq_compile(r#"$auction//person[@id = "p7"]"#).expect("parse");
        let without = Compiler::new(&prog).compile(&prog.body);
        let QueryPlan::BatchPath(bp) = &without else {
            panic!("expected batch path");
        };
        assert!(!bp.idx, "no idx hint without index availability");
        let with = Compiler::new(&prog).with_index(true).compile(&prog.body);
        let QueryPlan::BatchPath(bp) = &with else {
            panic!("expected batch path");
        };
        assert!(bp.idx, "idx hint expected when the index is available");
        // Attribute-axis chains have no name-only index: no hint.
        let prog = xq_compile("$auction/@id").expect("parse");
        let plan = Compiler::new(&prog).with_index(true).compile(&prog.body);
        let QueryPlan::BatchPath(bp) = &plan else {
            panic!("expected batch path");
        };
        assert!(!bp.idx, "attribute axis must not carry an idx hint");
    }

    #[test]
    fn positional_predicates_stay_interpreted() {
        // A numeric predicate is position-sensitive: the chain must not
        // lower to the existence-filter kernels.
        let plan = plan_for("$auction//person[1]/name");
        match &plan {
            QueryPlan::BatchPath(bp) => {
                // Only the tail step past the predicate is batched; the
                // predicated step stays inside the interpreted input.
                assert_eq!(bp.steps.len(), 1);
                assert!(matches!(bp.steps[0].axis, Axis::Child));
            }
            QueryPlan::Iterate(_) => {}
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn q8_join_sides_and_keys_are_batched() {
        let plan = plan_for(Q8_VARIANT);
        let QueryPlan::OuterJoinGroupBy(g) = &plan else {
            panic!("expected outer-join/group-by");
        };
        assert!(g.join.outer_batch.is_some(), "outer source should batch");
        assert!(g.join.inner_batch.is_some(), "inner source should batch");
        let okey = g.join.outer_key_steps.as_ref().expect("outer key steps");
        let ikey = g.join.inner_key_steps.as_ref().expect("inner key steps");
        // $t/buyer/@person and $p/@id respectively.
        assert_eq!(okey.len(), 1);
        assert_eq!(ikey.len(), 2);
        assert!(matches!(okey[0].axis, Axis::Attribute));
        assert!(matches!(ikey[1].axis, Axis::Attribute));
        assert!(g.join.is_batched());
        assert!(plan.render().contains(",batch"));
    }
}
