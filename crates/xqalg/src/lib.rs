//! # xqalg — the algebraic compiler and optimizer for XQuery!
//!
//! Reproduces §4 of the paper: rule-based rewrites **guarded by the
//! side-effect judgment** turn nested FLWOR loops into join plans when the
//! guards hold, and leave the strict nested-loop evaluation in place when
//! they do not.
//!
//! * [`compile::Compiler`] — the rewrite rules and their preconditions
//!   (independence, cardinality safety, snap-freedom);
//! * [`plan::QueryPlan`] — the logical plan language, with the paper-style
//!   `Snap { MapFromItem {...} (GroupBy [...] (LeftOuterJoin(...))) }`
//!   printer;
//! * [`exec`] — physical execution: typed hash join / left-outer
//!   join + group-by, producing the same value *and the same pending
//!   update list* as the nested loop, in `O(|outer| + |inner| +
//!   |matches|)`.
//!
//! ```
//! use xqalg::Compiler;
//!
//! let program = xqsyn::compile(
//!     "for $x in $xs for $y in $ys where $x/@k = $y/@k return $y",
//! ).unwrap();
//! let plan = Compiler::new(&program).compile(&program.body);
//! assert!(plan.is_optimized());
//! ```

pub mod compile;
pub mod exec;
pub mod pipeline;
pub mod plan;
pub mod rewrite;

pub use compile::Compiler;
pub use exec::{execute, run_plan};
pub use pipeline::{compile_program, AlgPlanner, PlannedProgram};
pub use plan::{GroupByPlan, JoinPlan, QueryPlan};
pub use rewrite::simplify;

use std::sync::Arc;
use xqcore::planner::CompiledProgram;
use xqcore::Evaluator;
use xqdm::item::Sequence;
use xqdm::{Store, XdmResult};
use xqsyn::CoreProgram;

/// Register [`AlgPlanner`] as the process-wide default planner, making
/// `xqcore::Engine::run_program` compile through this crate. Idempotent;
/// the facade crate calls this from `Engine::new()`.
pub fn install() {
    xqcore::planner::install(Arc::new(AlgPlanner));
}

/// One-call convenience: compile a whole program (body, prolog variables,
/// declared functions) and run it with the given host bindings. Returns
/// the value sequence and whether the optimizer rewrote anything.
///
/// This is a thin wrapper over the [`pipeline`] the engine uses by
/// default — kept for benchmarks and tests that need an explicit
/// compiled-vs-naive comparison with a fixed seed.
pub fn run_optimized(
    program: &CoreProgram,
    store: &mut Store,
    bindings: &[(String, Sequence)],
    seed: u64,
) -> XdmResult<(Sequence, bool)> {
    let planned = compile_program(program);
    let mut evaluator = Evaluator::new(program).with_seed(seed);
    for (name, value) in bindings {
        evaluator.bind_global(name.clone(), value.clone());
    }
    let optimized = planned.is_optimized();
    let value = planned.execute(&mut evaluator, store)?;
    Ok((value, optimized))
}

/// The unoptimized twin of [`run_optimized`]: strict nested-loop
/// evaluation of the same program (the baseline in experiment E1).
pub fn run_naive(
    program: &CoreProgram,
    store: &mut Store,
    bindings: &[(String, Sequence)],
    seed: u64,
) -> XdmResult<Sequence> {
    let mut evaluator = Evaluator::new(program).with_seed(seed);
    for (name, value) in bindings {
        evaluator.bind_global(name.clone(), value.clone());
    }
    evaluator.eval_program(store, program)
}
